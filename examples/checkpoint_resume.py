#!/usr/bin/env python
"""Checkpointing a long-running monitor.

A stream monitor should survive restarts without losing its window
history -- otherwise every restart costs p windows of blindness.  This
example runs half a stream, snapshots the sketch to JSON, "restarts",
and shows the resumed sketch produces the identical report stream.

Run:  python examples/checkpoint_resume.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import os
import tempfile
from pathlib import Path

from repro import SimplexTask, XSketch, XSketchConfig
from repro.core import load_xsketch, save_xsketch
from repro.streams import ip_trace_stream

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    trace = ip_trace_stream(
        n_windows=16 if SMOKE else 30, window_size=400 if SMOKE else 1500, seed=21
    )
    windows = list(trace.windows())
    task = SimplexTask.paper_default(1)
    config = XSketchConfig(task=task, memory_kb=30.0)

    reference = XSketch(config, seed=5)
    for window in windows:
        reference.run_window(window)

    half = len(windows) // 2
    first_half = XSketch(config, seed=5)
    for window in windows[:half]:
        first_half.run_window(window)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sketch-checkpoint.json"
        save_xsketch(first_half, path)
        print(f"checkpoint after window {half}: {path.stat().st_size / 1024:.1f} KB on disk")
        resumed = load_xsketch(path, seed=5)

    for window in windows[half:]:
        resumed.run_window(window)

    match = [r.instance for r in resumed.reports] == [r.instance for r in reference.reports]
    print(f"resumed run reports: {len(resumed.reports)}; "
          f"uninterrupted run reports: {len(reference.reports)}; identical: {match}")
    stats = resumed.stats
    print(f"stats: {stats.promotions} promotions over {stats.stage1_arrivals} "
          f"Stage-1 arrivals (gate rate {stats.promotion_rate:.4%}), "
          f"{stats.replacements_won}/{stats.replacements_won + stats.replacements_lost} "
          "replacement contests won")


if __name__ == "__main__":
    main()
