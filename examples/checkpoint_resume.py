#!/usr/bin/env python
"""Checkpointing a long-running monitor.

A stream monitor should survive restarts without losing its window
history -- otherwise every restart costs p windows of blindness.  This
example runs half a stream, snapshots the sketch to JSON, "restarts",
and shows the resumed sketch produces the identical report stream.

Run:  python examples/checkpoint_resume.py
"""

import tempfile
from pathlib import Path

from repro import SimplexTask, XSketch, XSketchConfig
from repro.core import load_xsketch, save_xsketch
from repro.streams import ip_trace_stream


def main() -> None:
    trace = ip_trace_stream(n_windows=30, window_size=1500, seed=21)
    windows = list(trace.windows())
    task = SimplexTask.paper_default(1)
    config = XSketchConfig(task=task, memory_kb=30.0)

    reference = XSketch(config, seed=5)
    for window in windows:
        reference.run_window(window)

    first_half = XSketch(config, seed=5)
    for window in windows[:15]:
        first_half.run_window(window)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sketch-checkpoint.json"
        save_xsketch(first_half, path)
        print(f"checkpoint after window 15: {path.stat().st_size / 1024:.1f} KB on disk")
        resumed = load_xsketch(path, seed=5)

    for window in windows[15:]:
        resumed.run_window(window)

    match = [r.instance for r in resumed.reports] == [r.instance for r in reference.reports]
    print(f"resumed run reports: {len(resumed.reports)}; "
          f"uninterrupted run reports: {len(reference.reports)}; identical: {match}")
    stats = resumed.stats
    print(f"stats: {stats.promotions} promotions over {stats.stage1_arrivals} "
          f"Stage-1 arrivals (gate rate {stats.promotion_rate:.4%}), "
          f"{stats.replacements_won}/{stats.replacements_won + stats.replacements_lost} "
          "replacement contests won")


if __name__ == "__main__":
    main()
