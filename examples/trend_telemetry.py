#!/usr/bin/env python
"""Operational trend telemetry from one X-Sketch pass.

Every window, the aggregator turns the sketch's simplex reports into
the data a monitoring dashboard polls: active pattern count, churn, and
the fastest-rising / fastest-falling flows.  During the planted DDoS
ramp the rising leaderboard is taken over by attack flows.

Run:  python examples/trend_telemetry.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import os

from repro.apps import TelemetryAggregator
from repro.config import XSketchConfig
from repro.core import BatchedXSketch
from repro.fitting.simplex import SimplexTask
from repro.ml import extract_features, feature_matrix
from repro.streams import ddos_stream

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    trace, scenario = ddos_stream(
        n_windows=20 if SMOKE else 50,
        window_size=400 if SMOKE else 2000,
        n_attackers=4 if SMOKE else 8,
        onset_window=6 if SMOKE else 15,
        duration=10 if SMOKE else 25,
        seed=13,
    )
    task = SimplexTask.paper_default(1)
    sketch = BatchedXSketch(XSketchConfig(task=task, memory_kb=40.0), seed=13)

    aggregator = TelemetryAggregator(top_n=3)
    aggregator.run(sketch, trace)

    print(f"{'win':>4} {'act':>4} {'churn':>5}  top rising (slope)")
    for summary in aggregator.history:
        if not summary.top_rising and not summary.started and not summary.ended:
            continue
        board = ", ".join(f"{item} ({slope:+.1f})" for item, slope in summary.top_rising)
        print(f"{summary.window:>4} {summary.active:>4} {summary.churn:>5}  {board}")

    print(f"\ntotal churn: {aggregator.total_churn()} pattern starts/endings; "
          f"attack flows: {len(scenario.attack_items)} from window {scenario.onset_window}")

    # Section I-A use case: the slopes become ML features.
    rows = extract_features(sketch.reports, p=task.p)
    matrix = feature_matrix(rows, columns=("slope", "lasting_time", "next_prediction"))
    attack_rows = [row for row in rows if str(row.item).startswith("attack-")]
    print(f"feature matrix: {len(matrix)} rows x 3 columns "
          f"({len(attack_rows)} rows from attack flows); sample:")
    for row in attack_rows[:3]:
        print(f"  {row.item}: {row.as_dict()}")


if __name__ == "__main__":
    main()
