#!/usr/bin/env python
"""Quickstart: find k-simplex items in a synthetic stream with X-Sketch.

Builds a small IP-trace-like stream, runs a k=1 X-Sketch over it window
by window, prints the simplex items it reports, and cross-checks the
result against the exact oracle.

Run:  python examples/quickstart.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import os

from repro import SimplexOracle, SimplexTask, XSketch, XSketchConfig
from repro.metrics import score_reports
from repro.streams import ip_trace_stream

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    # 1. A stream: 40 windows of 2000 arrivals, CAIDA-like statistics.
    trace = ip_trace_stream(
        n_windows=10 if SMOKE else 40, window_size=300 if SMOKE else 2000, seed=7
    )
    print(f"stream: {trace.geometry.n_windows} windows x {trace.geometry.window_size} items, "
          f"{trace.distinct_items()} distinct items")

    # 2. The task: items whose frequency ramps linearly (k = 1) across
    #    p = 7 consecutive windows, with the paper's default thresholds.
    task = SimplexTask.paper_default(1)

    # 3. An X-Sketch with ~30 KB of memory (XS-CU variant by default).
    sketch = XSketch(XSketchConfig(task=task, memory_kb=30.0), seed=7)

    # 4. Stream processing: insert arrivals, close windows, read reports.
    for window_items in trace.windows():
        for item in window_items:
            sketch.insert(item)
        for report in sketch.end_window():
            print(
                f"window {report.report_window:3d}: {report.item} is 1-simplex "
                f"from window {report.start_window} "
                f"(slope {report.coefficients[1]:+.2f}, mse {report.mse:.3f}, "
                f"lasting {report.lasting_time} windows)"
            )

    # 5. How accurate was that?  The oracle recomputes exact ground truth.
    oracle = SimplexOracle.from_stream(trace.windows(), task)
    scores = score_reports(sketch.reports, oracle.instances)
    print(
        f"\nvs exact oracle: PR={scores.precision:.3f} RR={scores.recall:.3f} "
        f"F1={scores.f1:.3f} ({scores.true_positives}/{scores.actual} instances found, "
        f"memory {sketch.memory_bytes / 1024:.1f} KB)"
    )


if __name__ == "__main__":
    main()
