#!/usr/bin/env python
"""Cache prefetching with 0-simplex items (paper Section I-A, k=0).

Stable cache lines -- fetched a near-constant number of times per window
-- are exactly the 0-simplex items of the access stream.  A small LRU
cache under heavy scan pressure evicts them between touches; feeding the
sketch's stable-line reports into a pinned prefetch buffer recovers
those hits.

Run:  python examples/cache_prefetch.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import os

from repro.apps import run_prefetch_experiment
from repro.apps.cache_prefetch import make_access_trace

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    trace = make_access_trace(
        n_windows=10 if SMOKE else 40,
        window_size=400 if SMOKE else 2000,
        n_stable_lines=40 if SMOKE else 150,
        seed=5,
    )
    print(
        f"access stream: {trace.geometry.n_windows} windows x "
        f"{trace.geometry.window_size} accesses, {trace.distinct_items()} distinct lines"
    )

    for capacity in (64, 128) if SMOKE else (128, 256, 512):
        result = run_prefetch_experiment(
            trace, cache_capacity=capacity, memory_kb=40.0, seed=5
        )
        print(
            f"cache {capacity:4d} lines: LRU hit ratio {result.baseline_hit_ratio:.3f} "
            f"-> with 0-simplex prefetch {result.prefetch_hit_ratio:.3f} "
            f"({result.improvement:+.3f}; {result.prefetched_lines} prefetches)"
        )


if __name__ == "__main__":
    main()
