#!/usr/bin/env python
"""Serving X-Sketch over the network: loopback service + load generator.

Boots the async ingest/query service (`repro.service`) over a 2-shard
inline `ShardedXSketch`, replays an IP-trace substitute through the
bundled load generator on three concurrent connections, polls the HTTP
query API, and shows the drained service produced exactly the reports a
direct in-process run of the same trace produces.

Run:  python examples/service_loopback.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import asyncio
import json
import os

from repro import ShardedXSketch, SimplexTask, XSketchConfig
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace
from repro.streams import ip_trace_stream

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


async def http_get(host: str, port: int, path: str) -> dict:
    """Minimal HTTP GET against the service's query listener."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    response = await reader.read()
    writer.close()
    return json.loads(response.split(b"\r\n\r\n", 1)[1])


async def main_async() -> None:
    trace = ip_trace_stream(
        n_windows=12 if SMOKE else 30, window_size=400 if SMOKE else 800, seed=7
    )
    config = XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=60.0)

    engine = ShardedXSketch(config, n_shards=2, seed=7, backend="inline")
    service = StreamService(
        engine,
        ServiceConfig(window_size=trace.geometry.window_size, micro_batch=256),
    )
    await service.start()
    ingest_host, ingest_port = service.ingest_address
    http_host, http_port = service.http_address
    print(f"service up: ingest={ingest_host}:{ingest_port} http={http_host}:{http_port}")

    stats = await replay_trace(
        trace, ingest_host, ingest_port, connections=3, batch_size=200
    )
    print(f"loadgen: {stats.render()}")

    health = await http_get(http_host, http_port, "/healthz")
    reports = await http_get(http_host, http_port, "/reports?limit=3")
    print(f"healthz: {health}")
    print(f"reports: {reports['total']} total, first {len(reports['reports'])}:")
    for report in reports["reports"]:
        print(f"  window {report['report_window']:3d}: {report['item']} "
              f"from window {report['start_window']}")

    await service.stop()
    served = list(service.manager.snapshot.reports)
    print(f"drained: {service.manager.windows_closed} windows, {len(served)} reports")

    direct = ShardedXSketch(config, n_shards=2, seed=7, backend="inline")
    for window in trace.windows():
        direct.run_window(window)
    direct.close()
    print(f"identical to direct in-process run: {served == direct.report()}")


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
