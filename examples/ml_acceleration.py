#!/usr/bin/env python
"""Section VI case study: X-Sketch "accelerating" frequency prediction.

Compares three next-window frequency predictors on the simplex items of
an IP-trace-like stream:

* X-Sketch -- one stream pass; predictions fall out of the fitted
  polynomials for free;
* per-item linear regression -- must sweep every active item, because
  it cannot know in advance which items are predictable;
* per-item ARIMA (time-series model) -- same sweep, heavier fit.

Run:  python examples/ml_acceleration.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import os

from repro.config import StreamGeometry
from repro.experiments import ml_comparison_table

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    overrides = {"geometry": StreamGeometry(n_windows=10, window_size=300)} if SMOKE else {}
    for dataset in ("ip_trace",) if SMOKE else ("ip_trace", "transactional"):
        text, results = ml_comparison_table(
            dataset=dataset, memory_kb=40.0, seed=3, **overrides
        )
        print(text)
        for k, result in results.items():
            print(
                f"  k={k}: X-Sketch is {result.speedup_over_linreg():.1f}x faster than "
                f"LinReg and {result.speedup_over_arima():.1f}x faster than ARIMA "
                f"({result.n_model_predictions} per-item model fits vs one stream pass)"
            )
        print()
    print(
        "Note: the paper's 100x+ ratios come from 10k-item windows and "
        "per-window model refits; scaled-down streams shrink the ratio, "
        "but the ordering and the reason (per-item models must fit every "
        "active item) are the same.  See EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
