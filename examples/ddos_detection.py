#!/usr/bin/env python
"""DDoS detection with 1-simplex items (paper Section I-A, k=1 use case).

Generates a backbone-like trace in which 12 attack flows start ramping
linearly at window 20, runs the streaming detector, and reports
detection coverage, latency, and false alarms.

Run:  python examples/ddos_detection.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import os

from repro.apps import DDoSDetector, evaluate_detector
from repro.streams import ddos_stream

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    trace, scenario = ddos_stream(
        n_windows=24 if SMOKE else 60,
        window_size=400 if SMOKE else 2000,
        n_attackers=6 if SMOKE else 12,
        onset_window=8 if SMOKE else 20,
        duration=12 if SMOKE else 25,
        seed=11,
    )
    print(
        f"trace: {trace.geometry.n_windows} windows; attack of "
        f"{len(scenario.attack_items)} flows starts at window {scenario.onset_window}"
    )

    detector = DDoSDetector(memory_kb=40.0, min_slope=1.5, seed=11)
    for window_index, window_items in enumerate(trace.windows()):
        for item in window_items:
            detector.insert(item)
        for alarm in detector.end_window():
            marker = "ATTACK" if alarm.item in scenario.attack_items else "benign"
            print(f"window {window_index:3d}: ALARM {alarm.item} "
                  f"(slope {alarm.slope:+.2f} pkts/window^2) [{marker}]")

    score = evaluate_detector(detector.alarms, scenario)
    print(
        f"\ndetected {score.detected}/{score.n_attackers} attack flows "
        f"({score.detection_rate:.0%}), {score.false_alarms} false alarms, "
        f"mean latency {score.mean_latency_windows:.1f} windows "
        f"(the definition needs p-1={detector.task.p - 1} windows of history, "
        "so that is the floor)"
    )


if __name__ == "__main__":
    main()
