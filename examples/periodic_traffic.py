#!/usr/bin/env python
"""Monitoring periodic wireless traffic with 2-simplex items (k=2).

802.15.4-style sensor nodes emit parabolic traffic bursts on a fixed
period.  A k=2 X-Sketch tracks each burst as a 2-simplex item; the
monitor merges consecutive reports into burst events with an estimated
peak window and height.

Run:  python examples/periodic_traffic.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import os
from collections import defaultdict

from repro.apps import PeriodicMonitor
from repro.apps.periodic_monitor import make_periodic_trace

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    n_nodes, period = (4, 12) if SMOKE else (6, 16)
    trace = make_periodic_trace(
        n_windows=36 if SMOKE else 70,
        window_size=400 if SMOKE else 2000,
        n_nodes=n_nodes,
        period=period,
        burst_len=7 if SMOKE else 9,
        seed=9,
    )
    print(f"trace: {trace.geometry.n_windows} windows, {n_nodes} nodes "
          f"bursting every {period} windows")

    monitor = PeriodicMonitor(memory_kb=40.0, seed=9)
    events = monitor.run(trace)

    per_node = defaultdict(list)
    for event in events:
        per_node[event.item].append(event)
    for item in sorted(per_node, key=str):
        bursts = per_node[item]
        peaks = ", ".join(f"w{e.peak_window:.0f} (h={e.peak_height:.0f})" for e in bursts)
        print(f"{item}: {len(bursts)} bursts, peaks at {peaks}")

    gaps = []
    for item, bursts in per_node.items():
        if not str(item).startswith("node-"):
            continue
        peaks = sorted(e.peak_window for e in bursts)
        gaps.extend(b - a for a, b in zip(peaks, peaks[1:]))
    if gaps:
        mean_gap = sum(gaps) / len(gaps)
        print(f"\nestimated burst period from peak gaps: {mean_gap:.1f} windows "
              f"(truth: {period})")


if __name__ == "__main__":
    main()
