#!/usr/bin/env python
"""Persistent items are not simplex items (paper Section II-B1).

The paper is careful to distinguish its new pattern from the well
studied *persistent items*: persistence only counts the windows an item
appears in, ignoring both the counts and their shape.  This example
plants two contrasting items into one stream --

* ``erratic``: present in every window but with wildly varying counts
  (highly persistent, never 1-simplex);
* ``ramp``: a clean 8-window linear ramp (1-simplex, but far below any
  persistence threshold)

-- and shows that an On-Off persistence sketch and the X-Sketch find
disjoint things.

Run:  python examples/persistent_vs_simplex.py
(REPRO_SMOKE=1 shrinks the stream for the examples smoke test.)
"""

import os

from repro.config import StreamGeometry, XSketchConfig
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.persistence import compare_persistent_and_simplex
from repro.streams.planted import (
    BackgroundTraffic,
    PlantedItem,
    PlantedWorkload,
    constant_pattern,
    linear_pattern,
)

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    geometry = (
        StreamGeometry(n_windows=20, window_size=400)
        if SMOKE
        else StreamGeometry(n_windows=30, window_size=1000)
    )
    plants = [
        PlantedItem("erratic", 0, geometry.n_windows, constant_pattern(12.0), noise=10.0),
        PlantedItem("ramp", 6, 8, linear_pattern(4.0, 3.0)),
    ]
    background = BackgroundTraffic(
        n_flows=600 if SMOKE else 2000, skew=1.0, n_stable=20, rotation_period=3
    )
    trace = PlantedWorkload("demo", geometry, background, plants).build(seed=4)

    task = SimplexTask.paper_default(1)
    comparison = compare_persistent_and_simplex(trace, task, persistence_fraction=0.8, seed=4)

    print(f"persistent items (>=80% of {geometry.n_windows} windows): "
          f"{sorted(map(str, comparison.persistent_items))[:8]} ...")
    print(f"1-simplex items: {sorted(map(str, comparison.simplex_items))}")
    print(f"Jaccard overlap: {comparison.jaccard:.2f}")
    print(f"'erratic' persistent-but-not-simplex: {'erratic' in comparison.persistent_only}")
    print(f"'ramp' simplex-but-not-persistent:    {'ramp' in comparison.simplex_only}")

    # And the streaming view: what does a k=1 X-Sketch actually report?
    sketch = XSketch(XSketchConfig(task=task, memory_kb=30.0), seed=4)
    for window in trace.windows():
        sketch.run_window(window)
    reported = {report.item for report in sketch.reports}
    print(f"\nX-Sketch reported: {sorted(map(str, reported))}")
    print("('erratic' is filtered by Short-Term Filtering: its noisy "
          "counts never fit a line within T)")


if __name__ == "__main__":
    main()
