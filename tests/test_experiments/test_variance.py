"""Unit tests for the seed-stability harness."""

import pytest

from repro.config import StreamGeometry
from repro.experiments.variance import MetricSpread, seed_stability


class TestMetricSpread:
    def test_statistics(self):
        spread = MetricSpread((0.8, 1.0, 0.9))
        assert spread.mean == pytest.approx(0.9)
        assert spread.minimum == 0.8
        assert spread.maximum == 1.0
        assert spread.std == pytest.approx(0.0816, abs=1e-3)

    def test_single_value(self):
        spread = MetricSpread((0.5,))
        assert spread.std == 0.0


class TestSeedStability:
    def test_small_run(self):
        report = seed_stability(
            dataset="ip_trace",
            k=1,
            memory_kb=10.0,
            algorithms=("xs-cm", "baseline"),
            n_seeds=2,
            geometry=StreamGeometry(n_windows=14, window_size=500),
            base_seed=1,
        )
        assert report.n_seeds == 2
        assert set(report.f1) == {"xs-cm", "baseline"}
        assert len(report.f1["xs-cm"].values) == 2
        assert "seed stability" in report.render()
