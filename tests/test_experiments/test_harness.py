"""Unit tests for the experiment harness and figure runners."""

import pytest

from repro.config import StreamGeometry
from repro.core.baseline import BaselineSolution
from repro.core.xsketch import XSketch
from repro.errors import ConfigurationError
from repro.experiments.harness import OracleCache, SeriesTable, evaluate_algorithm, make_algorithm
from repro.experiments.params import scaled_memory_kb, MEMORY_SCALE
from repro.experiments.figures import (
    accuracy_vs_memory,
    ml_comparison_table,
    param_sweep,
    stage1_structure_comparison,
)
from repro.fitting.simplex import SimplexTask
from repro.streams.datasets import make_dataset

GEOMETRY = StreamGeometry(n_windows=20, window_size=500)


class TestMakeAlgorithm:
    def test_xs_variants(self):
        task = SimplexTask.paper_default(1)
        assert isinstance(make_algorithm("xs-cm", task, 30), XSketch)
        cu = make_algorithm("xs-cu", task, 30)
        assert isinstance(cu, XSketch)
        assert cu.config.update_rule == "cu"

    def test_baseline(self):
        task = SimplexTask.paper_default(1)
        assert isinstance(make_algorithm("baseline", task, 30), BaselineSolution)

    def test_overrides_reach_config(self):
        task = SimplexTask.paper_default(1)
        sketch = make_algorithm("xs-cm", task, 30, u=8, r=0.5)
        assert sketch.config.u == 8
        assert sketch.config.r == 0.5

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("magic", SimplexTask.paper_default(1), 30)


class TestEvaluate:
    def test_result_fields(self):
        trace = make_dataset("ip_trace", n_windows=20, window_size=500, seed=1)
        task = SimplexTask.paper_default(1)
        oracle = OracleCache().get(trace, task)
        result = evaluate_algorithm("xs-cm", trace, task, 20.0, oracle, seed=1,
                                    memory_label_kb=150)
        assert result.memory_label_kb == 150
        assert 0 <= result.f1 <= 1
        assert result.mops > 0

    def test_oracle_cache_reuses(self):
        trace = make_dataset("ip_trace", n_windows=10, window_size=400, seed=1)
        task = SimplexTask.paper_default(0)
        cache = OracleCache()
        assert cache.get(trace, task) is cache.get(trace, task)


class TestSeriesTable:
    def test_render_contains_values(self):
        table = SeriesTable(title="demo", x_label="x", x_values=[1, 2])
        table.add("a", [0.5, 0.75])
        text = table.render()
        assert "demo" in text and "0.500" in text and "0.750" in text

    def test_length_mismatch(self):
        table = SeriesTable(title="demo", x_label="x", x_values=[1, 2])
        with pytest.raises(ConfigurationError):
            table.add("a", [0.5])


class TestFigureRunners:
    def test_param_sweep_shape(self):
        table = param_sweep("u", [2, 4], k=1, memories_paper=(150,), geometry=GEOMETRY, seed=1)
        assert table.x_values == [2, 4]
        assert "150KB" in table.series
        assert all(0 <= v <= 1 for v in table.column("150KB"))

    def test_param_sweep_task_param(self):
        table = param_sweep("p", [5, 7], k=1, memories_paper=(150,), geometry=GEOMETRY, seed=1)
        assert len(table.column("150KB")) == 2

    def test_param_sweep_rejects_unknown(self):
        with pytest.raises(ValueError):
            param_sweep("banana", [1], k=1, geometry=GEOMETRY)

    def test_stage1_structure_table(self):
        table = stage1_structure_comparison(k=1, memories_paper=(150,), geometry=GEOMETRY, seed=1)
        assert set(table.series) == {"Tower(CM)", "Tower(CU)", "CF", "LLF"}

    def test_accuracy_vs_memory_tables(self):
        tables = accuracy_vs_memory(
            k=0, metric="f1", datasets=("ip_trace",), memories_paper=(150, 250),
            geometry=GEOMETRY, seed=1,
        )
        table = tables["ip_trace"]
        assert set(table.series) == {"XS-CM", "XS-CU", "Baseline"}
        assert len(table.column("XS-CM")) == 2

    def test_ml_table_renders(self):
        text, results = ml_comparison_table(
            dataset="ip_trace", ks=(0,), memory_kb=30,
            geometry=StreamGeometry(n_windows=16, window_size=500), seed=1,
            n_eval_windows=2,
        )
        assert "X-Sketch" in text and "Linear Regression" in text
        assert 0 in results


class TestScaling:
    def test_scaled_memory(self):
        assert scaled_memory_kb(150) == pytest.approx(150 * MEMORY_SCALE)
