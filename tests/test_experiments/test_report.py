"""Tests for the one-shot report generator."""

import pytest

from repro.experiments.report import ReportScale, generate_report


class TestReportScale:
    def test_presets(self):
        small = ReportScale.small()
        full = ReportScale.full()
        assert small.geometry.total_items < full.geometry.total_items
        assert len(full.datasets) >= len(small.datasets)


class TestGenerateReport:
    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            generate_report(scale="galactic")

    @pytest.mark.slow
    def test_small_report_structure(self, tmp_path):
        path = tmp_path / "RESULTS.md"
        text = generate_report(path=path, scale="small", seed=1)
        assert path.read_text() == text
        for heading in (
            "Workload statistics",
            "Figures 10-24",
            "Stage-1 structure",
            "Replacement ablation",
            "ML acceleration",
            "Theorem 3-4 validation",
            "Seed stability",
        ):
            assert heading in text
        assert "0 a_k violations" in text
