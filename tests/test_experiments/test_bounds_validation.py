"""Unit tests for the Theorems 3-4 live validation harness."""

from repro.experiments.bounds_validation import validate_bounds
from repro.fitting.simplex import SimplexTask
from repro.streams.datasets import make_dataset


class TestValidateBounds:
    def test_no_violations_small_run(self):
        trace = make_dataset("ip_trace", n_windows=12, window_size=500, seed=3)
        report = validate_bounds(
            trace, SimplexTask.paper_default(1), memory_kb=8, seed=3, max_spans=400
        )
        assert report.spans_checked > 0
        assert report.ak_violations == 0
        assert report.mse_violations == 0

    def test_drift_positive_under_memory_pressure(self):
        """A starved Stage 1 must actually show estimation drift (the
        experiment would be vacuous otherwise)."""
        trace = make_dataset("mawi", n_windows=12, window_size=800, seed=4)
        report = validate_bounds(
            trace, SimplexTask.paper_default(1), memory_kb=4, seed=4, max_spans=400
        )
        assert report.mean_ak_bound > 0

    def test_max_spans_respected(self):
        trace = make_dataset("ip_trace", n_windows=12, window_size=500, seed=3)
        report = validate_bounds(
            trace, SimplexTask.paper_default(0), memory_kb=8, seed=3, max_spans=50
        )
        assert report.spans_checked <= 50

    def test_tightness_between_zero_and_one(self):
        trace = make_dataset("ip_trace", n_windows=10, window_size=400, seed=5)
        report = validate_bounds(
            trace, SimplexTask.paper_default(1), memory_kb=6, seed=5, max_spans=200
        )
        assert 0.0 <= report.ak_tightness <= 1.0
        assert 0.0 <= report.mse_tightness <= 1.0
