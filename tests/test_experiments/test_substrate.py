"""Unit tests for the substrate frequency-estimation comparison."""

from repro.experiments.substrate import SKETCH_FACTORIES, frequency_estimation_comparison


class TestFrequencyEstimationComparison:
    def test_small_run_produces_all_series(self):
        table = frequency_estimation_comparison(
            memories_bytes=(2000, 8000), n_items=3000, n_flows=400, seed=1,
            sketches=("CM", "CU", "Tower"),
        )
        assert set(table.series) == {"CM", "CU", "Tower"}
        assert all(len(table.column(name)) == 2 for name in table.series)

    def test_cu_not_worse_than_cm(self):
        table = frequency_estimation_comparison(
            memories_bytes=(3000,), n_items=4000, n_flows=500, seed=2,
            sketches=("CM", "CU"),
        )
        assert table.column("CU")[0] <= table.column("CM")[0] + 1e-9

    def test_registry_covers_all_advanced_sketches(self):
        assert {"CM", "CU", "Count", "CSM", "Tower", "Pyramid", "MV", "Elastic"} <= set(
            SKETCH_FACTORIES
        )
