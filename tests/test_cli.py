"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--dataset", "mawi", "-k", "2"])
        assert args.dataset == "mawi"
        assert args.k == 2


class TestDatasetsCommand:
    def test_list(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ip_trace" in out and "transactional" in out

    def test_generate_csv(self, tmp_path, capsys):
        output = tmp_path / "t.csv"
        code = main(
            ["datasets", "--generate", "synthetic", "--windows", "4",
             "--window-size", "100", "--output", str(output)]
        )
        assert code == 0
        assert output.exists()
        header = output.read_text().splitlines()[0]
        assert header == "window,item"


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        code = main(
            ["run", "--windows", "14", "--window-size", "400", "--quiet",
             "--memory-kb", "20", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PR=" in out and "F1=" in out

    def test_run_baseline(self, capsys):
        code = main(
            ["run", "--algorithm", "baseline", "--windows", "12",
             "--window-size", "300", "--quiet", "-k", "0", "-T", "1.0"]
        )
        assert code == 0
        assert "baseline" in capsys.readouterr().out


class TestFigureCommand:
    def test_list(self, capsys):
        assert main(["figure", "--list"]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_small_sweep(self, capsys):
        code = main(
            ["figure", "fig7", "--windows", "12", "--window-size", "300", "--seed", "1"]
        )
        assert code == 0
        assert "F1 vs G" in capsys.readouterr().out


class TestMLCommand:
    def test_ml_runs(self, capsys):
        code = main(
            ["ml", "--windows", "14", "--window-size", "400", "--memory-kb", "20",
             "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "X-Sketch" in out and "speedup" in out
