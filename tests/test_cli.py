"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--dataset", "mawi", "-k", "2"])
        assert args.dataset == "mawi"
        assert args.k == 2


class TestDatasetsCommand:
    def test_list(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ip_trace" in out and "transactional" in out

    def test_generate_csv(self, tmp_path, capsys):
        output = tmp_path / "t.csv"
        code = main(
            ["datasets", "--generate", "synthetic", "--windows", "4",
             "--window-size", "100", "--output", str(output)]
        )
        assert code == 0
        assert output.exists()
        header = output.read_text().splitlines()[0]
        assert header == "window,item"


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        code = main(
            ["run", "--windows", "14", "--window-size", "400", "--quiet",
             "--memory-kb", "20", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PR=" in out and "F1=" in out

    def test_run_baseline(self, capsys):
        code = main(
            ["run", "--algorithm", "baseline", "--windows", "12",
             "--window-size", "300", "--quiet", "-k", "0", "-T", "1.0"]
        )
        assert code == 0
        assert "baseline" in capsys.readouterr().out


class TestFigureCommand:
    def test_list(self, capsys):
        assert main(["figure", "--list"]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_small_sweep(self, capsys):
        code = main(
            ["figure", "fig7", "--windows", "12", "--window-size", "300", "--seed", "1"]
        )
        assert code == 0
        assert "F1 vs G" in capsys.readouterr().out


class TestMLCommand:
    def test_ml_runs(self, capsys):
        code = main(
            ["ml", "--windows", "14", "--window-size", "400", "--memory-kb", "20",
             "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "X-Sketch" in out and "speedup" in out


class TestStatsCommand:
    ARGS = ["stats", "--windows", "10", "--window-size", "300",
            "--memory-kb", "20", "--seed", "1"]

    def test_prints_valid_exposition(self, capsys):
        from repro.obs import parse_text, validate_text

        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        validate_text(out)
        samples = parse_text(out)
        assert samples["xsketch_windows_total"] == 10
        assert samples["xsketch_stage1_arrivals_total"] > 0
        # stats runs with observability on, so histograms are present
        assert "xsketch_stage1_potential_count" in samples

    def test_sharded_aggregation(self, capsys):
        from repro.obs import parse_text

        code = main(self.ARGS + ["--shards", "2", "--shard-backend", "inline"])
        assert code == 0
        samples = parse_text(capsys.readouterr().out)
        assert samples["runtime_windows_total"] == 10
        assert samples["xsketch_windows_total"] == 2 * 10
        assert samples["runtime_items_routed_total"] == 10 * 300

    def test_obs_trace_dump(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert main(self.ARGS + ["--obs-trace", str(trace_path)]) == 0
        events = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert events
        assert all("kind" in e and "ts" in e for e in events)

    def test_baseline_has_no_metrics(self, capsys):
        code = main(self.ARGS + ["--algorithm", "baseline"])
        assert code == 2
        assert "does not export metrics" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.handler.__name__ == "_cmd_stats"
        assert args.obs_trace is None


class TestRunObsTrace:
    def test_run_dumps_trace_jsonl(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "run_trace.jsonl"
        code = main(
            ["run", "--windows", "10", "--window-size", "300", "--quiet",
             "--memory-kb", "20", "--seed", "1", "--obs-trace", str(trace_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace events to {trace_path}" in out
        events = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert any(e["kind"] == "stage1_promotion" for e in events)

    def test_run_without_flag_writes_nothing(self, tmp_path, capsys):
        code = main(
            ["run", "--windows", "6", "--window-size", "200", "--quiet",
             "--memory-kb", "20", "--seed", "1"]
        )
        assert code == 0
        assert "trace events" not in capsys.readouterr().out


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.algorithm == "xs-cu"
        assert args.ingest_port == 0 and args.http_port == 0
        assert args.overload == "pushback"
        assert args.handler.__name__ == "_cmd_serve"

    def test_parser_full_flags(self):
        args = build_parser().parse_args(
            ["serve", "--algorithm", "xs-cm", "--shards", "2",
             "--shard-backend", "inline", "--window-size", "500",
             "--window-seconds", "0.5", "--overload", "drop",
             "--queue-batches", "8", "--duration", "3"]
        )
        assert args.shards == 2
        assert args.shard_backend == "inline"
        assert args.window_seconds == 0.5
        assert args.overload == "drop"
        assert args.duration == 3.0

    def test_rejects_bad_overload(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--overload", "panic"])


class TestLoadgenCommand:
    def test_parser(self):
        args = build_parser().parse_args(
            ["loadgen", "--port", "9999", "--connections", "3",
             "--protocol", "jsonl", "--unordered", "--shutdown"]
        )
        assert args.port == 9999
        assert args.connections == 3
        assert args.protocol == "jsonl"
        assert args.unordered and args.shutdown
        assert args.handler.__name__ == "_cmd_loadgen"

    def test_port_is_required(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen"])


@pytest.mark.slow
class TestServeLoadgenEndToEnd:
    def test_serve_drains_after_loadgen_shutdown(self):
        """Boot `repro serve` as a real process, replay a dataset at it
        with the in-process loadgen, and check the drain summary."""
        import os
        import re
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--shards", "2",
             "--shard-backend", "inline", "--window-size", "400",
             "--memory-kb", "40", "--duration", "60"],
            env=env, cwd=repo,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"ingest=([\d.]+):(\d+)", banner)
            assert match, f"no ingest address in banner: {banner!r}"
            host, port = match.group(1), int(match.group(2))
            code = main(
                ["loadgen", "--dataset", "ip_trace", "--windows", "8",
                 "--window-size", "400", "--host", host, "--port", str(port),
                 "--connections", "2", "--shutdown"]
            )
            assert code == 0
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, f"serve failed: {err}"
        summary = re.search(r"drained: windows=(\d+) reports=(\d+) items=(\d+)", out)
        assert summary, f"no drain summary in: {out!r}"
        assert int(summary.group(1)) == 8
        assert int(summary.group(3)) == 8 * 400
