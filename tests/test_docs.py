"""Documentation consistency checks.

Docs rot silently; these tests keep the load-bearing references valid:
every module path mentioned in DESIGN.md/README exists, every public
name promised by docs/API.md imports, and the examples directory
matches the README's table.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

API_EXPORTS = {
    "repro": [
        "SimplexTask", "XSketchConfig", "StreamGeometry", "XSketch",
        "BaselineSolution", "BaselineConfig", "SimplexOracle",
        "SimplexReport", "PolynomialFit", "fit_polynomial",
    ],
    "repro.core": [
        "XSketch", "BatchedXSketch", "VectorizedXSketch", "MultiKXSketch",
        "MultiKConfig", "Stage1", "Stage2", "Stage2Cell", "Promotion",
        "snapshot_xsketch", "restore_xsketch", "save_xsketch", "load_xsketch",
    ],
    "repro.fitting": [
        "fit_polynomial", "evaluate_simplex", "is_simplex", "potential",
        "ak_error_bound", "mse_error_bound", "design_matrix",
        "pseudo_inverse", "residual_projector",
    ],
    "repro.sketch": [
        "CMSketch", "CUSketch", "CountSketch", "CSMSketch", "TowerSketch",
        "ColdFilter", "LogLogFilter", "PyramidSketch", "MVSketch",
        "ElasticSketch", "SpaceSaving", "WindowedTower", "VectorizedTower",
        "CounterArray", "make_windowed_filter",
    ],
    "repro.streams": [
        "Trace", "make_dataset", "ip_trace_stream", "mawi_stream",
        "datacenter_stream", "synthetic_stream", "transactional_stream",
        "ddos_stream", "DDoSScenario", "PlantedWorkload", "PlantedItem",
        "BackgroundTraffic", "ZipfSampler", "iter_windows",
        "WindowAccumulator", "TimeWindowAccumulator", "save_trace_csv",
        "load_trace_csv", "trace_statistics", "estimate_zipf_skew",
    ],
    "repro.metrics": [
        "score_reports", "precision_rate", "recall_rate", "f1_score",
        "average_relative_error", "lasting_time_are", "measure_throughput",
        "measure_sharded_throughput", "ServiceStats", "LatencySummary",
        "percentile",
    ],
    "repro.service": [
        "StreamService", "ServiceConfig", "WindowManager", "ServiceSnapshot",
        "EngineAdapter", "serve", "replay_trace", "run_loadgen",
        "send_shutdown", "MAGIC", "encode_frame", "encode_line",
        "batch_message", "parse_message",
    ],
    "repro.obs": [
        "MetricsRegistry", "Counter", "Gauge", "Histogram",
        "Recorder", "NullRecorder", "NULL_RECORDER", "TraceRing",
        "write_jsonl", "render_text", "parse_text", "validate_text",
        "collect_xsketch", "collect_sharded", "collect_service",
    ],
    "repro.ml": [
        "LinearRegression", "LinearRegressionModel", "fit_arima",
        "arima_forecast", "ArimaModel", "fit_holt", "HoltModel",
        "prediction_accuracy", "run_ml_comparison", "XSketchPredictor",
        "extract_features", "feature_matrix", "FEATURE_NAMES",
    ],
    "repro.apps": [
        "DDoSDetector", "evaluate_detector", "LRUCache",
        "run_prefetch_experiment", "BandwidthAllocator",
        "evaluate_allocation", "PeriodicMonitor", "BurstEvent",
        "TelemetryAggregator", "WindowSummary",
    ],
    "repro.persistence": [
        "OnOffSketch", "PersistentItemFinder", "compare_persistent_and_simplex",
    ],
    "repro.experiments": [
        "make_algorithm", "evaluate_algorithm", "OracleCache", "SeriesTable",
        "param_sweep", "stage1_structure_comparison", "accuracy_vs_memory",
        "are_vs_memory", "throughput_vs_memory", "replacement_ablation",
        "ml_comparison_table", "scaled_memory_kb", "MEMORY_SCALE",
    ],
}


class TestApiPromises:
    @pytest.mark.parametrize("module_name", sorted(API_EXPORTS))
    def test_documented_names_import(self, module_name):
        module = importlib.import_module(module_name)
        missing = [name for name in API_EXPORTS[module_name] if not hasattr(module, name)]
        assert not missing, f"{module_name} is missing documented names: {missing}"


class TestDocFiles:
    @pytest.mark.parametrize(
        "filename",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/ALGORITHMS.md", "docs/API.md", "docs/PARAMETERS.md",
         "docs/DATASETS.md", "docs/RUNTIME.md", "docs/SERVICE.md",
         "docs/OBSERVABILITY.md"],
    )
    def test_doc_exists_and_nonempty(self, filename):
        path = REPO / filename
        assert path.exists(), f"{filename} missing"
        assert len(path.read_text()) > 500

    def test_design_module_references_exist(self):
        """Every `repro/...` path DESIGN.md mentions is a real file/dir."""
        text = (REPO / "DESIGN.md").read_text()
        for reference in set(re.findall(r"`(repro/[A-Za-z0-9_/.]+)`", text)):
            assert (REPO / "src" / reference).exists(), f"DESIGN.md references missing {reference}"

    def test_design_bench_references_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for reference in set(re.findall(r"`(benchmarks/[A-Za-z0-9_/.]+\.py)`", text)):
            assert (REPO / reference).exists(), f"DESIGN.md references missing {reference}"

    def test_readme_examples_exist(self):
        text = (REPO / "README.md").read_text()
        for name in set(re.findall(r"`([a-z_]+\.py)`", text)):
            assert (REPO / "examples" / name).exists(), f"README references missing example {name}"


class TestExamplesCovered:
    def test_every_example_in_readme(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, f"{example.name} not documented in README"
