"""Adversarial and degenerate-stream tests.

Streams a real deployment would eventually produce: a single item
monopolizing every window, fully distinct arrivals, saturating counts,
mixed item-ID types, and single-window geometries.  None of these may
crash or corrupt any algorithm.
"""

import pytest

from repro.config import StreamGeometry, XSketchConfig
from repro.core.baseline import BaselineConfig, BaselineSolution
from repro.core.batched import BatchedXSketch
from repro.core.oracle import SimplexOracle
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.metrics.classification import score_reports


def _all_algorithms(task, memory_kb=20.0, seed=3):
    from repro.core.vectorized import VectorizedXSketch

    return [
        XSketch(XSketchConfig(task=task, memory_kb=memory_kb), seed=seed),
        BatchedXSketch(XSketchConfig(task=task, memory_kb=memory_kb), seed=seed),
        VectorizedXSketch(XSketchConfig(task=task, memory_kb=memory_kb), seed=seed),
        BaselineSolution(BaselineConfig(task=task, memory_kb=memory_kb), seed=seed),
    ]


class TestMonopolyStream:
    """One item is every arrival of every window."""

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_runs_and_matches_oracle_items(self, k):
        task = SimplexTask.paper_default(k)
        windows = [["mono"] * 500 for _ in range(12)]
        oracle = SimplexOracle.from_stream(windows, task)
        for algorithm in _all_algorithms(task):
            for window in windows:
                algorithm.run_window(window)
            reported = {r.item for r in algorithm.reports}
            truth = {item for item, _ in oracle.instances}
            # constant 500/window: 0-simplex only
            assert reported <= {"mono"}
            if k == 0:
                assert truth == {"mono"}


class TestAllDistinctStream:
    """Every arrival is a brand-new item: nothing can be simplex."""

    def test_no_reports(self):
        task = SimplexTask.paper_default(1)
        windows = [
            [f"unique-{window}-{i}" for i in range(400)] for window in range(10)
        ]
        for algorithm in _all_algorithms(task):
            for window in windows:
                algorithm.run_window(window)
            assert algorithm.reports == []

    def test_oracle_agrees(self):
        task = SimplexTask.paper_default(1)
        windows = [
            [f"unique-{window}-{i}" for i in range(400)] for window in range(10)
        ]
        oracle = SimplexOracle.from_stream(windows, task)
        assert oracle.instances == set()


class TestSaturatingCounts:
    """Counts beyond the 4-bit bottom level must escalate, not corrupt."""

    def test_heavy_constant_item_found_k0(self):
        task = SimplexTask(k=0, p=5, T=4.0, L=1.0)
        sketch = XSketch(XSketchConfig(task=task, memory_kb=30.0, s=3), seed=1)
        windows = [["heavy"] * 900 + ["pad"] * 100 for _ in range(10)]
        oracle = SimplexOracle.from_stream(windows, task)
        for window in windows:
            sketch.run_window(window)
        scores = score_reports(sketch.reports, oracle.instances)
        assert scores.recall > 0.5


class TestMixedItemTypes:
    """Integer, string and bytes IDs may coexist in one stream."""

    def test_all_algorithms_accept_mixed_ids(self):
        task = SimplexTask.paper_default(0)
        window = [42, "flow", b"\x01\x02", -7] * 50
        for algorithm in _all_algorithms(task):
            for _ in range(8):
                algorithm.run_window(list(window))
            # constant presence of each -> k=0 candidates; no crashes
            assert all(
                isinstance(r.report_window, int) for r in algorithm.reports
            )


class TestDegenerateGeometry:
    def test_window_size_one(self):
        task = SimplexTask(k=0, p=4, T=1.0, L=1.0)
        sketch = XSketch(XSketchConfig(task=task, memory_kb=10.0, s=2), seed=1)
        for _ in range(8):
            sketch.run_window(["only"])
        assert any(r.item == "only" for r in sketch.reports)

    def test_minimal_p_and_s(self):
        task = SimplexTask(k=0, p=2, T=1.0, L=1.0)
        config = XSketchConfig(task=task, memory_kb=10.0, s=1)
        sketch = XSketch(config, seed=1)
        for _ in range(6):
            sketch.run_window(["x"] * 5 + ["y"])
        assert any(r.item == "x" for r in sketch.reports)

    def test_empty_window_stream(self):
        """Windows with zero arrivals of tracked items evict them."""
        task = SimplexTask.paper_default(0)
        sketch = XSketch(XSketchConfig(task=task, memory_kb=10.0), seed=1)
        for _ in range(8):
            sketch.run_window(["x"] * 5)
        assert sketch.stage2.lookup("x") is not None
        sketch.run_window(["other"] * 5)
        assert sketch.stage2.lookup("x") is None


class TestOracleDegenerate:
    def test_oracle_empty_stream(self):
        oracle = SimplexOracle.from_stream([], SimplexTask.paper_default(1))
        assert oracle.instances == set()
        assert oracle.reports() == []

    def test_oracle_shorter_than_p(self):
        task = SimplexTask.paper_default(1)
        windows = [["a"] * 10 for _ in range(task.p - 1)]
        oracle = SimplexOracle.from_stream(windows, task)
        assert oracle.instances == set()
