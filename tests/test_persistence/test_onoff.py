"""Unit tests for the On-Off sketch and the persistent-vs-simplex study."""

import pytest

from repro.config import StreamGeometry
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.persistence.compare import compare_persistent_and_simplex
from repro.persistence.onoff import OnOffSketch, PersistentItemFinder
from repro.streams.planted import (
    BackgroundTraffic,
    PlantedItem,
    PlantedWorkload,
    constant_pattern,
    linear_pattern,
)


class TestOnOffSketch:
    def test_counts_windows_not_arrivals(self):
        sketch = OnOffSketch(memory_bytes=8000, seed=1)
        for _ in range(50):
            sketch.insert("a")  # many arrivals, one window
        sketch.end_window()
        assert sketch.query("a") == 1

    def test_persistence_accumulates_across_windows(self):
        sketch = OnOffSketch(memory_bytes=8000, seed=1)
        for window in range(6):
            if window != 3:  # absent one window
                sketch.insert("a")
            sketch.end_window()
        assert sketch.query("a") == 5

    def test_never_underestimates(self):
        sketch = OnOffSketch(memory_bytes=400, seed=2)
        truth = {}
        import random

        rng = random.Random(0)
        for _ in range(20):
            present = rng.sample(range(60), 30)
            for item in present:
                truth[item] = truth.get(item, 0) + 1
                for _ in range(rng.randint(1, 3)):
                    sketch.insert(item)
            sketch.end_window()
        for item, persistence in truth.items():
            assert sketch.query(item) >= persistence

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            OnOffSketch(memory_bytes=1)


class TestPersistentItemFinder:
    def test_tracks_most_persistent(self):
        finder = PersistentItemFinder(memory_bytes=20000, capacity=16, seed=1)
        for window in range(12):
            finder.insert("always")
            if window % 2 == 0:
                finder.insert("sometimes")
            if window == 5:
                finder.insert("once")
            finder.end_window()
        ranked = finder.top(3)
        assert ranked[0][0] == "always"
        assert finder.query("always") == 12

    def test_exact_for_tracked_items(self):
        finder = PersistentItemFinder(memory_bytes=20000, capacity=8, seed=1)
        for _ in range(7):
            for arrival in range(5):  # multiplicity must not matter
                finder.insert("x")
            finder.end_window()
        assert finder.query("x") == 7

    def test_capacity_must_fit(self):
        with pytest.raises(ConfigurationError):
            PersistentItemFinder(memory_bytes=64, capacity=100)


class TestPersistentVsSimplex:
    def test_the_papers_distinction_holds(self):
        """An erratic regular is persistent-not-simplex; a short clean
        ramp is simplex-not-top-persistent."""
        geometry = StreamGeometry(n_windows=24, window_size=400)
        n = geometry.n_windows
        plants = [
            # erratic but ever-present: persistence n, never 1-simplex
            PlantedItem("erratic", 0, n, constant_pattern(10.0), noise=8.0),
            # short clean ramp: 1-simplex, persistence only 8
            PlantedItem("ramp", 4, 8, linear_pattern(4.0, 3.0)),
        ]
        # 'erratic' is present in all 24 windows -> persistent; 'ramp'
        # spans only 8 windows -> below the 80% persistence threshold.
        background = BackgroundTraffic(n_flows=800, skew=1.0, n_stable=14, rotation_period=3)
        trace = PlantedWorkload("cmp", geometry, background, plants).build(seed=3)
        comparison = compare_persistent_and_simplex(
            trace, SimplexTask.paper_default(1), persistence_fraction=0.8, seed=3
        )
        assert "erratic" in comparison.persistent_only
        assert "ramp" in comparison.simplex_only
        assert comparison.jaccard < 0.5
