"""Unit tests for the exact ground-truth oracle."""

import pytest

from repro.core.oracle import SimplexOracle
from repro.errors import StreamError
from repro.fitting.simplex import SimplexTask, is_simplex


def _windows(schedules, n_windows):
    for window in range(n_windows):
        items = []
        for item, schedule in schedules.items():
            items.extend([item] * int(schedule(window)))
        yield items


class TestCounting:
    def test_exact_frequencies(self):
        oracle = SimplexOracle(SimplexTask.paper_default(1))
        for window in range(3):
            for _ in range(window + 1):
                oracle.insert("a")
            oracle.end_window()
        assert oracle.frequency("a", 0) == 1
        assert oracle.frequency("a", 2) == 3
        assert oracle.frequency("a", 5) == 0
        assert oracle.frequency("ghost", 0) == 0

    def test_frequency_vector(self):
        oracle = SimplexOracle(SimplexTask.paper_default(1))
        oracle.insert("a")
        oracle.end_window()
        oracle.end_window()
        oracle.insert("a")
        oracle.end_window()
        assert oracle.frequency_vector("a", 0, 3) == [1, 0, 1]

    def test_results_require_finalize(self):
        oracle = SimplexOracle(SimplexTask.paper_default(1))
        with pytest.raises(StreamError):
            _ = oracle.instances


class TestInstanceEnumeration:
    def test_linear_item_instances(self):
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(_windows({"lin": lambda w: 5 + 3 * w}, 12), task)
        starts = sorted(w for item, w in oracle.instances if item == "lin")
        assert starts == list(range(0, 12 - task.p + 1))

    def test_flat_item_no_k1_instances(self):
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(_windows({"flat": lambda w: 8}, 12), task)
        assert not any(item == "flat" for item, _ in oracle.instances)

    def test_gap_breaks_instances(self):
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(
            _windows({"gap": lambda w: 0 if w == 5 else 5 + 3 * w}, 12), task
        )
        starts = sorted(w for item, w in oracle.instances if item == "gap")
        # no instance span may contain window 5
        assert all(not (start <= 5 <= start + task.p - 1) for start in starts)

    def test_instances_match_brute_force(self):
        """Vectorized oracle agrees with the definitional check."""
        task = SimplexTask(k=1, p=5, T=2.0, L=1.0)
        schedules = {
            "lin": lambda w: 4 + 2 * w,
            "flat": lambda w: 6,
            "noisy": lambda w: 5 + (3 * w) % 7,
            "gap": lambda w: 0 if w % 4 == 0 else 3 + 2 * w,
        }
        n = 14
        oracle = SimplexOracle.from_stream(_windows(schedules, n), task)
        for item in schedules:
            for start in range(n - task.p + 1):
                values = oracle.frequency_vector(item, start, task.p)
                assert oracle.is_instance(item, start) == is_simplex(values, task), (
                    item,
                    start,
                    values,
                )


class TestLastingTimes:
    def test_chain_lasting_grows(self):
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(_windows({"lin": lambda w: 5 + 3 * w}, 13), task)
        p = task.p
        # first instance: report at window p-1, chain start 0
        assert oracle.true_lasting("lin", 0) == p - 1
        # second instance chains: report at p, chain start still 0
        assert oracle.true_lasting("lin", 1) == p
        assert oracle.true_lasting("lin", 2) == p + 1

    def test_non_instance_has_no_lasting(self):
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(_windows({"flat": lambda w: 8}, 12), task)
        assert oracle.true_lasting("flat", 0) is None

    def test_broken_chain_restarts(self):
        task = SimplexTask(k=1, p=5, T=1.0, L=1.0)
        # linear, then flat plateau (not 1-simplex), then linear again
        def schedule(w):
            if w < 8:
                return 4 + 3 * w
            if w < 12:
                return 28
            return 28 + 3 * (w - 11)

        oracle = SimplexOracle.from_stream(_windows({"x": schedule}, 20), task)
        starts = sorted(w for item, w in oracle.instances if item == "x")
        assert starts, "expected instances on both ramps"
        assert len(starts) < 20 - task.p + 1, "the plateau must break the chain"
        # Chain property: every chain-opening instance restarts lasting at
        # p-1, and lasting grows by one along consecutive starts.
        previous = None
        for start in starts:
            lasting = oracle.true_lasting("x", start)
            if previous is None or start != previous + 1:
                assert lasting == task.p - 1
            else:
                assert lasting == oracle.true_lasting("x", previous) + 1
            previous = start


class TestOracleReports:
    def test_reports_one_per_instance(self):
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(_windows({"lin": lambda w: 5 + 3 * w}, 12), task)
        reports = oracle.reports()
        assert len(reports) == len(oracle.instances)
        for report in reports:
            assert report.mse <= task.T
            assert abs(report.coefficients[-1]) >= task.L
