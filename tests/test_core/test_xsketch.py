"""Unit and behavioral tests for the full X-Sketch."""

import pytest

from repro.config import XSketchConfig
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask


def _sketch(k=1, memory_kb=60.0, **kw):
    return XSketch(XSketchConfig(task=SimplexTask.paper_default(k), memory_kb=memory_kb, **kw), seed=7)


def _drive(sketch, schedules, n_windows, filler=0):
    """schedules: {item: callable(window) -> count}.  Returns reports."""
    reports = []
    for window in range(n_windows):
        items = []
        for item, schedule in schedules.items():
            items.extend([item] * int(schedule(window)))
        items.extend([f"noise-{window}-{i}" for i in range(filler)])
        reports.extend(sketch.run_window(items))
    return reports


class TestDetection:
    def test_linear_item_detected_k1(self):
        reports = _drive(_sketch(k=1), {"lin": lambda w: 5 + 3 * w}, 12)
        assert any(r.item == "lin" for r in reports)

    def test_decreasing_item_detected_k1(self):
        reports = _drive(_sketch(k=1), {"down": lambda w: 50 - 3 * w}, 12)
        assert any(r.item == "down" for r in reports)

    def test_constant_item_detected_k0(self):
        reports = _drive(_sketch(k=0), {"flat": lambda w: 8}, 12)
        assert any(r.item == "flat" for r in reports)

    def test_constant_item_not_reported_k1(self):
        reports = _drive(_sketch(k=1), {"flat": lambda w: 8}, 12)
        assert not any(r.item == "flat" for r in reports)

    def test_linear_item_not_reported_k2(self):
        reports = _drive(_sketch(k=2), {"lin": lambda w: 5 + 3 * w}, 12)
        assert not any(r.item == "lin" for r in reports)

    def test_parabola_detected_k2(self):
        reports = _drive(_sketch(k=2), {"par": lambda w: max(1, 60 - 1.5 * (w - 6) ** 2)}, 13)
        assert any(r.item == "par" for r in reports)

    def test_slope_below_l_not_reported(self):
        reports = _drive(_sketch(k=1), {"slow": lambda w: 10 + 0.5 * w}, 14)
        assert not any(r.item == "slow" for r in reports)

    def test_interrupted_item_not_reported(self):
        reports = _drive(
            _sketch(k=1), {"gap": lambda w: (5 + 3 * w) if w % 5 else 0}, 14
        )
        assert not any(r.item == "gap" for r in reports)


class TestReportContents:
    def test_report_fields_consistent(self):
        sketch = _sketch(k=1)
        reports = _drive(sketch, {"lin": lambda w: 5 + 3 * w}, 12)
        p = sketch.config.task.p
        for report in reports:
            assert report.report_window - report.start_window == p - 1
            assert report.mse <= sketch.config.task.T + 1e-9
            assert abs(report.coefficients[-1]) >= sketch.config.task.L - 1e-9
            assert report.lasting_time >= p - 1

    def test_slope_estimate_close_to_truth(self):
        reports = _drive(_sketch(k=1), {"lin": lambda w: 5 + 3 * w}, 12)
        slopes = [r.coefficients[1] for r in reports if r.item == "lin"]
        assert slopes
        assert all(abs(slope - 3.0) < 0.5 for slope in slopes)

    def test_lasting_time_grows_over_consecutive_reports(self):
        reports = [r for r in _drive(_sketch(k=1), {"lin": lambda w: 5 + 3 * w}, 14) if r.item == "lin"]
        lastings = [r.lasting_time for r in reports]
        assert lastings == sorted(lastings)
        assert lastings[-1] > lastings[0]

    def test_reports_property_accumulates(self):
        sketch = _sketch(k=1)
        _drive(sketch, {"lin": lambda w: 5 + 3 * w}, 12)
        assert sketch.reports == sketch.reports  # stable copy
        assert len(sketch.reports) > 0


class TestExactTracking:
    def test_tracked_frequencies_exact_after_promotion(self):
        """Theorem 2 end-to-end: once tracked, counts are exact.

        Read before the final window transition -- Algorithm 2 clears the
        earliest ring slot at each window end to make room for the next.
        """
        sketch = _sketch(k=1)
        counts = {w: 5 + 3 * w for w in range(12)}
        for window in range(11):
            for _ in range(counts[window]):
                sketch.insert("lin")
            sketch.end_window()
        for _ in range(counts[11]):
            sketch.insert("lin")
        cell = sketch.stage2.lookup("lin")
        assert cell is not None
        p = sketch.config.task.p
        last_p = cell.frequencies_ending_at(11)
        # Window 4's slot was recycled for window 11; windows 6..11 of the
        # ring are guaranteed intact, window 5 as well (slot 5).
        expected = [counts[w] for w in range(11 - p + 1, 12)]
        assert last_p[1:] == expected[1:]
        assert last_p[0] in (expected[0], 0) or last_p[0] == expected[0]

    def test_query_tracked_frequencies_none_for_unknown(self):
        sketch = _sketch()
        assert sketch.query_tracked_frequencies("ghost") is None


class TestWindowProtocol:
    def test_window_counter_advances(self):
        sketch = _sketch()
        assert sketch.window == 0
        sketch.end_window()
        assert sketch.window == 1

    def test_run_window_equivalent_to_manual(self):
        a = _sketch(k=1)
        b = _sketch(k=1)
        for window in range(10):
            items = ["lin"] * (5 + 3 * window)
            a.run_window(items)
            for item in items:
                b.insert(item)
            b.end_window()
        assert [r.instance for r in a.reports] == [r.instance for r in b.reports]

    def test_memory_accounting_within_budget(self):
        sketch = _sketch(memory_kb=100.0)
        # allow one bucket of slack for integer rounding
        assert sketch.memory_bytes <= 100.0 * 1024 * 1.05


class TestDeterminism:
    def test_same_seed_same_reports(self):
        r1 = _drive(_sketch(k=1), {"lin": lambda w: 5 + 3 * w, "flat": lambda w: 7}, 12, filler=50)
        r2 = _drive(_sketch(k=1), {"lin": lambda w: 5 + 3 * w, "flat": lambda w: 7}, 12, filler=50)
        assert [r.instance for r in r1] == [r.instance for r in r2]
