"""Tests for X-Sketch checkpoint/restore."""

import pytest

from repro.config import XSketchConfig
from repro.core.serialize import (
    load_xsketch,
    restore_xsketch,
    save_xsketch,
    snapshot_xsketch,
)
from repro.core.xsketch import XSketch
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.streams.datasets import make_dataset


def _fresh(structure="tower", seed=9):
    config = XSketchConfig(
        task=SimplexTask.paper_default(1), memory_kb=20.0, stage1_structure=structure
    )
    return XSketch(config, seed=seed)


class TestSnapshotRoundtrip:
    @pytest.mark.parametrize("structure", ["tower", "cm", "cu", "cold", "loglog"])
    def test_restored_sketch_continues_identically(self, structure):
        """Run half the stream, checkpoint, restore, run the rest: the
        report stream must match an uninterrupted run bit-for-bit."""
        trace = make_dataset("ip_trace", n_windows=24, window_size=600, seed=2)
        windows = list(trace.windows())

        uninterrupted = _fresh(structure)
        for window in windows:
            uninterrupted.run_window(window)

        first_half = _fresh(structure)
        for window in windows[:12]:
            first_half.run_window(window)
        snapshot = snapshot_xsketch(first_half)
        resumed = restore_xsketch(snapshot, seed=9)
        for window in windows[12:]:
            resumed.run_window(window)

        assert [r.instance for r in resumed.reports] == [
            r.instance for r in uninterrupted.reports
        ]
        assert resumed.window == uninterrupted.window

    def test_file_roundtrip(self, tmp_path):
        trace = make_dataset("synthetic", n_windows=12, window_size=400, seed=3)
        sketch = _fresh()
        for window in trace.windows():
            sketch.run_window(window)
        path = tmp_path / "sketch.json"
        save_xsketch(sketch, path)
        loaded = load_xsketch(path, seed=9)
        assert [r.instance for r in loaded.reports] == [r.instance for r in sketch.reports]
        assert loaded.window == sketch.window

    def test_snapshot_preserves_tracked_cells(self):
        sketch = _fresh()
        for window in range(10):
            sketch.run_window(["lin"] * (5 + 3 * window) + ["pad"] * 5)
        snapshot = snapshot_xsketch(sketch)
        resumed = restore_xsketch(snapshot, seed=9)
        original_cell = sketch.stage2.lookup("lin")
        restored_cell = resumed.stage2.lookup("lin")
        assert original_cell is not None and restored_cell is not None
        assert restored_cell.counts == original_cell.counts
        assert restored_cell.w_str == original_cell.w_str

    def test_version_check(self):
        sketch = _fresh()
        snapshot = snapshot_xsketch(sketch)
        snapshot["format_version"] = 99
        with pytest.raises(ConfigurationError):
            restore_xsketch(snapshot)

    def test_geometry_mismatch_rejected(self):
        sketch = _fresh()
        snapshot = snapshot_xsketch(sketch)
        snapshot["stage1_arrays"][0] = snapshot["stage1_arrays"][0][:-1]
        with pytest.raises(ConfigurationError):
            restore_xsketch(snapshot, seed=9)


class TestBatchedSnapshot:
    def _batched(self, seed=9):
        from repro.core.batched import BatchedXSketch

        config = XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=20.0)
        return BatchedXSketch(config, seed=seed)

    def test_batched_roundtrip_continues_identically(self):
        trace = make_dataset("ip_trace", n_windows=20, window_size=500, seed=4)
        windows = list(trace.windows())
        uninterrupted = self._batched()
        for window in windows:
            uninterrupted.run_window(window)
        half = self._batched()
        for window in windows[:10]:
            half.run_window(window)
        resumed = restore_xsketch(snapshot_xsketch(half), seed=9)
        assert type(resumed).__name__ == "BatchedXSketch"
        for window in windows[10:]:
            resumed.run_window(window)
        assert [r.instance for r in resumed.reports] == [
            r.instance for r in uninterrupted.reports
        ]

    def test_mid_window_snapshot_rejected(self):
        sketch = self._batched()
        sketch.insert("x")  # buffer non-empty
        with pytest.raises(ConfigurationError):
            snapshot_xsketch(sketch)


class TestVectorizedSnapshot:
    def _vectorized(self, seed=9):
        from repro.core.vectorized import VectorizedXSketch

        config = XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=20.0)
        return VectorizedXSketch(config, seed=seed)

    def test_vectorized_roundtrip_continues_identically(self):
        trace = make_dataset("ip_trace", n_windows=20, window_size=500, seed=4)
        windows = list(trace.windows())
        uninterrupted = self._vectorized()
        for window in windows:
            uninterrupted.run_window(window)
        half = self._vectorized()
        for window in windows[:10]:
            half.run_window(window)
        snapshot = snapshot_xsketch(half)
        assert snapshot["variant"] == "vectorized"
        resumed = restore_xsketch(snapshot, seed=9)
        assert type(resumed).__name__ == "VectorizedXSketch"
        for window in windows[10:]:
            resumed.run_window(window)
        assert [r.instance for r in resumed.reports] == [
            r.instance for r in uninterrupted.reports
        ]

    def test_snapshot_geometry_matches_scalar_tower(self):
        """The numpy tower flattens to the scalar CounterArray layout, so
        a vectorized snapshot restores as a per-arrival sketch (and back)
        with identical Stage-1 counters."""
        trace = make_dataset("ip_trace", n_windows=8, window_size=400, seed=6)
        sketch = self._vectorized()
        for window in trace.windows():
            sketch.run_window(window)
        snapshot = snapshot_xsketch(sketch)
        crossed = dict(snapshot, variant="per-arrival")
        scalar = restore_xsketch(crossed, seed=9)
        assert type(scalar).__name__ == "XSketch"
        assert snapshot_xsketch(scalar)["stage1_arrays"] == snapshot["stage1_arrays"]

    def test_mid_window_snapshot_rejected(self):
        sketch = self._vectorized()
        sketch.insert("x")  # buffer non-empty
        with pytest.raises(ConfigurationError):
            snapshot_xsketch(sketch)
