"""Unit tests for the baseline solution (Section III-A)."""

import pytest

from repro.core.baseline import BaselineConfig, BaselineSolution
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask


def _baseline(k=1, memory_kb=60.0, **kw):
    return BaselineSolution(
        BaselineConfig(task=SimplexTask.paper_default(k), memory_kb=memory_kb, **kw), seed=3
    )


def _drive(algorithm, schedules, n_windows):
    reports = []
    for window in range(n_windows):
        items = []
        for item, schedule in schedules.items():
            items.extend([item] * int(schedule(window)))
        reports.extend(algorithm.run_window(items))
    return reports


class TestBaselineConfig:
    def test_memory_split(self):
        config = BaselineConfig(memory_kb=100.0, sketch_fraction=0.7, set_fraction=0.1)
        assert config.sketch_bytes == int(100 * 1024 * 0.7)
        assert config.set_capacity > 0
        assert config.table_capacity > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"memory_kb": 0},
            {"sketch_fraction": 1.0},
            {"sketch_fraction": 0.7, "set_fraction": 0.4},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            BaselineConfig(**kwargs)


class TestBaselineDetection:
    def test_linear_item_detected(self):
        reports = _drive(_baseline(k=1), {"lin": lambda w: 5 + 3 * w}, 12)
        assert any(r.item == "lin" for r in reports)

    def test_constant_item_detected_k0(self):
        reports = _drive(_baseline(k=0), {"flat": lambda w: 8}, 12)
        assert any(r.item == "flat" for r in reports)

    def test_interrupted_item_not_reported(self):
        reports = _drive(_baseline(k=1), {"gap": lambda w: (5 + 3 * w) if w % 5 else 0}, 14)
        assert not any(r.item == "gap" for r in reports)

    def test_no_reports_before_p_windows(self):
        baseline = _baseline(k=0)
        p = baseline.config.task.p
        reports = _drive(baseline, {"flat": lambda w: 8}, p - 1)
        assert reports == []

    def test_lasting_time_grows_along_chain(self):
        reports = [r for r in _drive(_baseline(k=1), {"lin": lambda w: 5 + 3 * w}, 14) if r.item == "lin"]
        lastings = [r.lasting_time for r in reports]
        assert lastings == sorted(lastings)

    def test_set_capacity_limits_candidates(self):
        """With a tiny candidate set the baseline must drop candidates."""
        tiny = BaselineConfig(
            task=SimplexTask.paper_default(0), memory_kb=2.0, set_fraction=0.01
        )
        baseline = BaselineSolution(tiny, seed=1)
        schedules = {f"flat-{i}": (lambda w: 5) for i in range(50)}
        _drive(baseline, schedules, 10)
        assert len(baseline._candidates) <= tiny.set_capacity

    def test_window_counter(self):
        baseline = _baseline()
        baseline.run_window(["a"] * 5)
        assert baseline.window == 1

    def test_memory_accounting(self):
        baseline = _baseline(memory_kb=60.0)
        assert baseline.memory_bytes <= 60.0 * 1024 * 1.05
