"""Unit tests for Stage 2 (Weight Election, Algorithm 2 transitions)."""

import random

import pytest

from repro.config import XSketchConfig
from repro.core.stage1 import Promotion
from repro.core.stage2 import Stage2
from repro.fitting.simplex import SimplexTask


def _config(k=1, memory_kb=60.0, u=2, **kw):
    return XSketchConfig(task=SimplexTask.paper_default(k), memory_kb=memory_kb, u=u, **kw)


def _promotion(item, freqs, window, s=4):
    return Promotion(item=item, frequencies=tuple(freqs), w_str=window - s + 1, potential=10.0)


class TestInsertAndTrack:
    def test_insert_into_empty_cell(self):
        stage2 = Stage2(_config(), seed=1)
        assert stage2.try_insert(_promotion("a", [2, 4, 6, 8], 3), 3)
        assert stage2.lookup("a") is not None
        assert len(stage2) == 1

    def test_seeded_frequencies_land_in_right_slots(self):
        stage2 = Stage2(_config(), seed=1)
        stage2.try_insert(_promotion("a", [2, 4, 6, 8], 3), 3)
        cell = stage2.lookup("a")
        assert cell.frequencies_ending_at(3)[-4:] == [2, 4, 6, 8]

    def test_record_arrival_counts_exactly(self):
        """Theorem 2: counts of tracked items are exact."""
        stage2 = Stage2(_config(), seed=1)
        stage2.try_insert(_promotion("a", [2, 4, 6, 8], 3), 3)
        for _ in range(10):
            assert stage2.record_arrival("a", 4)
        cell = stage2.lookup("a")
        assert cell.counts[4 % 7] == 10

    def test_record_arrival_false_for_untracked(self):
        stage2 = Stage2(_config(), seed=1)
        assert not stage2.record_arrival("ghost", 0)

    def test_weight_is_window_minus_wstr(self):
        stage2 = Stage2(_config(), seed=1)
        stage2.try_insert(_promotion("a", [2, 4, 6, 8], 3), 3)
        assert stage2.lookup("a").weight(10) == 10 - 0


class TestWeightElection:
    def _fill_bucket(self, stage2, window, n, s=4):
        """Insert items colliding into the same bucket until full."""
        inserted = []
        target = None
        candidate = 0
        while len(inserted) < n:
            item = f"filler-{candidate}"
            candidate += 1
            bucket = stage2._bucket_of(item)
            if target is None:
                target = id(bucket)
            if id(bucket) != target:
                continue
            assert stage2.try_insert(_promotion(item, [1, 1, 1, 1], window, s), window)
            inserted.append(item)
        return inserted

    def test_full_bucket_probabilistic_replacement(self):
        config = _config(u=2)
        stage2 = Stage2(config, seed=1, rng=random.Random(0))
        residents = self._fill_bucket(stage2, 3, 2)
        bucket = stage2._bucket_of(residents[0])
        # New potential item maps elsewhere in general; force the contest
        # by promoting an item into the same bucket.
        newcomer = None
        candidate = 0
        while newcomer is None:
            item = f"new-{candidate}"
            candidate += 1
            if id(stage2._bucket_of(item)) == id(bucket):
                newcomer = item
        # Weight of residents at window 30 is large -> P = 1/W_min small.
        wins = 0
        trials = 400
        for t in range(trials):
            fresh = Stage2(config, seed=1, rng=random.Random(t))
            for resident in residents:
                fresh.try_insert(_promotion(resident, [1, 1, 1, 1], 3), 3)
            if fresh.try_insert(_promotion(newcomer, [1, 1, 1, 1], 30), 30):
                wins += 1
        w_min = 30 - 0  # residents' wstr = 0
        expected = trials / w_min
        assert wins == pytest.approx(expected, rel=0.6)

    def test_never_policy_rejects_when_full(self):
        config = _config(u=2, replacement="never")
        stage2 = Stage2(config, seed=1)
        residents = self._fill_bucket(stage2, 3, 2)
        bucket = stage2._bucket_of(residents[0])
        candidate = 0
        while True:
            item = f"new-{candidate}"
            candidate += 1
            if id(stage2._bucket_of(item)) == id(bucket):
                assert not stage2.try_insert(_promotion(item, [1, 1, 1, 1], 30), 30)
                break

    def test_always_policy_accepts_when_full(self):
        config = _config(u=2, replacement="always")
        stage2 = Stage2(config, seed=1)
        residents = self._fill_bucket(stage2, 3, 2)
        bucket = stage2._bucket_of(residents[0])
        candidate = 0
        while True:
            item = f"new-{candidate}"
            candidate += 1
            if id(stage2._bucket_of(item)) == id(bucket):
                assert stage2.try_insert(_promotion(item, [1, 1, 1, 1], 30), 30)
                assert stage2.lookup(item) is not None
                break


class TestWindowTransition:
    def test_silent_item_evicted(self):
        stage2 = Stage2(_config(), seed=1)
        stage2.try_insert(_promotion("a", [2, 4, 6, 8], 3), 3)
        # window 4 passes with no arrivals of "a"
        stage2.end_window(4)
        assert stage2.lookup("a") is None

    def test_report_after_p_windows(self):
        config = _config(k=1)
        stage2 = Stage2(config, seed=1)
        p = config.task.p
        stage2.try_insert(_promotion("lin", [2, 4, 6, 8], 3), 3)
        reports = []
        # keep a clean linear pattern running: f(w) = 2(w+1)
        for window in range(4, 10):
            for _ in range(2 * (window + 1)):
                stage2.record_arrival("lin", window)
            reports.extend(stage2.end_window(window))
        assert reports, "a clean linear item must be reported"
        first = reports[0]
        assert first.item == "lin"
        assert first.report_window - first.start_window == p - 1
        assert first.coefficients[1] == pytest.approx(2.0, abs=0.2)

    def test_failed_fit_slides_wstr(self):
        config = _config(k=1, memory_kb=60.0)
        stage2 = Stage2(config, seed=1)
        stage2.try_insert(_promotion("noisy", [2, 4, 6, 8], 3), 3)
        rng = random.Random(0)
        for window in range(4, 7):
            for _ in range(rng.choice([1, 30])):
                stage2.record_arrival("noisy", window)
            stage2.end_window(window)
        cell = stage2.lookup("noisy")
        assert cell is not None
        assert cell.w_str > 0  # slid forward after failed fits

    def test_next_slot_cleared_for_survivors(self):
        config = _config()
        stage2 = Stage2(config, seed=1)
        p = config.task.p
        stage2.try_insert(_promotion("a", [2, 4, 6, 8], 3), 3)
        stage2.record_arrival("a", 4)
        stage2.end_window(4)
        cell = stage2.lookup("a")
        assert cell.counts[5 % p] == 0

    def test_memory_accounting(self):
        config = _config(memory_kb=100.0)
        stage2 = Stage2(config, seed=1)
        assert stage2.memory_bytes <= config.stage2_bytes + config.u * config.stage2_cell_bytes
