"""Unit tests for Stage 1 (Short-Term Filtering + Potential)."""

import pytest

from repro.config import XSketchConfig
from repro.core.stage1 import Stage1
from repro.fitting.simplex import SimplexTask


def _config(k=1, G=0.5, s=4, **kw):
    return XSketchConfig(task=SimplexTask.paper_default(k), memory_kb=60.0, G=G, s=s, **kw)


def _feed_pattern(stage1, item, counts_by_window, other_items=()):
    """Drive windows 0..len-1; returns promotions seen per window."""
    promotions = []
    for window, count in enumerate(counts_by_window):
        promo = None
        for _ in range(count):
            promo = stage1.insert(item, window) or promo
        for other in other_items:
            stage1.insert(other, window)
        promotions.append(promo)
        stage1.end_window(window)
    return promotions


class TestShortTermFiltering:
    def test_gap_blocks_promotion_while_in_view(self):
        """A zero window blocks promotion until it leaves the s-window view."""
        stage1 = Stage1(_config(), seed=1)
        promotions = _feed_pattern(stage1, "gap", [3, 6, 0, 12, 15, 18, 21, 24])
        # Windows 2..5 all see the zero at window 2 inside their last-4 view.
        assert all(p is None for p in promotions[:6])
        # Once windows 3..6 are all positive the item re-qualifies.
        assert any(p is not None for p in promotions[6:])

    def test_no_promotion_before_s_windows(self):
        stage1 = Stage1(_config(), seed=1)
        promotions = _feed_pattern(stage1, "lin", [2, 4, 6])
        assert all(p is None for p in promotions)

    def test_clean_linear_item_promoted(self):
        stage1 = Stage1(_config(), seed=1)
        promotions = _feed_pattern(stage1, "lin", [2, 4, 6, 8, 10])
        assert any(p is not None for p in promotions)

    def test_promotion_carries_s_frequencies_and_wstr(self):
        stage1 = Stage1(_config(), seed=1)
        promotions = _feed_pattern(stage1, "lin", [2, 4, 6, 8])
        promo = promotions[3]
        assert promo is not None
        assert promo.item == "lin"
        assert len(promo.frequencies) == 4
        assert promo.w_str == 3 - 4 + 1  # w - s + 1
        assert list(promo.frequencies) == [2, 4, 6, 8]

    def test_flat_item_full_window_potential_below_g_for_k1(self):
        """Λ = |a_1|/(ε+Δ) ~ 0 for a constant item at window boundaries.

        Mid-window arrivals may still promote it (the current window's
        partial count fakes a slope -- the paper's Figure-2 example fits
        partially-accumulated windows too); the check here is that the
        *complete-window* view is filtered by G.
        """
        stage1 = Stage1(_config(k=1, G=0.5), seed=1)
        last_arrival_promotions = []
        for window in range(6):
            promo = None
            for _ in range(5):
                promo = stage1.insert("flat", window)
            last_arrival_promotions.append(promo)
            stage1.end_window(window)
        assert all(p is None for p in last_arrival_promotions)

    def test_flat_item_promoted_for_k0(self):
        stage1 = Stage1(_config(k=0, G=0.5), seed=1)
        promotions = _feed_pattern(stage1, "flat", [5, 5, 5, 5, 5, 5])
        assert any(p is not None for p in promotions)

    def test_g_zero_promotes_everything_positive(self):
        stage1 = Stage1(_config(k=1, G=0.0), seed=1)
        promotions = _feed_pattern(stage1, "flat", [5, 5, 5, 5, 5])
        assert any(p is not None for p in promotions)

    def test_end_window_clears_next_slot(self):
        """After a full ring rotation the stale window must read zero."""
        config = _config()
        stage1 = Stage1(config, seed=1)
        s = config.s
        stage1.insert("x", 0)
        for window in range(s + 1):
            stage1.end_window(window)
        # window 0's slot was cleared when window s opened (slot reuse)
        assert stage1.filter.query_slot("x", 0 % s) == 0


class TestStage1Structure:
    def test_memory_budget_respected(self):
        config = _config()
        stage1 = Stage1(config, seed=1)
        assert stage1.memory_bytes <= config.stage1_bytes

    @pytest.mark.parametrize("structure", ["tower", "cm", "cu", "cold", "loglog"])
    def test_all_structures_run(self, structure):
        config = XSketchConfig(
            task=SimplexTask.paper_default(1),
            memory_kb=60.0,
            stage1_structure=structure,
        )
        stage1 = Stage1(config, seed=1)
        promotions = _feed_pattern(stage1, "lin", [3, 6, 9, 12, 15])
        assert any(p is not None for p in promotions) or structure == "loglog"
