"""Tests for the multi-degree (one-pass k=0,1,2) X-Sketch."""

import pytest

from repro.config import XSketchConfig
from repro.core.multik import MultiKConfig, MultiKXSketch
from repro.core.oracle import SimplexOracle
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.metrics.classification import score_reports
from repro.streams.datasets import make_dataset


class TestMultiKConfig:
    def test_paper_default(self):
        config = MultiKConfig.paper_default(memory_kb=40.0)
        assert [task.k for task in config.tasks] == [0, 1, 2]
        assert config.base.memory_kb == 40.0

    def test_mismatched_p_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiKConfig(
                tasks=(SimplexTask(k=0, p=5), SimplexTask(k=1, p=7)),
                base=XSketchConfig(task=SimplexTask(k=1, p=7)),
            )

    def test_s_must_fit_max_degree(self):
        with pytest.raises(ConfigurationError):
            MultiKConfig(
                tasks=(SimplexTask(k=3, p=7, T=8.0),),
                base=XSketchConfig(task=SimplexTask(k=3, p=7, T=8.0), s=3),
            )

    def test_empty_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiKConfig(tasks=(), base=XSketchConfig())


class TestMultiKDetection:
    @pytest.fixture()
    def sketch(self):
        return MultiKXSketch(MultiKConfig.paper_default(memory_kb=60.0), seed=3)

    def test_one_pass_classifies_all_degrees(self, sketch):
        """A constant, a ramp and a parabola sort into k=0, 1, 2."""
        for window in range(14):
            items = (
                ["flat"] * 9
                + ["ramp"] * (5 + 3 * window)
                + ["parab"] * max(1, int(60 - 1.5 * (window - 6) ** 2))
            )
            sketch.run_window(items)
        k0 = {r.item for r in sketch.reports(0)}
        k1 = {r.item for r in sketch.reports(1)}
        k2 = {r.item for r in sketch.reports(2)}
        assert "flat" in k0 and "flat" not in k1
        assert "ramp" in k1 and "ramp" not in k0 and "ramp" not in k2
        assert "parab" in k2

    def test_matches_per_degree_oracles(self):
        trace = make_dataset("ip_trace", n_windows=30, window_size=1200, seed=6)
        sketch = MultiKXSketch(MultiKConfig.paper_default(memory_kb=40.0), seed=6)
        for window in trace.windows():
            sketch.run_window(window)
        for k in (0, 1, 2):
            oracle = SimplexOracle.from_stream(trace.windows(), SimplexTask.paper_default(k))
            scores = score_reports(sketch.reports(k), oracle.instances)
            assert scores.f1 > 0.5, f"k={k}: F1={scores.f1:.3f}"

    def test_memory_smaller_than_three_sketches(self):
        multi = MultiKXSketch(MultiKConfig.paper_default(memory_kb=60.0), seed=1)
        singles = sum(
            __import__("repro.core.xsketch", fromlist=["XSketch"]).XSketch(
                XSketchConfig(task=SimplexTask.paper_default(k), memory_kb=60.0), seed=1
            ).memory_bytes
            for k in (0, 1, 2)
        )
        assert multi.memory_bytes < singles / 2

    def test_eviction_on_silent_window(self, sketch):
        for window in range(10):
            sketch.run_window(["ramp"] * (5 + 3 * window) + ["pad"])
        assert sketch._index.get("ramp") is not None
        sketch.run_window(["pad"] * 20)
        assert sketch._index.get("ramp") is None

    def test_per_degree_wstr_slides_independently(self, sketch):
        """An item can stay 0-simplex while its k=1 claim dies."""
        for _ in range(16):
            sketch.run_window(["flat"] * 9 + ["pad"])
        cell = sketch._index["flat"]
        # degree 0 chain alive (w_str stays back), degree 1 keeps sliding
        w0 = cell.w_strs[0]
        w1 = cell.w_strs[1]
        assert w1 > w0
