"""Tests for the window-batched X-Sketch variant."""

import random

import pytest
from hypothesis import given, settings

from repro.config import XSketchConfig
from repro.core.batched import BatchedXSketch
from repro.core.oracle import SimplexOracle
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.metrics.classification import score_reports
from repro.streams.datasets import make_dataset

from tests.test_core.test_equivalence import stream_scenarios


def _batched(k=1, memory_kb=40.0, **kw):
    return BatchedXSketch(
        XSketchConfig(task=SimplexTask.paper_default(k), memory_kb=memory_kb, **kw), seed=7
    )


class TestBatchedDetection:
    def test_linear_item_detected(self):
        sketch = _batched(k=1)
        for window in range(12):
            sketch.run_window(["lin"] * (5 + 3 * window))
        assert any(r.item == "lin" for r in sketch.reports)

    def test_interrupted_item_not_reported(self):
        sketch = _batched(k=1)
        for window in range(14):
            count = (5 + 3 * window) if window % 5 else 0
            sketch.run_window(["gap"] * count + ["pad"])
        assert not any(r.item == "gap" for r in sketch.reports)

    def test_insert_protocol_equivalent_to_run_window(self):
        a = _batched()
        b = _batched()
        for window in range(10):
            items = ["lin"] * (5 + 3 * window) + ["x"] * 3
            a.run_window(items)
            for item in items:
                b.insert(item)
            b.end_window()
        assert [r.instance for r in a.reports] == [r.instance for r in b.reports]

    def test_stats_populate(self):
        sketch = _batched()
        for window in range(8):
            sketch.run_window(["lin"] * (5 + 3 * window) + ["noise"] * 5)
        stats = sketch.stats
        assert stats.windows == 8
        assert stats.stage1_arrivals > 0
        assert stats.promotions >= 1


class TestBatchedVsPerArrival:
    def test_tracked_counts_identical(self):
        """Final Stage-2 counts must match per-arrival mode exactly."""
        counts = {w: 5 + 3 * w for w in range(11)}
        per_arrival = XSketch(
            XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0), seed=7
        )
        batched = _batched()
        for window in range(11):
            items = ["lin"] * counts[window]
            per_arrival.run_window(items)
            batched.run_window(items)
        cell_a = per_arrival.stage2.lookup("lin")
        cell_b = batched.stage2.lookup("lin")
        assert cell_a is not None and cell_b is not None
        assert cell_a.counts == cell_b.counts

    def test_batched_at_least_as_accurate_on_realistic_stream(self):
        trace = make_dataset("ip_trace", n_windows=30, window_size=1200, seed=4)
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(trace.windows(), task)
        config = XSketchConfig(task=task, memory_kb=15.0)
        per_arrival = XSketch(config, seed=5)
        batched = BatchedXSketch(config, seed=5)
        for window in trace.windows():
            per_arrival.run_window(window)
            batched.run_window(window)
        f1_per_arrival = score_reports(per_arrival.reports, oracle.instances).f1
        f1_batched = score_reports(batched.reports, oracle.instances).f1
        assert f1_batched >= f1_per_arrival - 0.05


class TestBatchedEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(stream_scenarios())
    def test_batched_equals_oracle_without_collisions(self, scenario):
        """The no-collision exactness property holds for batched mode."""
        task, schedules, n_windows, shuffle_seed = scenario
        s = max(task.k + 1, min(4, task.p - 1))
        config = XSketchConfig(task=task, memory_kb=5000.0, G=0.0, s=s)
        sketch = BatchedXSketch(config, seed=shuffle_seed)
        oracle = SimplexOracle(task)
        rng = random.Random(shuffle_seed)
        for window in range(n_windows):
            arrivals = []
            for item, counts in schedules.items():
                arrivals.extend([item] * counts[window])
            rng.shuffle(arrivals)
            for item in arrivals:
                sketch.insert(item)
                oracle.insert(item)
            sketch.end_window()
            oracle.end_window()
        oracle.finalize()
        assert {r.instance for r in sketch.reports} == oracle.instances
