"""Tests for the X-Sketch operational statistics."""

from repro.config import XSketchConfig
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask


def _sketch(**kw):
    return XSketch(XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0, **kw), seed=2)


class TestStats:
    def test_counters_accumulate(self):
        sketch = _sketch()
        for window in range(10):
            sketch.run_window(["lin"] * (5 + 3 * window) + [f"n{window}-{i}" for i in range(40)])
        stats = sketch.stats
        assert stats.windows == 10
        assert stats.stage1_arrivals > 0
        assert stats.stage1_fits > 0
        assert stats.promotions >= 1
        assert stats.reports == len(sketch.reports)
        assert stats.inserts_empty >= stats.stage2_tracked

    def test_promotion_rate_bounds(self):
        sketch = _sketch()
        for window in range(8):
            sketch.run_window(["lin"] * (5 + 3 * window) + ["noise"] * 10)
        rate = sketch.stats.promotion_rate
        assert 0.0 <= rate <= 1.0

    def test_tracked_items_counted(self):
        sketch = _sketch()
        for window in range(8):
            sketch.run_window(["lin"] * (5 + 3 * window))
        assert sketch.stats.stage2_tracked == 1

    def test_eviction_counter(self):
        sketch = _sketch()
        for window in range(8):
            sketch.run_window(["lin"] * (5 + 3 * window) + ["pad"])
        # 'lin' disappears: eviction at the next transition
        sketch.run_window(["pad"] * 30)
        assert sketch.stats.evictions_zero >= 1

    def test_fresh_sketch_all_zero(self):
        stats = _sketch().stats
        assert stats.stage1_arrivals == 0
        assert stats.promotions == 0
        assert stats.reports == 0
        assert stats.promotion_rate == 0.0
