"""Property: under collision-free conditions X-Sketch is exact.

With ample memory (no hash collisions, no bucket contention) and the
Potential gate open (G = 0), X-Sketch's report set must equal the exact
oracle's instance set on ANY stream: Stage 1's counts are exact without
collisions, promotion happens as soon as positivity holds, Stage 2
counts exactly (Theorem 2), and the fits run over identical numbers.

This is the strongest end-to-end correctness statement the design
supports, and it pins both implementations (sketch and oracle) against
each other.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import XSketchConfig
from repro.core.oracle import SimplexOracle
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask


@st.composite
def stream_scenarios(draw):
    """A small random multi-item stream plus a random task."""
    k = draw(st.integers(min_value=0, max_value=2))
    p = draw(st.integers(min_value=max(4, k + 2), max_value=7))
    task = SimplexTask(k=k, p=p, T=draw(st.sampled_from([1.0, 2.0, 4.0])), L=1.0)
    n_windows = draw(st.integers(min_value=p + 1, max_value=14))
    n_items = draw(st.integers(min_value=1, max_value=8))
    schedules = {}
    for index in range(n_items):
        kind = draw(st.sampled_from(["const", "lin", "quad", "noisy", "gappy"]))
        base = draw(st.integers(min_value=1, max_value=10))
        slope = draw(st.integers(min_value=-3, max_value=4))
        counts = []
        for window in range(n_windows):
            value = base + slope * window
            if kind == "quad":
                value += window * window
            if kind == "noisy":
                value += draw(st.integers(min_value=-2, max_value=2))
            if kind == "gappy" and window % 4 == 0:
                value = 0
            counts.append(max(0, value))
        schedules[f"item-{index}"] = counts
    shuffle_seed = draw(st.integers(min_value=0, max_value=2**16))
    return task, schedules, n_windows, shuffle_seed


@settings(max_examples=25, deadline=None)
@given(stream_scenarios())
def test_baseline_equals_oracle_without_collisions(scenario):
    """The baseline is also exact when nothing collides and the
    candidate set / lasting-time table never fill -- pinning the second
    algorithm implementation against the oracle too."""
    from repro.core.baseline import BaselineConfig, BaselineSolution

    task, schedules, n_windows, shuffle_seed = scenario
    config = BaselineConfig(task=task, memory_kb=5000.0)
    baseline = BaselineSolution(config, seed=shuffle_seed)
    oracle = SimplexOracle(task)
    rng = random.Random(shuffle_seed)
    for window in range(n_windows):
        arrivals = []
        for item, counts in schedules.items():
            arrivals.extend([item] * counts[window])
        rng.shuffle(arrivals)
        for item in arrivals:
            baseline.insert(item)
            oracle.insert(item)
        baseline.end_window()
        oracle.end_window()
    oracle.finalize()
    assert {r.instance for r in baseline.reports} == oracle.instances


@settings(max_examples=40, deadline=None)
@given(stream_scenarios())
def test_xsketch_equals_oracle_without_collisions(scenario):
    task, schedules, n_windows, shuffle_seed = scenario
    s = max(task.k + 1, min(4, task.p - 1))
    config = XSketchConfig(task=task, memory_kb=5000.0, G=0.0, s=s)
    sketch = XSketch(config, seed=shuffle_seed)
    oracle = SimplexOracle(task)
    rng = random.Random(shuffle_seed)
    for window in range(n_windows):
        arrivals = []
        for item, counts in schedules.items():
            arrivals.extend([item] * counts[window])
        rng.shuffle(arrivals)
        for item in arrivals:
            sketch.insert(item)
            oracle.insert(item)
        sketch.end_window()
        oracle.end_window()
    oracle.finalize()

    reported = {report.instance for report in sketch.reports}
    assert reported == oracle.instances
