"""Tests for the vectorized (numpy-batched) X-Sketch engine."""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import XSketchConfig
from repro.core.oracle import SimplexOracle
from repro.core.vectorized import VectorizedXSketch
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.metrics.classification import score_reports
from repro.sketch.vectorized_tower import VectorizedTower
from repro.sketch.windowed import WindowedTower
from repro.streams.datasets import make_dataset

from tests.test_core.test_equivalence import stream_scenarios


class TestVectorizedTower:
    def test_positions_cached_and_shaped(self):
        tower = VectorizedTower(memory_bytes=20000, s=4, d=3, seed=1)
        positions = tower.positions(["a", "b", "a"])
        assert positions.shape == (3, 3)
        assert (positions[0] == positions[2]).all()

    @pytest.mark.parametrize("rule", ["cm", "cu"])
    def test_matches_scalar_tower_single_items(self, rule):
        """One item per batch: vectorized reads equal the scalar tower."""
        scalar = WindowedTower(memory_bytes=20000, s=3, d=3, update_rule=rule, seed=2)
        vector = VectorizedTower(memory_bytes=20000, s=3, d=3, update_rule=rule, seed=2)
        rng = random.Random(0)
        for _ in range(300):
            item = f"i{rng.randrange(40)}"
            slot = rng.randrange(3)
            scalar.insert(item, slot)
            vector.bulk_insert(vector.positions([item]), np.array([1]), slot)
        for item in {f"i{i}" for i in range(40)}:
            positions = vector.positions([item])
            for slot in range(3):
                assert (
                    vector.query_recent(positions, [slot])[0, 0]
                    == scalar.query_slot(item, slot)
                )

    def test_bulk_cm_equals_repeated_adds(self):
        tower = VectorizedTower(memory_bytes=20000, s=2, d=3, seed=3)
        positions = tower.positions(["x"])
        tower.bulk_insert(positions, np.array([37]), 0)
        assert tower.query_recent(positions, [0])[0, 0] == 37

    def test_saturation_and_escalation(self):
        tower = VectorizedTower(memory_bytes=20000, s=2, d=3, seed=3)
        positions = tower.positions(["hot"])
        tower.bulk_insert(positions, np.array([300]), 0)
        assert tower.query_recent(positions, [0])[0, 0] >= 300

    def test_clear_slot(self):
        tower = VectorizedTower(memory_bytes=20000, s=2, d=3, seed=3)
        positions = tower.positions(["x"])
        tower.bulk_insert(positions, np.array([5]), 0)
        tower.clear_slot(0)
        assert tower.query_recent(positions, [0])[0, 0] == 0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            VectorizedTower(memory_bytes=2, s=4)
        with pytest.raises(ConfigurationError):
            VectorizedTower(memory_bytes=2000, s=4, update_rule="median")


class TestVectorizedXSketch:
    def test_requires_tower_structure(self):
        config = XSketchConfig(
            task=SimplexTask.paper_default(1), memory_kb=20.0, stage1_structure="cold"
        )
        with pytest.raises(ConfigurationError):
            VectorizedXSketch(config, seed=1)

    def test_linear_item_detected(self):
        sketch = VectorizedXSketch(
            XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0), seed=7
        )
        for window in range(12):
            sketch.run_window(["lin"] * (5 + 3 * window) + ["pad"] * 5)
        assert any(r.item == "lin" for r in sketch.reports)

    def test_accuracy_on_realistic_stream(self):
        trace = make_dataset("ip_trace", n_windows=30, window_size=1200, seed=4)
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(trace.windows(), task)
        sketch = VectorizedXSketch(XSketchConfig(task=task, memory_kb=20.0), seed=5)
        for window in trace.windows():
            sketch.run_window(window)
        assert score_reports(sketch.reports, oracle.instances).f1 > 0.7

    def test_stats_populate(self):
        sketch = VectorizedXSketch(
            XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0), seed=7
        )
        for window in range(10):
            sketch.run_window(["lin"] * (5 + 3 * window) + ["noise"] * 10)
        stats = sketch.stats
        assert stats.windows == 10
        assert stats.stage1_arrivals > 0
        assert stats.promotions >= 1

    @settings(max_examples=20, deadline=None)
    @given(stream_scenarios())
    def test_vectorized_equals_oracle_without_collisions(self, scenario):
        task, schedules, n_windows, shuffle_seed = scenario
        s = max(task.k + 1, min(4, task.p - 1))
        config = XSketchConfig(task=task, memory_kb=5000.0, G=0.0, s=s)
        sketch = VectorizedXSketch(config, seed=shuffle_seed)
        oracle = SimplexOracle(task)
        for window in range(n_windows):
            for item, counts in schedules.items():
                for _ in range(counts[window]):
                    sketch.insert(item)
                    oracle.insert(item)
            sketch.end_window()
            oracle.end_window()
        oracle.finalize()
        assert {r.instance for r in sketch.reports} == oracle.instances


class TestBatchedPositionHashing:
    """The batched hash path must be bit-identical to the scalar family."""

    ITEMS = [1, -5, 0, 2**40, "hello", "x", "longer-string-item", b"\x01\x02", b""]

    @pytest.mark.parametrize("seed", [0, 7, 123456])
    def test_crc_rows_match_scalar_hash32(self, seed):
        tower = VectorizedTower(memory_bytes=20000, s=4, d=3, seed=seed)
        rows = tower._hash_rows(self.ITEMS)
        for row, item in zip(rows, self.ITEMS):
            for index in range(tower.d):
                expected = tower.family.hash32(item, index) % tower.level_counters[index]
                assert int(row[index]) == expected

    @pytest.mark.parametrize("name", ["bob", "murmur"])
    def test_fallback_families_match_scalar_hash32(self, name):
        tower = VectorizedTower(memory_bytes=20000, s=4, d=3, seed=3, hash_family=name)
        rows = tower._hash_rows(self.ITEMS)
        for row, item in zip(rows, self.ITEMS):
            for index in range(tower.d):
                expected = tower.family.hash32(item, index) % tower.level_counters[index]
                assert int(row[index]) == expected

    def test_positions_bypass_and_cache_agree(self):
        """Cached reads return exactly what the fresh hash computed."""
        tower = VectorizedTower(memory_bytes=20000, s=4, d=3, seed=1)
        first = tower.positions(self.ITEMS)
        second = tower.positions(self.ITEMS)  # all hits now
        assert (first == second).all()
        assert tower.cache_info()["hits"] == len(self.ITEMS)


class TestPositionCache:
    def test_capacity_bound_and_eviction_count(self):
        tower = VectorizedTower(memory_bytes=20000, s=4, d=3, seed=1, pos_cache_capacity=10)
        tower.positions([f"i{j}" for j in range(25)])
        info = tower.cache_info()
        assert info["size"] == 10
        assert info["evictions"] == 15
        assert info["misses"] == 25
        assert info["capacity"] == 10

    def test_lru_refresh_keeps_hot_items(self):
        tower = VectorizedTower(memory_bytes=20000, s=4, d=3, seed=1, pos_cache_capacity=4)
        tower.positions(["a", "b", "c", "d"])
        tower.positions(["a"])  # refresh "a"; "b" is now the oldest
        tower.positions(["e"])  # evicts exactly one: "b"
        hits_before = tower.cache_info()["hits"]
        tower.positions(["a"])
        assert tower.cache_info()["hits"] == hits_before + 1
        misses_before = tower.cache_info()["misses"]
        tower.positions(["b"])
        assert tower.cache_info()["misses"] == misses_before + 1

    def test_zero_capacity_disables_caching(self):
        tower = VectorizedTower(memory_bytes=20000, s=4, d=3, seed=1, pos_cache_capacity=0)
        tower.positions(["a", "b"])
        tower.positions(["a", "b"])
        info = tower.cache_info()
        assert info["size"] == 0
        assert info["hits"] == 0
        assert info["misses"] == 4

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorizedTower(memory_bytes=20000, s=4, d=3, pos_cache_capacity=-1)


class TestVectorizedTowerMerge:
    def test_split_inserts_equal_single_tower(self):
        rng = random.Random(4)
        single = VectorizedTower(memory_bytes=20000, s=3, d=3, seed=2)
        left = VectorizedTower(memory_bytes=20000, s=3, d=3, seed=2)
        right = VectorizedTower(memory_bytes=20000, s=3, d=3, seed=2)
        items = [f"i{j}" for j in range(60)]
        for item in items:
            count = rng.randrange(1, 9)
            slot = rng.randrange(3)
            positions = single.positions([item])
            single.bulk_insert(positions, np.array([count]), slot)
            side = left if sum(item.encode()) % 2 == 0 else right
            side.bulk_insert(side.positions([item]), np.array([count]), slot)
        left.merge(right)
        for item in items:
            for slot in range(3):
                assert (
                    left.query_recent(left.positions([item]), [slot])[0, 0]
                    == single.query_recent(single.positions([item]), [slot])[0, 0]
                )

    def test_mismatches_rejected(self):
        from repro.errors import MergeError

        base = VectorizedTower(memory_bytes=20000, s=3, d=3, seed=2)
        with pytest.raises(MergeError):
            base.merge(VectorizedTower(memory_bytes=20000, s=4, d=3, seed=2))
        with pytest.raises(MergeError):
            base.merge(VectorizedTower(memory_bytes=40000, s=3, d=3, seed=2))
        with pytest.raises(MergeError):
            base.merge(VectorizedTower(memory_bytes=20000, s=3, d=3, seed=3))
        with pytest.raises(MergeError):
            base.merge(
                VectorizedTower(memory_bytes=20000, s=3, d=3, seed=2, update_rule="cu")
            )


class TestVectorizedSketchMerge:
    def _config(self, **overrides):
        overrides.setdefault("memory_kb", 80.0)
        return XSketchConfig(task=SimplexTask.paper_default(1), **overrides)

    @staticmethod
    def _side(item):
        text = item if isinstance(item, str) else repr(item)
        return sum(text.encode()) % 2

    def test_merge_combines_report_streams_in_canonical_order(self, controlled_trace):
        config = self._config()
        windows = list(controlled_trace.windows())
        left_stream = [[i for i in w if self._side(i) == 0] for w in windows]
        right_stream = [[i for i in w if self._side(i) == 1] for w in windows]
        a = VectorizedXSketch(config, seed=31)
        b = VectorizedXSketch(config, seed=31)
        for left, right in zip(left_stream, right_stream):
            a.run_window(left)
            b.run_window(right)
        expected = sorted(
            [(r.report_window, str(r.item)) for r in a.reports + b.reports]
        )
        a.merge(b)
        assert [(r.report_window, str(r.item)) for r in a.reports] == expected
        assert any(expected)  # the split stream actually produced reports

    def test_merge_requires_same_window_config_and_boundary(self):
        from repro.errors import MergeError

        config = self._config()
        a = VectorizedXSketch(config, seed=31)
        b = VectorizedXSketch(config, seed=31)
        b.run_window(["x"] * 10)
        with pytest.raises(MergeError):
            a.merge(b)
        with pytest.raises(MergeError):
            a.merge(VectorizedXSketch(self._config(memory_kb=50.0), seed=31))
        c = VectorizedXSketch(config, seed=31)
        c.insert("pending")
        with pytest.raises(MergeError):
            a.merge(c)

    def test_satisfies_mergeable_protocol(self):
        from repro.runtime.mergeable import Mergeable

        assert isinstance(VectorizedXSketch(self._config(), seed=31), Mergeable)


class TestDegenerateBatches:
    def _sketch(self, memory_kb=40.0):
        return VectorizedXSketch(
            XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=memory_kb), seed=7
        )

    def test_empty_window_emits_no_reports_and_advances(self):
        sketch = self._sketch()
        assert sketch.run_window([]) == []
        assert sketch.window == 1
        for _ in range(10):
            assert sketch.run_window([]) == []
        assert sketch.window == 11

    def test_empty_windows_match_scalar_engines(self):
        from repro.core.batched import BatchedXSketch
        from repro.core.xsketch import XSketch

        config = XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0)
        engines = [
            XSketch(config, seed=7),
            BatchedXSketch(config, seed=7),
            self._sketch(),
        ]
        for engine in engines:
            for _ in range(8):
                engine.run_window([])
        assert {e.window for e in engines} == {8}
        assert all(e.reports == [] for e in engines)

    def test_single_item_windows(self):
        sketch = self._sketch()
        for window in range(12):
            sketch.run_window(["solo"])
        assert sketch.window == 12
        assert sketch.stats.stage1_arrivals == 12

    def test_all_tracked_window_skips_stage1(self):
        """Once every arrival hits Stage 2, the Stage-1 batch is empty
        and the numpy path must cope with (0, d) arrays."""
        sketch = self._sketch()
        for window in range(12):
            sketch.run_window(["lin"] * (5 + 3 * window))
        assert sketch.stage2.lookup("lin") is not None
        arrivals_before = sketch.stats.stage1_arrivals
        sketch.run_window(["lin"] * 50)  # tracked: bypasses Stage 1 entirely
        assert sketch.stats.stage1_arrivals == arrivals_before

    def test_ingest_batch_equals_per_item_inserts(self):
        a = self._sketch()
        b = self._sketch()
        stream = [f"i{j % 7}" for j in range(40)]
        a.ingest_batch(stream)
        for item in stream:
            b.insert(item)
        assert a._buffer == b._buffer
        assert a.end_window() == b.end_window()
