"""Tests for the vectorized (numpy-batched) X-Sketch engine."""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import XSketchConfig
from repro.core.oracle import SimplexOracle
from repro.core.vectorized import VectorizedXSketch
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.metrics.classification import score_reports
from repro.sketch.vectorized_tower import VectorizedTower
from repro.sketch.windowed import WindowedTower
from repro.streams.datasets import make_dataset

from tests.test_core.test_equivalence import stream_scenarios


class TestVectorizedTower:
    def test_positions_cached_and_shaped(self):
        tower = VectorizedTower(memory_bytes=20000, s=4, d=3, seed=1)
        positions = tower.positions(["a", "b", "a"])
        assert positions.shape == (3, 3)
        assert (positions[0] == positions[2]).all()

    @pytest.mark.parametrize("rule", ["cm", "cu"])
    def test_matches_scalar_tower_single_items(self, rule):
        """One item per batch: vectorized reads equal the scalar tower."""
        scalar = WindowedTower(memory_bytes=20000, s=3, d=3, update_rule=rule, seed=2)
        vector = VectorizedTower(memory_bytes=20000, s=3, d=3, update_rule=rule, seed=2)
        rng = random.Random(0)
        for _ in range(300):
            item = f"i{rng.randrange(40)}"
            slot = rng.randrange(3)
            scalar.insert(item, slot)
            vector.bulk_insert(vector.positions([item]), np.array([1]), slot)
        for item in {f"i{i}" for i in range(40)}:
            positions = vector.positions([item])
            for slot in range(3):
                assert (
                    vector.query_recent(positions, [slot])[0, 0]
                    == scalar.query_slot(item, slot)
                )

    def test_bulk_cm_equals_repeated_adds(self):
        tower = VectorizedTower(memory_bytes=20000, s=2, d=3, seed=3)
        positions = tower.positions(["x"])
        tower.bulk_insert(positions, np.array([37]), 0)
        assert tower.query_recent(positions, [0])[0, 0] == 37

    def test_saturation_and_escalation(self):
        tower = VectorizedTower(memory_bytes=20000, s=2, d=3, seed=3)
        positions = tower.positions(["hot"])
        tower.bulk_insert(positions, np.array([300]), 0)
        assert tower.query_recent(positions, [0])[0, 0] >= 300

    def test_clear_slot(self):
        tower = VectorizedTower(memory_bytes=20000, s=2, d=3, seed=3)
        positions = tower.positions(["x"])
        tower.bulk_insert(positions, np.array([5]), 0)
        tower.clear_slot(0)
        assert tower.query_recent(positions, [0])[0, 0] == 0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            VectorizedTower(memory_bytes=2, s=4)
        with pytest.raises(ConfigurationError):
            VectorizedTower(memory_bytes=2000, s=4, update_rule="median")


class TestVectorizedXSketch:
    def test_requires_tower_structure(self):
        config = XSketchConfig(
            task=SimplexTask.paper_default(1), memory_kb=20.0, stage1_structure="cold"
        )
        with pytest.raises(ConfigurationError):
            VectorizedXSketch(config, seed=1)

    def test_linear_item_detected(self):
        sketch = VectorizedXSketch(
            XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0), seed=7
        )
        for window in range(12):
            sketch.run_window(["lin"] * (5 + 3 * window) + ["pad"] * 5)
        assert any(r.item == "lin" for r in sketch.reports)

    def test_accuracy_on_realistic_stream(self):
        trace = make_dataset("ip_trace", n_windows=30, window_size=1200, seed=4)
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(trace.windows(), task)
        sketch = VectorizedXSketch(XSketchConfig(task=task, memory_kb=20.0), seed=5)
        for window in trace.windows():
            sketch.run_window(window)
        assert score_reports(sketch.reports, oracle.instances).f1 > 0.7

    def test_stats_populate(self):
        sketch = VectorizedXSketch(
            XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0), seed=7
        )
        for window in range(10):
            sketch.run_window(["lin"] * (5 + 3 * window) + ["noise"] * 10)
        stats = sketch.stats
        assert stats.windows == 10
        assert stats.stage1_arrivals > 0
        assert stats.promotions >= 1

    @settings(max_examples=20, deadline=None)
    @given(stream_scenarios())
    def test_vectorized_equals_oracle_without_collisions(self, scenario):
        task, schedules, n_windows, shuffle_seed = scenario
        s = max(task.k + 1, min(4, task.p - 1))
        config = XSketchConfig(task=task, memory_kb=5000.0, G=0.0, s=s)
        sketch = VectorizedXSketch(config, seed=shuffle_seed)
        oracle = SimplexOracle(task)
        for window in range(n_windows):
            for item, counts in schedules.items():
                for _ in range(counts[window]):
                    sketch.insert(item)
                    oracle.insert(item)
            sketch.end_window()
            oracle.end_window()
        oracle.finalize()
        assert {r.instance for r in sketch.reports} == oracle.instances
