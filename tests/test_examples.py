"""Examples smoke test: every ``examples/*.py`` must still run.

Each example is executed in a subprocess with ``REPRO_SMOKE=1``, which
the examples honor by shrinking their streams to a few small windows —
enough to exercise the whole code path without turning the tier-1 suite
into a benchmark.  A broken import, renamed API, or crashed main() in
any example fails here instead of rotting silently.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def test_examples_directory_found():
    assert EXAMPLES, "no examples found — did examples/ move?"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_in_smoke_mode(example):
    env = dict(os.environ)
    env["REPRO_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(example)],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
        cwd=REPO,
    )
    assert result.returncode == 0, (
        f"{example.name} failed (exit {result.returncode})\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.name)
def test_example_has_main_guard(example):
    """Examples must be import-safe: work happens under a __main__ guard."""
    source = example.read_text()
    assert 'if __name__ == "__main__":' in source, (
        f"{example.name} lacks a __main__ guard"
    )
