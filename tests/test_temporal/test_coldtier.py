"""Cold-tier spill, transparent reload, and full save/restore round trips."""

import json
import random

import pytest

from repro.errors import ConfigurationError
from repro.temporal import TemporalPolicy, TemporalStore, restore_store
from repro.temporal.coldtier import MANIFEST_NAME
from tests.test_temporal.test_store import make_report

SEED = 42


def spilling_store(tmp_path, windows=64, hot_payloads=3, level_capacity=2):
    policy = TemporalPolicy(
        freq_memory_kb=1.0,
        level_capacity=level_capacity,
        hot_payloads=hot_payloads,
        spill_dir=str(tmp_path / "spill"),
        fidelity_windows=2,
    )
    store = TemporalStore(policy, seed=SEED)
    rng = random.Random(SEED)
    for window in range(windows):
        store.observe_items([f"i{rng.randrange(20)}" for _ in range(50)])
        store.on_window(
            window,
            [make_report(f"i{window % 4}", window, slope=0.2)],
            snapshot_fn=lambda: {"marker": window},
        )
    return store


class TestSpill:
    def test_hot_payload_cap_enforced(self, tmp_path):
        store = spilling_store(tmp_path)
        hot = [n for n in store.snapshot.nodes if not n.spilled]
        spilled = [n for n in store.snapshot.nodes if n.spilled]
        assert len(hot) <= store.policy.hot_payloads
        assert spilled, "64 windows with hot cap 3 must have spilled"
        assert store.spills >= len(spilled)
        for node in spilled:
            assert node.freq is None and node.reports == ()
            assert node.memory_bytes == 0
        assert store.cold.bytes_on_disk > 0

    def test_queries_transparent_over_spilled_region(self, tmp_path):
        store = spilling_store(tmp_path)
        before = store.cold_loads
        reports = store.range_reports(0, 15)
        assert [r.report_window for r in reports] == list(range(16))
        assert store.cold_loads > before
        # spilled nodes stay stubs after the read (load does not re-hydrate)
        assert any(n.spilled for n in store.snapshot.covering(0, 15))
        assert store.range_frequency("i0", 0, 63) > 0

    def test_retired_files_are_discarded(self, tmp_path):
        store = spilling_store(tmp_path)
        spilled = sum(1 for n in store.snapshot.nodes if n.spilled)
        on_disk = len(list((tmp_path / "spill").glob("node-*.json")))
        # exactly one file per currently-spilled node: parents that
        # absorbed spilled children removed the children's files.
        assert on_disk == spilled
        assert store.ladder.coarsenings > 0

    def test_spilled_node_without_cold_tier_raises(self):
        store = TemporalStore(TemporalPolicy(freq_memory_kb=1.0))
        store.observe_items(["x"])
        store.on_window(0, [])
        node = store.snapshot.nodes[0]
        node.spilled = True
        try:
            with pytest.raises(ConfigurationError):
                store.payload_of(node)
        finally:
            node.spilled = False


class TestSaveRestore:
    def test_round_trip_is_lossless(self, tmp_path):
        store = spilling_store(tmp_path)
        save_dir = tmp_path / "saved"
        store.save(save_dir)
        restored = restore_store(save_dir)

        assert restored.snapshot.base == store.snapshot.base
        assert restored.snapshot.tip == store.snapshot.tip
        assert restored.windows_observed == store.windows_observed
        assert restored.items_observed == store.items_observed
        assert restored.snapshot.coarsenings == store.snapshot.coarsenings
        assert all(not n.spilled for n in restored.snapshot.nodes)
        assert restored.range_reports(0, 63) == store.range_reports(0, 63)
        for item in [f"i{i}" for i in range(20)]:
            assert restored.range_frequency(item, 0, 63) == \
                store.range_frequency(item, 0, 63)
        # asof payloads survive the trip (spilled ones re-read from cold)
        stamps = [n.asof for n in restored.snapshot.nodes if n.asof is not None]
        assert stamps, "fidelity snapshots must be persisted"

    def test_restored_store_keeps_ingesting(self, tmp_path):
        store = spilling_store(tmp_path, windows=16)
        save_dir = tmp_path / "saved"
        store.save(save_dir)
        restored = restore_store(save_dir)
        restored.observe_items(["fresh"] * 7)
        restored.on_window(16, [])
        assert restored.snapshot.tip == 17
        assert restored.range_frequency("fresh", 16, 16) == 7

    def test_restore_rejects_foreign_manifest(self, tmp_path):
        store = spilling_store(tmp_path, windows=8)
        save_dir = tmp_path / "saved"
        store.save(save_dir)
        manifest = json.loads((save_dir / MANIFEST_NAME).read_text())
        manifest["kind"] = "sharded-checkpoint"
        (save_dir / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError):
            restore_store(save_dir)

    def test_restore_with_spill_dir_can_spill_again(self, tmp_path):
        store = spilling_store(tmp_path, windows=32)
        save_dir = tmp_path / "saved"
        store.save(save_dir)
        restored = restore_store(save_dir, spill_dir=str(tmp_path / "spill2"))
        for window in range(32, 48):
            restored.observe_items(["y"] * 5)
            restored.on_window(window, [])
        hot = [n for n in restored.snapshot.nodes if not n.spilled]
        assert len(hot) <= restored.policy.hot_payloads
        assert restored.range_frequency("y", 32, 47) == 80
