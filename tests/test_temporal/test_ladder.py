"""Dyadic ladder mechanics: alignment, coarsening, the O(log W) bound."""

import math

import pytest

from repro.core.reports import SimplexReport
from repro.errors import ConfigurationError
from repro.temporal.ladder import DyadicLadder
from repro.temporal.node import LadderNode, make_freq_sketch, merge_nodes
from repro.temporal.policy import TemporalPolicy


def make_policy(**overrides):
    overrides.setdefault("freq_memory_kb", 1.0)
    return TemporalPolicy(**overrides)


def make_report(item, window, slope=1.0):
    return SimplexReport(
        item=item,
        start_window=max(0, window - 2),
        report_window=window,
        lasting_time=2,
        coefficients=(0.0, slope),
        mse=0.1,
    )


def window_node(policy, window, items=(), reports=()):
    freq = make_freq_sketch(policy, seed=0)
    for item in items:
        freq.insert(item)
    return LadderNode(0, window, items=len(items), freq=freq, reports=tuple(reports))


class TestNode:
    def test_span_and_alignment(self):
        assert LadderNode(0, 0).span == 1
        assert LadderNode(3, 8).span == 8
        assert LadderNode(0, 4).aligned
        assert not LadderNode(0, 5).aligned
        assert LadderNode(1, 4).aligned
        assert not LadderNode(1, 2).aligned  # 2 % 4 != 0
        assert LadderNode(2, 8).aligned

    def test_overlaps_inclusive_range(self):
        node = LadderNode(2, 4)  # covers windows 4..7
        assert node.overlaps(7, 9)
        assert node.overlaps(0, 4)
        assert node.overlaps(5, 6)
        assert not node.overlaps(0, 3)
        assert not node.overlaps(8, 10)

    def test_merge_requires_adjacent_aligned_siblings(self):
        policy = make_policy()
        a, b = window_node(policy, 0), window_node(policy, 1)
        parent = merge_nodes(a, b, policy)
        assert (parent.level, parent.start, parent.end) == (1, 0, 2)
        with pytest.raises(ConfigurationError):
            merge_nodes(window_node(policy, 0), window_node(policy, 2), policy)
        with pytest.raises(ConfigurationError):
            # window 1 is not aligned to the level-1 grid
            merge_nodes(window_node(policy, 1), window_node(policy, 2), policy)

    def test_merge_is_exact_and_does_not_mutate_children(self):
        policy = make_policy()
        a = window_node(policy, 0, items=["x", "x", "y"])
        b = window_node(policy, 1, items=["x", "z"])
        before = [list(array) for array in a.freq.arrays]
        parent = merge_nodes(a, b, policy)
        assert parent.freq.query("x") == 3
        assert parent.freq.query("y") == 1
        assert parent.items == 5
        # published snapshots may still hold the children: untouched
        assert [list(array) for array in a.freq.arrays] == before
        assert a.freq.query("x") == 2

    def test_merge_concatenates_reports_in_canonical_order(self):
        policy = make_policy()
        a = window_node(policy, 0, reports=[make_report("b", 0)])
        b = window_node(policy, 1, reports=[make_report("a", 1), make_report("a", 0)])
        parent = merge_nodes(a, b, policy)
        stamps = [(r.report_window, str(r.item)) for r in parent.reports]
        assert stamps == sorted(stamps)
        assert parent.report_count == 3

    def test_merge_drops_asof_payload(self):
        policy = make_policy()
        a = window_node(policy, 0)
        a.asof = {"window": 1}
        parent = merge_nodes(a, window_node(policy, 1), policy)
        assert parent.asof is None


class TestLadder:
    def fill(self, ladder, policy, n, start=0):
        for window in range(start, start + n):
            ladder.append(window_node(policy, window))

    def test_append_requires_contiguity(self):
        policy = make_policy()
        ladder = DyadicLadder(policy)
        self.fill(ladder, policy, 3)
        with pytest.raises(ConfigurationError):
            ladder.append(window_node(policy, 5))

    def test_nodes_partition_covered_range(self):
        policy = make_policy(level_capacity=2)
        ladder = DyadicLadder(policy)
        self.fill(ladder, policy, 137)
        assert ladder.base == 0 and ladder.tip == 137
        edge = 0
        for node in ladder.nodes:
            assert node.start == edge
            edge = node.end
        assert edge == 137

    @pytest.mark.parametrize("windows", [64, 300, 1024])
    @pytest.mark.parametrize("capacity", [1, 2, 3])
    def test_logarithmic_node_bound(self, windows, capacity):
        policy = make_policy(level_capacity=capacity)
        ladder = DyadicLadder(policy)
        self.fill(ladder, policy, windows)
        levels = math.floor(math.log2(windows)) + 1
        assert ladder.depth <= levels
        # capacity finished nodes per level, plus the one in-progress
        # overflow slot the coarsening loop is allowed to leave.
        assert len(ladder) <= (capacity + 1) * (levels + 1)
        for level, count in ladder.level_counts().items():
            assert count <= capacity + 1, f"level {level} holds {count}"

    def test_item_totals_survive_coarsening(self):
        policy = make_policy(level_capacity=2)
        ladder = DyadicLadder(policy)
        for window in range(50):
            ladder.append(window_node(policy, window, items=["a"] * 3))
        assert sum(node.items for node in ladder.nodes) == 150

    def test_off_grid_base_tolerated(self):
        # A store attached mid-stream starts at a non-dyadic window; the
        # leading off-grid nodes never merge but stay bounded per level.
        policy = make_policy(level_capacity=2)
        ladder = DyadicLadder(policy)
        self.fill(ladder, policy, 100, start=37)
        assert ladder.base == 37 and ladder.tip == 137
        edge = 37
        for node in ladder.nodes:
            assert node.start == edge
            edge = node.end
        levels = math.floor(math.log2(100)) + 1
        for count in ladder.level_counts().values():
            assert count <= policy.level_capacity + 1

    def test_covering_is_minimal(self):
        policy = make_policy(level_capacity=2)
        ladder = DyadicLadder(policy)
        self.fill(ladder, policy, 40)
        for a, b in [(0, 39), (5, 5), (10, 30), (38, 39)]:
            cover = ladder.covering(a, b)
            assert all(node.overlaps(a, b) for node in cover)
            covered = set()
            for node in cover:
                covered.update(range(node.start, node.end))
            assert covered.issuperset(range(a, b + 1))

    def test_node_of(self):
        policy = make_policy()
        ladder = DyadicLadder(policy)
        self.fill(ladder, policy, 20)
        for window in range(20):
            node = ladder.node_of(window)
            assert node is not None and node.start <= window < node.end
        assert ladder.node_of(20) is None


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TemporalPolicy(freq_memory_kb=0)
        with pytest.raises(ConfigurationError):
            TemporalPolicy(level_capacity=0)
        with pytest.raises(ConfigurationError):
            TemporalPolicy(fidelity_windows=-1)
        with pytest.raises(ConfigurationError):
            TemporalPolicy(hot_payloads=0)

    def test_spec_round_trip(self):
        policy = TemporalPolicy(freq_memory_kb=2.0, level_capacity=3,
                                fidelity_windows=1, hot_payloads=5)
        restored = TemporalPolicy.from_spec(policy.spec(), spill_dir="/tmp/x")
        assert restored.level_capacity == 3
        assert restored.fidelity_windows == 1
        assert restored.spill_dir == "/tmp/x"
        assert "spill_dir" not in policy.spec()
