"""Live-service temporal routes vs offline composition, and the 400 paths.

Acceptance test lives here: a live ``GET /reports?range=a:b`` must be
identical to the offline ``merge_all``-composed answer for disjoint
ranges of the same seeded trace.
"""

import asyncio

import pytest

from repro.config import XSketchConfig
from repro.core.xsketch import report_order
from repro.fitting.simplex import SimplexTask
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace
from repro.service.window import report_to_dict
from repro.streams.datasets import make_dataset
from repro.temporal import TemporalPolicy, TemporalStore

from tests.test_service.helpers import RecordingEngine, http_request

SEED = 42
WINDOWS = 12
WINDOW_SIZE = 400
RANGES = [(0, 2), (4, 6), (8, 11)]  # >= 3 disjoint ranges

BAD_PARAM_PATHS = [
    "/reports?range=7:3",
    "/reports?range=abc",
    "/reports?range=5",
    "/reports?range=-2:4",
    "/reports?since=xyz",
    "/reports?limit=--",
    "/reports?range=0:3&limit=-1",
    "/history?limit=nope",
]


def sketch_config():
    return XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0)


def temporal_policy():
    return TemporalPolicy(freq_memory_kb=2.0, level_capacity=2,
                          fidelity_windows=2)


def temporal_engine():
    return ShardedXSketch(
        sketch_config(), n_shards=2, seed=SEED, backend="inline",
        temporal=TemporalStore(temporal_policy(), seed=SEED),
    )


@pytest.fixture(scope="module")
def trace():
    return make_dataset("ip_trace", WINDOWS, WINDOW_SIZE, SEED)


@pytest.fixture(scope="module")
def offline(trace):
    """The offline comparator: same trace, same engine, own store; range
    answers composed with merge_all over the dyadic cover."""
    engine = temporal_engine()
    per_window = [engine.run_window(window) for window in trace.windows()]
    engine.close()
    return engine.temporal, per_window


@pytest.fixture(scope="module")
def served(trace):
    """One drained service over the same trace; HTTP answers captured live."""

    async def scenario():
        service = StreamService(
            temporal_engine(),
            ServiceConfig(window_size=WINDOW_SIZE, micro_batch=128),
        )
        await service.start()
        in_host, in_port = service.ingest_address
        await replay_trace(trace, in_host, in_port, connections=1, batch_size=100)
        host, port = service.http_address
        live = {}
        for a, b in RANGES:
            live[(a, b)] = await http_request(host, port, f"/reports?range={a}:{b}")
        live["history"] = await http_request(host, port, "/history")
        live["metrics"] = await http_request_text(host, port, "/metrics")
        live["bad"] = {
            path: await http_request(host, port, path) for path in BAD_PARAM_PATHS
        }
        live["filtered"] = await http_request(
            host, port, f"/reports?range=0:{WINDOWS - 1}&limit=2"
        )
        await service.stop()
        return service, live

    return asyncio.run(scenario())


async def http_request_text(host, port, path):
    """Like helpers.http_request but for text bodies (/metrics)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    response = await reader.read()
    writer.close()
    head, _, raw = response.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), raw.decode("utf-8")


class TestLiveRangeQueries:
    def test_live_ranges_match_offline_merge(self, served, offline):
        """The acceptance criterion: three disjoint live range answers,
        each identical to the offline merge_all composition AND to a
        direct per-window filter."""
        _, live = served
        store, per_window = offline
        for a, b in RANGES:
            status, body = live[(a, b)]
            assert status == 200
            assert body["range"] == {"start": a, "end": b, "source": "temporal"}
            composed = [report_to_dict(r) for r in store.range_reports(a, b)]
            assert body["reports"] == composed, (a, b)
            direct = sorted(
                (r for w in range(a, b + 1) for r in per_window[w]),
                key=report_order,
            )
            assert body["reports"] == [report_to_dict(r) for r in direct]
            assert body["total"] == len(composed)

    def test_live_temporal_store_tracks_every_window(self, served):
        service, _ = served
        assert service.temporal is not None
        assert service.temporal.snapshot.tip == WINDOWS
        assert service.temporal.windows_observed == WINDOWS
        assert service.temporal.items_observed == WINDOWS * WINDOW_SIZE

    def test_history_route(self, served):
        _, live = served
        status, body = live["history"]
        assert status == 200
        assert body["base"] == 0 and body["tip"] == WINDOWS
        assert body["windows_observed"] == WINDOWS
        assert body["nodes"], "ladder must not be empty"
        edge = 0
        for row in body["nodes"]:
            assert row["start"] == edge
            edge = row["end"]
        assert edge == WINDOWS

    def test_limit_applies_after_range(self, served):
        _, live = served
        status, body = live["filtered"]
        assert status == 200
        assert len(body["reports"]) <= 2
        assert body["total"] >= len(body["reports"])

    def test_metrics_expose_temporal_series(self, served):
        _, live = served
        status, text = live["metrics"]
        assert status == 200
        for name in (
            "temporal_nodes",
            "temporal_ladder_depth",
            "temporal_windows_covered",
            "temporal_windows_total",
            "temporal_coarsenings_total",
            "temporal_range_queries_total",
            "temporal_query_nodes",
        ):
            assert name in text, name


class TestBadParameters:
    def test_malformed_params_are_400_json(self, served):
        """Satellite: ``range=b:a`` and friends are client errors with a
        JSON body, never 500s."""
        _, live = served
        for path, (status, body) in live["bad"].items():
            assert status == 400, path
            assert "error" in body, path

    def test_reports_range_without_temporal_falls_back_to_snapshot(self):
        """An engine with no store still answers range queries from the
        published snapshot (filtered by report_window)."""

        async def scenario():
            service = StreamService(
                RecordingEngine(), ServiceConfig(window_size=50, micro_batch=25)
            )
            await service.start()
            host, port = service.http_address
            ok = await http_request(host, port, "/reports?range=0:5")
            bad = await http_request(host, port, "/reports?range=5:0")
            history = await http_request(host, port, "/history")
            await service.stop()
            return service, ok, bad, history

        service, ok, bad, history = asyncio.run(scenario())
        assert service.temporal is None
        assert ok[0] == 200
        assert ok[1]["range"]["source"] == "snapshot"
        assert bad[0] == 400
        assert history[0] == 400
        assert "temporal" in history[1]["error"]


class TestExplicitStoreAttachment:
    def test_service_feeds_store_for_plain_engine(self, trace):
        """Passing ``temporal=`` to the service wires feeding through the
        window manager when the engine has no store of its own."""
        store = TemporalStore(temporal_policy(), seed=SEED)

        async def scenario():
            service = StreamService(
                RecordingEngine(),
                ServiceConfig(window_size=WINDOW_SIZE, micro_batch=128),
                temporal=store,
            )
            await service.start()
            host, port = service.ingest_address
            await replay_trace(trace, host, port, connections=1, batch_size=100)
            await service.stop()
            return service

        service = asyncio.run(scenario())
        assert service.temporal is store
        assert store.windows_observed == WINDOWS
        assert store.items_observed == WINDOWS * WINDOW_SIZE
        first_item = next(iter(trace.windows()))[0]
        assert store.range_frequency(str(first_item), 0, WINDOWS - 1) > 0

    def test_engine_store_not_double_fed(self, trace):
        """When the engine owns the store, the manager must not feed it a
        second time (window ids would collide immediately)."""
        engine = temporal_engine()
        store = engine.temporal

        async def scenario():
            service = StreamService(
                engine, ServiceConfig(window_size=WINDOW_SIZE, micro_batch=128)
            )
            await service.start()
            host, port = service.ingest_address
            await replay_trace(trace, host, port, connections=1, batch_size=100)
            await service.stop()
            return service

        service = asyncio.run(scenario())
        assert service.temporal is store
        assert store.windows_observed == WINDOWS
        assert store.items_observed == WINDOWS * WINDOW_SIZE
