"""TemporalStore semantics: every sub-range of a seeded stream answers
exactly what a direct per-window merge would, and memory stays O(log W).
"""

import dataclasses
import math
import random

import pytest

from repro.core.reports import SimplexReport
from repro.core.xsketch import report_order
from repro.errors import ConfigurationError
from repro.obs.collect import collect_temporal
from repro.runtime.mergeable import merge_all
from repro.temporal import TemporalPolicy, TemporalStore, parse_range, rank_growth
from repro.temporal.node import copy_freq, make_freq_sketch
from repro.temporal.query import RangeQuery

SEED = 42
WINDOWS = 20
ITEMS_PER_WINDOW = 120


def make_report(item, window, slope=1.0, order=1):
    return SimplexReport(
        item=item,
        start_window=max(0, window - 3),
        report_window=window,
        lasting_time=3,
        coefficients=(0.0,) * order + (slope,),
        mse=0.05,
    )


def seeded_windows(windows=WINDOWS, per_window=ITEMS_PER_WINDOW, seed=SEED):
    """Deterministic per-window batches over a small zipf-ish universe."""
    rng = random.Random(seed)
    universe = [f"item{i}" for i in range(30)]
    out = []
    for _ in range(windows):
        out.append([universe[min(rng.randrange(30), rng.randrange(30))]
                    for _ in range(per_window)])
    return out


def feed(store, batches, reports_for=None):
    for window, batch in enumerate(batches):
        store.observe_items(batch)
        reports = reports_for(window) if reports_for is not None else []
        store.on_window(window, reports)


class TestSubRangeEquivalence:
    """The tentpole property: for EVERY [a, b] the temporal answer equals
    a direct merge of per-window sketches / a direct report filter."""

    @pytest.fixture(scope="class")
    def policy(self):
        return TemporalPolicy(freq_memory_kb=1.0, level_capacity=2)

    @pytest.fixture(scope="class")
    def batches(self):
        return seeded_windows()

    @pytest.fixture(scope="class")
    def per_window_reports(self, batches):
        return {
            w: [make_report(f"item{w % 5}", w, slope=0.1 * w)]
            for w in range(len(batches))
        }

    @pytest.fixture(scope="class")
    def store(self, policy, batches, per_window_reports):
        store = TemporalStore(policy, seed=SEED)
        feed(store, batches, reports_for=lambda w: list(per_window_reports[w]))
        return store

    @pytest.fixture(scope="class")
    def direct_sketches(self, policy, batches):
        out = []
        for batch in batches:
            freq = make_freq_sketch(policy, SEED)
            for item in batch:
                freq.insert(item)
            out.append(freq)
        return out

    def direct_merge(self, policy, direct_sketches, a, b):
        first = copy_freq(direct_sketches[a], policy)
        return merge_all(first, *direct_sketches[a + 1:b + 1])

    def test_reports_exact_for_every_sub_range(self, store, per_window_reports):
        for a in range(WINDOWS):
            for b in range(a, WINDOWS):
                expected = sorted(
                    (r for w in range(a, b + 1) for r in per_window_reports[w]),
                    key=report_order,
                )
                assert store.range_reports(a, b) == expected, (a, b)

    def test_frequency_exact_on_partitioning_covers(
        self, store, policy, direct_sketches, batches
    ):
        """When the dyadic cover partitions [a, b] exactly, the merged
        counters are identical to a direct per-window merge — CM merge
        is counter-wise exact."""
        partitioned = 0
        universe = sorted({item for batch in batches for item in batch})
        for a in range(WINDOWS):
            for b in range(a, WINDOWS):
                cover = store.snapshot.covering(a, b)
                if cover[0].start != a or cover[-1].end != b + 1:
                    continue
                partitioned += 1
                direct = self.direct_merge(policy, direct_sketches, a, b)
                composed = store.range_sketch(a, b)
                for item in universe:
                    assert composed.query(item) == direct.query(item), (a, b, item)
        assert partitioned >= WINDOWS  # single-window ranges at minimum

    def test_frequency_upper_bounds_every_sub_range(
        self, store, policy, direct_sketches, batches
    ):
        """Coarsened covers may over-cover: the answer is a one-sided
        upper bound on the direct merge, never an undercount."""
        universe = sorted({item for batch in batches for item in batch})
        for a in range(WINDOWS):
            for b in range(a, WINDOWS):
                direct = self.direct_merge(policy, direct_sketches, a, b)
                composed = store.range_sketch(a, b)
                for item in universe:
                    assert composed.query(item) >= direct.query(item), (a, b, item)

    def test_no_coarsening_means_exact_everywhere(self, batches, per_window_reports):
        """With capacity above the window count nothing coarsens, so
        every sub-range is a perfect partition and exact."""
        policy = TemporalPolicy(freq_memory_kb=1.0, level_capacity=WINDOWS + 1)
        store = TemporalStore(policy, seed=SEED)
        feed(store, batches, reports_for=lambda w: list(per_window_reports[w]))
        assert store.snapshot.coarsenings == 0
        direct = []
        for batch in batches:
            freq = make_freq_sketch(policy, SEED)
            for item in batch:
                freq.insert(item)
            direct.append(freq)
        universe = sorted({item for batch in batches for item in batch})
        for a in range(WINDOWS):
            for b in range(a, WINDOWS):
                merged = merge_all(
                    copy_freq(direct[a], policy), *direct[a + 1:b + 1]
                )
                composed = store.range_sketch(a, b)
                for item in universe:
                    assert composed.query(item) == merged.query(item), (a, b)

    def test_was_simplex_and_growth(self, store):
        # window w reported item{w % 5} with slope 0.1*w, order 1
        assert store.was_simplex("item0", 0, 4)
        assert store.was_simplex("item0", 0, 4, k=1)
        assert not store.was_simplex("item0", 0, 4, k=2)
        assert not store.was_simplex("item0", 1, 4)  # item0 reported at 0, 5, ...
        top = store.top_growth(0, WINDOWS - 1, top=3)
        assert [str(r.item) for r, _ in top] == ["item4", "item3", "item2"]
        assert top[0][0].report_window == 19  # steepest slope wins per item


class TestBoundedMemory:
    def test_ladder_stays_logarithmic_after_256_windows(self):
        """Acceptance: after >= 256 windows the ladder retains O(log W)
        nodes, asserted through the collect_temporal() gauges."""
        policy = TemporalPolicy(freq_memory_kb=1.0, level_capacity=2)
        store = TemporalStore(policy, seed=SEED)
        rng = random.Random(SEED)
        windows = 300
        for window in range(windows):
            store.observe_items([f"i{rng.randrange(50)}" for _ in range(40)])
            store.on_window(window, [])
        registry = collect_temporal(store)
        levels = math.floor(math.log2(windows)) + 1
        bound = (policy.level_capacity + 1) * (levels + 1)
        assert registry.value("temporal_windows_covered") == windows
        assert registry.value("temporal_nodes") <= bound
        assert registry.value("temporal_ladder_depth") <= levels
        assert registry.value("temporal_windows_total") == windows
        assert registry.value("temporal_coarsenings_total") > 0
        assert registry.value("temporal_bytes_retained") > 0
        # per-window cost ~1 KiB: the whole 300-window history must sit
        # far below 300x that.
        assert store.memory_bytes <= bound * 1.5 * 1024

    def test_query_fanin_histogram_observes(self):
        store = TemporalStore(TemporalPolicy(freq_memory_kb=1.0), seed=SEED)
        for window in range(32):
            store.observe_items(["x"])
            store.on_window(window, [])
        store.range_frequency("x", 0, 31)
        hist = store.metrics.get("temporal_query_nodes")
        assert hist.count == 1
        registry = collect_temporal(store)
        assert registry.get("temporal_query_nodes").count == 1
        assert registry.value("temporal_range_queries_total") == 1


class TestLifecycle:
    def test_out_of_order_window_rejected(self):
        store = TemporalStore(TemporalPolicy(freq_memory_kb=1.0))
        store.on_window(0, [])
        with pytest.raises(ConfigurationError):
            store.on_window(2, [])
        with pytest.raises(ConfigurationError):
            store.on_window(0, [])

    def test_empty_store_queries(self):
        store = TemporalStore(TemporalPolicy(freq_memory_kb=1.0))
        assert store.range_reports(0, 10) == []
        assert store.range_sketch(0, 10) is None
        assert store.range_frequency("x", 0, 10) == 0
        assert store.sketch_asof(5) is None
        assert store.history() == []

    def test_fidelity_horizon_ages_asof(self):
        calls = []

        def snapshot_fn():
            calls.append(1)
            return {"fake": len(calls)}

        policy = TemporalPolicy(freq_memory_kb=1.0, fidelity_windows=3,
                                level_capacity=2)
        store = TemporalStore(policy)
        for window in range(12):
            store.observe_items(["x"])
            store.on_window(window, [], snapshot_fn=snapshot_fn)
        with_asof = [n for n in store.snapshot.nodes if n.asof is not None]
        assert 1 <= len(with_asof) <= policy.fidelity_windows
        assert all(n.end - 1 >= 12 - policy.fidelity_windows for n in with_asof)

    def test_fidelity_zero_never_calls_snapshot_fn(self):
        policy = TemporalPolicy(freq_memory_kb=1.0, fidelity_windows=0)
        store = TemporalStore(policy)

        def boom():  # pragma: no cover - must not run
            raise AssertionError("snapshot_fn called with fidelity disabled")

        store.on_window(0, [], snapshot_fn=boom)
        assert store.snapshot.nodes[0].asof is None

    def test_track_reports_off_drops_payloads(self):
        policy = TemporalPolicy(freq_memory_kb=1.0, track_reports=False)
        store = TemporalStore(policy)
        store.observe_items(["x"])
        store.on_window(0, [make_report("x", 0)])
        assert store.range_reports(0, 0) == []
        assert store.range_frequency("x", 0, 0) >= 1

    def test_snapshot_is_immutable_published_view(self):
        store = TemporalStore(TemporalPolicy(freq_memory_kb=1.0, level_capacity=1))
        for window in range(8):
            store.observe_items(["x"])
            store.on_window(window, [])
        frozen = store.snapshot
        nodes_before = frozen.nodes
        arrays_before = [
            [list(array) for array in node.freq.arrays] for node in frozen.nodes
        ]
        for window in range(8, 16):
            store.observe_items(["y", "y"])
            store.on_window(window, [])
        assert frozen.nodes == nodes_before
        for node, before in zip(nodes_before, arrays_before):
            assert [list(array) for array in node.freq.arrays] == before
        with pytest.raises(dataclasses.FrozenInstanceError):
            frozen.tip = 99


class TestQueryHelpers:
    def test_parse_range(self):
        assert parse_range("3:9") == RangeQuery(3, 9)
        assert parse_range("4:4").width == 1
        for bad in ("9:3", "abc", "3", "3:", ":9", "-1:4", "1:2:3", ""):
            with pytest.raises(ConfigurationError):
                parse_range(bad)

    def test_rank_growth_dedupes_per_item(self):
        reports = [
            make_report("a", 1, slope=0.5),
            make_report("a", 2, slope=2.0),
            make_report("b", 3, slope=1.0),
            make_report("c", 4, slope=1.0),
        ]
        ranked = rank_growth(reports, top=10)
        assert [str(r.item) for r, _ in ranked] == ["a", "b", "c"]
        assert ranked[0][1] == 2.0
        assert ranked[0][0].report_window == 2
        assert len(rank_growth(reports, top=2)) == 2
