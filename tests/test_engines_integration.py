"""Cross-engine integration: all three engines tell the same story.

On the controlled trace (known planted truth) every engine must find
the same planted items and reject the same decoys; on a realistic
stream their F1 scores must stay within a small band of each other.
"""

import pytest

from repro.config import XSketchConfig
from repro.core.batched import BatchedXSketch
from repro.core.oracle import SimplexOracle
from repro.core.vectorized import VectorizedXSketch
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.metrics.classification import score_reports
from repro.streams.datasets import make_dataset

ENGINES = [XSketch, BatchedXSketch, VectorizedXSketch]


def _run(engine, task, trace, memory_kb=60.0, seed=5):
    sketch = engine(XSketchConfig(task=task, memory_kb=memory_kb), seed=seed)
    for window in trace.windows():
        sketch.run_window(window)
    return sketch


class TestControlledTruthAcrossEngines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_k1_planted_items(self, engine, controlled_trace):
        sketch = _run(engine, SimplexTask.paper_default(1), controlled_trace)
        reported = {r.item for r in sketch.reports}
        assert "rise" in reported and "fall" in reported
        assert "const" not in reported and "slow" not in reported

    @pytest.mark.parametrize("engine", ENGINES)
    def test_k0_planted_items(self, engine, controlled_trace):
        sketch = _run(engine, SimplexTask.paper_default(0), controlled_trace)
        assert "const" in {r.item for r in sketch.reports}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_k2_planted_items(self, engine, controlled_trace):
        sketch = _run(engine, SimplexTask.paper_default(2), controlled_trace)
        reported = {r.item for r in sketch.reports}
        assert "parab" in reported
        assert "rise" not in reported


class TestEngineAgreementOnRealisticStream:
    @pytest.mark.parametrize("k", [0, 1])
    def test_f1_within_band(self, k):
        trace = make_dataset("ip_trace", n_windows=25, window_size=1000, seed=12)
        task = SimplexTask.paper_default(k)
        oracle = SimplexOracle.from_stream(trace.windows(), task)
        f1_scores = {
            engine.__name__: score_reports(
                _run(engine, task, trace, memory_kb=15.0, seed=12).reports,
                oracle.instances,
            ).f1
            for engine in ENGINES
        }
        assert max(f1_scores.values()) - min(f1_scores.values()) < 0.25, f1_scores
        assert min(f1_scores.values()) > 0.5, f1_scores

    def test_window_counters_advance_in_lockstep(self):
        trace = make_dataset("synthetic", n_windows=10, window_size=400, seed=3)
        task = SimplexTask.paper_default(1)
        sketches = [_run(engine, task, trace, memory_kb=15.0) for engine in ENGINES]
        assert len({sketch.window for sketch in sketches}) == 1
