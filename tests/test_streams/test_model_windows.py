"""Unit tests for Trace, iter_windows and WindowAccumulator."""

import pytest

from repro.config import StreamGeometry
from repro.errors import StreamError
from repro.streams.model import Trace
from repro.streams.windows import WindowAccumulator, iter_windows


class TestTrace:
    def _trace(self):
        geometry = StreamGeometry(n_windows=3, window_size=2)
        return Trace(name="t", geometry=geometry, window_items=[["a", "b"], ["a", "a"], ["c", "b"]])

    def test_windows_iteration(self):
        trace = self._trace()
        assert [list(w) for w in trace.windows()] == [["a", "b"], ["a", "a"], ["c", "b"]]

    def test_items_flat(self):
        assert list(self._trace().items()) == ["a", "b", "a", "a", "c", "b"]

    def test_len_and_distinct(self):
        trace = self._trace()
        assert len(trace) == 6
        assert trace.distinct_items() == 3

    def test_window_count_mismatch_raises(self):
        geometry = StreamGeometry(n_windows=2, window_size=2)
        with pytest.raises(StreamError):
            Trace(name="bad", geometry=geometry, window_items=[["a", "b"]])

    def test_window_size_mismatch_raises(self):
        geometry = StreamGeometry(n_windows=1, window_size=3)
        with pytest.raises(StreamError):
            Trace(name="bad", geometry=geometry, window_items=[["a", "b"]])


class TestIterWindows:
    def test_chops_evenly(self):
        windows = list(iter_windows("abcdef", 2))
        assert windows == [["a", "b"], ["c", "d"], ["e", "f"]]

    def test_drops_partial_tail(self):
        windows = list(iter_windows("abcde", 2))
        assert windows == [["a", "b"], ["c", "d"]]

    def test_invalid_size(self):
        with pytest.raises(StreamError):
            list(iter_windows("abc", 0))


class TestWindowAccumulator:
    def test_push_returns_completed_window(self):
        acc = WindowAccumulator(3)
        assert acc.push("a") is None
        assert acc.push("b") is None
        assert acc.push("c") == ["a", "b", "c"]
        assert acc.completed_windows == 1
        assert acc.pending == 0

    def test_pending_counts(self):
        acc = WindowAccumulator(3)
        acc.push("a")
        assert acc.pending == 1

    def test_invalid_size(self):
        with pytest.raises(StreamError):
            WindowAccumulator(0)
