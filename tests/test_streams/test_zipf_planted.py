"""Unit tests for the Zipf sampler and planted workloads."""

import numpy as np
import pytest

from repro.config import StreamGeometry
from repro.errors import ConfigurationError, StreamError
from repro.streams.planted import (
    BackgroundTraffic,
    PlantedItem,
    PlantedWorkload,
    constant_pattern,
    linear_pattern,
    quadratic_pattern,
)
from repro.streams.zipf import ZipfSampler


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, 1.5, np.random.default_rng(0))
        assert sum(sampler.probability(i) for i in range(100)) == pytest.approx(1.0)

    def test_rank_one_most_popular(self):
        sampler = ZipfSampler(100, 1.5, np.random.default_rng(0))
        assert sampler.probability(0) > sampler.probability(1) > sampler.probability(50)

    def test_skew_shapes_head_mass(self):
        flat = ZipfSampler(100, 0.1, np.random.default_rng(0))
        steep = ZipfSampler(100, 2.0, np.random.default_rng(0))
        assert steep.probability(0) > flat.probability(0)

    def test_samples_in_range_and_skewed(self):
        sampler = ZipfSampler(50, 1.2, np.random.default_rng(3))
        draws = sampler.sample(5000)
        assert all(0 <= d < 50 for d in draws)
        assert draws.count(0) > draws.count(40)

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, -0.5, rng)


class TestPatterns:
    def test_constant(self):
        assert constant_pattern(5.0)(3) == 5.0

    def test_linear(self):
        pattern = linear_pattern(2.0, 3.0)
        assert pattern(0) == 2.0
        assert pattern(4) == 14.0

    def test_quadratic(self):
        pattern = quadratic_pattern(1.0, 2.0, 3.0)
        assert pattern(2) == 1 + 4 + 12


class TestPlantedItem:
    def test_active_range(self):
        plant = PlantedItem("x", 3, 4, constant_pattern(6.0))
        rng = np.random.default_rng(0)
        assert plant.count_at(2, rng) == 0
        assert plant.count_at(3, rng) == 6
        assert plant.count_at(6, rng) == 6
        assert plant.count_at(7, rng) == 0

    def test_counts_at_least_one_when_active(self):
        plant = PlantedItem("x", 0, 5, constant_pattern(0.2), noise=0.5)
        rng = np.random.default_rng(0)
        assert all(plant.count_at(w, rng) >= 1 for w in range(5))

    def test_noise_bounded(self):
        plant = PlantedItem("x", 0, 100, constant_pattern(10.0), noise=2.0)
        rng = np.random.default_rng(1)
        counts = [plant.count_at(w, rng) for w in range(100)]
        assert all(8 <= c <= 12 for c in counts)


class TestBackgroundTraffic:
    def test_generates_requested_count(self):
        background = BackgroundTraffic(n_flows=100, skew=1.0)
        rng = np.random.default_rng(0)
        assert len(background.generate(0, 500, rng)) == 500

    def test_stable_flows_keep_identity(self):
        background = BackgroundTraffic(n_flows=100, skew=1.0, n_stable=100, rotation_period=None)
        rng = np.random.default_rng(0)
        ids_a = set(background.generate(0, 300, rng))
        ids_b = set(background.generate(9, 300, rng))
        assert ids_a & ids_b  # same namespace across windows

    def test_rotation_changes_mice_identity(self):
        background = BackgroundTraffic(n_flows=100, skew=0.5, n_stable=0, rotation_period=2)
        rng = np.random.default_rng(0)
        epoch0 = set(background.generate(0, 300, rng))
        epoch1 = set(background.generate(2, 300, rng))
        assert not (epoch0 & epoch1)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BackgroundTraffic(n_flows=0)
        with pytest.raises(ConfigurationError):
            BackgroundTraffic(n_flows=10, rotation_period=0)


class TestPlantedWorkload:
    def test_build_geometry(self):
        geometry = StreamGeometry(n_windows=5, window_size=100)
        workload = PlantedWorkload(
            "w", geometry, BackgroundTraffic(n_flows=50),
            [PlantedItem("x", 0, 5, constant_pattern(4.0))],
        )
        trace = workload.build(seed=1)
        assert trace.geometry == geometry
        assert all(len(w) == 100 for w in trace.windows())

    def test_planted_counts_exact_without_noise(self):
        geometry = StreamGeometry(n_windows=5, window_size=100)
        workload = PlantedWorkload(
            "w", geometry, BackgroundTraffic(n_flows=50, prefix="zz"),
            [PlantedItem("x", 1, 3, linear_pattern(2.0, 3.0))],
        )
        trace = workload.build(seed=1)
        counts = [list(w).count("x") for w in trace.windows()]
        assert counts == [0, 2, 5, 8, 0]

    def test_deterministic_given_seed(self):
        geometry = StreamGeometry(n_windows=3, window_size=50)
        workload = PlantedWorkload("w", geometry, BackgroundTraffic(n_flows=30), [])
        a = workload.build(seed=5)
        b = workload.build(seed=5)
        assert a.window_items == b.window_items

    def test_overflow_raises(self):
        geometry = StreamGeometry(n_windows=2, window_size=10)
        workload = PlantedWorkload(
            "w", geometry, BackgroundTraffic(n_flows=30),
            [PlantedItem("x", 0, 2, constant_pattern(50.0))],
        )
        with pytest.raises(StreamError):
            workload.build(seed=1)
