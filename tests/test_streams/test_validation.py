"""Unit tests for trace statistics, validating DESIGN.md's claims."""

import pytest

from repro.fitting.simplex import SimplexTask
from repro.streams.datasets import make_dataset
from repro.streams.validation import estimate_zipf_skew, trace_statistics


class TestZipfSkewEstimator:
    def test_recovers_known_skew(self):
        import numpy as np

        from repro.streams.zipf import ZipfSampler

        rng = np.random.default_rng(0)
        sampler = ZipfSampler(2000, 1.2, rng)
        counts = {}
        for rank in sampler.sample(60000):
            counts[rank] = counts.get(rank, 0) + 1
        estimate = estimate_zipf_skew(list(counts.values()))
        assert estimate == pytest.approx(1.2, abs=0.25)

    def test_tiny_sample_returns_zero(self):
        assert estimate_zipf_skew([5, 3]) == 0.0


class TestTraceStatistics:
    @pytest.fixture(scope="class")
    def stats(self):
        trace = make_dataset("ip_trace", n_windows=25, window_size=1500, seed=9)
        tasks = [SimplexTask.paper_default(k) for k in (0, 1, 2)]
        return trace_statistics(trace, tasks)

    def test_counts_consistent(self, stats):
        assert stats.total_items == 25 * 1500
        assert 0 < stats.mean_window_distinct <= 1500
        assert stats.distinct_items >= stats.mean_window_distinct

    def test_heavy_tailed(self, stats):
        """The ip_trace substitute targets skew ~1.0."""
        assert 0.5 < stats.estimated_zipf_skew < 1.6

    def test_simplex_items_rare_and_ordered(self, stats):
        """Densities are small and decrease with k, as in the paper's
        IP trace (0.44% / 0.018% / 0.0068%)."""
        assert stats.simplex_density[0] < 0.05
        assert stats.simplex_density[2] <= stats.simplex_density[0]
        assert all(v > 0 for v in stats.simplex_instances.values())

    def test_render(self, stats):
        text = stats.render()
        assert "trace statistics" in text and "Zipf skew" in text
