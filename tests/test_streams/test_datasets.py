"""Unit tests for the dataset substitutes and DDoS/IO helpers."""

import pytest

from repro.core.oracle import SimplexOracle
from repro.errors import ConfigurationError, StreamError
from repro.fitting.simplex import SimplexTask
from repro.streams.datasets import DATASET_GENERATORS, make_dataset, transactional_stream
from repro.streams.ddos import ddos_stream
from repro.streams.io import load_trace_csv, save_trace_csv


class TestDatasetBuilders:
    @pytest.mark.parametrize("name", sorted(DATASET_GENERATORS))
    def test_geometry_and_determinism(self, name):
        a = make_dataset(name, n_windows=10, window_size=300, seed=3)
        b = make_dataset(name, n_windows=10, window_size=300, seed=3)
        assert a.geometry.n_windows == 10
        assert a.geometry.window_size == 300
        assert a.window_items == b.window_items

    def test_seed_changes_trace(self):
        a = make_dataset("ip_trace", n_windows=8, window_size=300, seed=1)
        b = make_dataset("ip_trace", n_windows=8, window_size=300, seed=2)
        assert a.window_items != b.window_items

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            make_dataset("netflix")

    @pytest.mark.parametrize("name", sorted(DATASET_GENERATORS))
    def test_contains_simplex_items_of_each_degree(self, name):
        trace = make_dataset(name, n_windows=30, window_size=1500, seed=7)
        for k in (0, 1, 2):
            oracle = SimplexOracle.from_stream(trace.windows(), SimplexTask.paper_default(k))
            assert len(oracle.instances) > 0, f"{name} has no {k}-simplex instances"

    def test_simplex_items_are_rare(self):
        """Simplex items are a small minority, as in the paper's traces."""
        trace = make_dataset("ip_trace", n_windows=30, window_size=1500, seed=7)
        oracle = SimplexOracle.from_stream(trace.windows(), SimplexTask.paper_default(1))
        simplex_items = {item for item, _ in oracle.instances}
        assert len(simplex_items) / trace.distinct_items() < 0.02

    def test_transactional_has_sku_background(self):
        trace = transactional_stream(n_windows=6, window_size=400, seed=1)
        assert any(str(item).startswith("sku-") for item in trace.window_items[0])


class TestDDoS:
    def test_scenario_metadata(self):
        trace, scenario = ddos_stream(n_windows=30, window_size=800, n_attackers=5,
                                      onset_window=10, duration=15, seed=1)
        assert len(scenario.attack_items) == 5
        assert scenario.onset_window == 10
        # attack flows absent before onset, present during the attack
        before = set(trace.window_items[5])
        during = set(trace.window_items[15])
        assert not (before & set(scenario.attack_items))
        assert set(scenario.attack_items) <= during

    def test_attack_is_1_simplex(self):
        trace, scenario = ddos_stream(n_windows=30, window_size=800, n_attackers=3,
                                      onset_window=8, duration=16, seed=2)
        oracle = SimplexOracle.from_stream(trace.windows(), SimplexTask.paper_default(1))
        detected = {item for item, _ in oracle.instances}
        assert set(scenario.attack_items) <= detected

    def test_attack_must_fit_in_trace(self):
        with pytest.raises(ConfigurationError):
            ddos_stream(n_windows=20, onset_window=15, duration=10)


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = make_dataset("synthetic", n_windows=4, window_size=100, seed=1)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path, name="synthetic")
        assert loaded.geometry == trace.geometry
        assert [list(map(str, w)) for w in loaded.windows()] == [
            list(map(str, w)) for w in trace.windows()
        ]

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(StreamError):
            load_trace_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("window,item\n")
        with pytest.raises(StreamError):
            load_trace_csv(path)
