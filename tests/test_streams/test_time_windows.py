"""Unit tests for time-based windowing."""

import pytest

from repro.errors import StreamError
from repro.streams.windows import TimeWindowAccumulator


class TestTimeWindowAccumulator:
    def test_single_window(self):
        acc = TimeWindowAccumulator(window_seconds=10.0)
        assert acc.push(1.0, "a") == []
        assert acc.push(5.0, "b") == []
        assert acc.pending == 2

    def test_crossing_boundary_closes_window(self):
        acc = TimeWindowAccumulator(window_seconds=10.0)
        acc.push(1.0, "a")
        acc.push(9.9, "b")
        closed = acc.push(10.0, "c")
        assert closed == [["a", "b"]]
        assert acc.pending == 1
        assert acc.completed_windows == 1

    def test_quiet_gap_emits_empty_windows(self):
        acc = TimeWindowAccumulator(window_seconds=10.0)
        acc.push(1.0, "a")
        closed = acc.push(35.0, "b")
        assert closed == [["a"], [], []]
        assert acc.completed_windows == 3

    def test_out_of_order_rejected(self):
        acc = TimeWindowAccumulator(window_seconds=10.0)
        acc.push(5.0, "a")
        with pytest.raises(StreamError):
            acc.push(4.0, "b")

    def test_flush_returns_partial(self):
        acc = TimeWindowAccumulator(window_seconds=10.0)
        acc.push(1.0, "a")
        assert acc.flush() == ["a"]
        assert acc.pending == 0

    def test_custom_start_time(self):
        acc = TimeWindowAccumulator(window_seconds=10.0, start_time=100.0)
        assert acc.push(105.0, "a") == []
        assert acc.push(110.0, "b") == [["a"]]

    def test_invalid_window(self):
        with pytest.raises(StreamError):
            TimeWindowAccumulator(window_seconds=0)

    def test_drives_xsketch(self):
        """End-to-end: a k=0 X-Sketch on wall-clock windows."""
        from repro.config import XSketchConfig
        from repro.core.xsketch import XSketch
        from repro.fitting.simplex import SimplexTask

        sketch = XSketch(
            XSketchConfig(task=SimplexTask(k=0, p=5, T=1.0, L=1.0), memory_kb=50.0), seed=1
        )
        acc = TimeWindowAccumulator(window_seconds=1.0)
        reports = []
        timestamp = 0.0
        for _ in range(12):  # 12 seconds, 6 arrivals of "x" per second
            for i in range(6):
                for closed in acc.push(timestamp, "x"):
                    for item in closed:
                        sketch.insert(item)
                    reports.extend(sketch.end_window())
                timestamp += 1.0 / 6
        assert any(r.item == "x" for r in reports)
