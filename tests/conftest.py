"""Shared fixtures: small deterministic traces and default tasks."""

from __future__ import annotations

import random

import pytest

from repro.config import StreamGeometry, XSketchConfig
from repro.fitting.simplex import SimplexTask
from repro.streams.datasets import make_dataset
from repro.streams.planted import (
    BackgroundTraffic,
    PlantedItem,
    PlantedWorkload,
    constant_pattern,
    linear_pattern,
    quadratic_pattern,
)


@pytest.fixture(scope="session")
def task_k0():
    return SimplexTask.paper_default(0)


@pytest.fixture(scope="session")
def task_k1():
    return SimplexTask.paper_default(1)


@pytest.fixture(scope="session")
def task_k2():
    return SimplexTask.paper_default(2)


@pytest.fixture(scope="session")
def small_trace():
    """A 30x800 ip-trace substitute shared by integration tests."""
    return make_dataset("ip_trace", n_windows=30, window_size=800, seed=42)


@pytest.fixture(scope="session")
def controlled_trace():
    """A trace with hand-planted items whose truth is known by design.

    Planted: one constant (level 6), one rising line (4 + 3n), one
    falling line, one parabola, one sub-threshold slope (0.5/window),
    all active the whole trace; background is mild.
    """
    geometry = StreamGeometry(n_windows=24, window_size=600)
    n = geometry.n_windows
    plants = [
        PlantedItem("const", 0, n, constant_pattern(6.0)),
        PlantedItem("rise", 0, n, linear_pattern(4.0, 3.0)),
        PlantedItem("fall", 0, n, linear_pattern(4.0 + 3.0 * (n - 1), -3.0)),
        PlantedItem("parab", 4, 12, quadratic_pattern(3.0 + 1.5 * 36, -2 * 1.5 * 6, 1.5)),
        PlantedItem("slow", 0, n, linear_pattern(5.0, 0.5)),
    ]
    background = BackgroundTraffic(n_flows=2000, skew=1.0, n_stable=30, rotation_period=3)
    return PlantedWorkload(
        name="controlled", geometry=geometry, background=background, planted=plants
    ).build(seed=7)


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture()
def default_config(task_k1):
    return XSketchConfig(task=task_k1, memory_kb=60.0)
