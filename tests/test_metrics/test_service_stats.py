"""Unit tests for service-side metrics and the throughput zero-guards."""

import pytest

from repro.metrics import LatencySummary, ServiceStats, percentile
from repro.metrics.throughput import (
    ShardThroughput,
    ShardedThroughputResult,
    ThroughputResult,
)


class TestPercentile:
    def test_empty_sample(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_nearest_rank_is_an_observation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        for q in (0, 25, 50, 75, 90, 99, 100):
            assert percentile(values, q) in values

    def test_monotone_in_q(self):
        values = sorted(float(v) for v in [5, 1, 9, 3, 7, 2, 8, 4, 6, 10])
        results = [percentile(values, q) for q in range(0, 101, 5)]
        assert results == sorted(results)
        assert percentile(values, 100) == 10.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    @pytest.mark.parametrize(
        ("values", "q", "expected"),
        [
            # n=1 boundary cases
            ([7.0], 0, 7.0),
            ([7.0], 50, 7.0),
            ([7.0], 100, 7.0),
            # nearest-rank definition: rank = ceil(q/100 * n), 1-based.
            # round() got these wrong: banker's rounding pulled half-way
            # ranks down (p25 of 2: 0.5 rounds to 0 -> IndexError-adjacent
            # clamp to the *first* element instead of the first at rank 1).
            ([1.0, 2.0], 25, 1.0),      # ceil(0.5)=1 -> first value
            ([1.0, 2.0], 50, 1.0),      # ceil(1.0)=1
            ([1.0, 2.0], 75, 2.0),      # ceil(1.5)=2; round() gives 2 too
            ([1.0, 2.0, 3.0, 4.0], 50, 2.0),   # ceil(2.0)=2; round() -> 2
            ([1.0, 2.0, 3.0, 4.0], 62.5, 3.0),  # ceil(2.5)=3; round() -> 2 (ties-to-even)
            ([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 25, 2.0),  # ceil(1.5)=2; round() -> 1
            ([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 75, 5.0),  # ceil(4.5)=5; round() -> 4
            # q=0 must clamp to the minimum, q=100 to the maximum
            ([1.0, 2.0, 3.0], 0, 1.0),
            ([1.0, 2.0, 3.0], 100, 3.0),
            # p99 of a large-ish sample
            ([float(v) for v in range(1, 101)], 99, 99.0),
            ([float(v) for v in range(1, 101)], 99.5, 100.0),
        ],
    )
    def test_nearest_rank_table(self, values, q, expected):
        assert percentile(values, q) == expected


class TestLatencySummary:
    def test_from_samples(self):
        summary = LatencySummary.from_samples([0.003, 0.001, 0.002])
        assert summary.count == 3
        assert summary.p50 == 0.002
        assert summary.max == 0.003

    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary == LatencySummary(count=0, p50=0.0, p90=0.0, p99=0.0, max=0.0)

    def test_render(self):
        text = LatencySummary.from_samples([0.001]).render()
        assert "p50=1.00ms" in text and "max=1.00ms" in text


class TestServiceStats:
    def make(self, **overrides):
        base = dict(
            connections=2,
            batches=10,
            total_items=1_000_000,
            received_items=900_000,
            dropped_items=100_000,
            elapsed_seconds=2.0,
        )
        base.update(overrides)
        return ServiceStats(**base)

    def test_mops(self):
        assert self.make().mops == pytest.approx(0.5)

    def test_mops_guards_degenerate_runs(self):
        assert self.make(total_items=0, received_items=0, dropped_items=0).mops == 0.0
        assert self.make(elapsed_seconds=0.0).mops == 0.0

    def test_delivery_ratio(self):
        assert self.make().delivery_ratio == pytest.approx(0.9)
        assert self.make(total_items=0, received_items=0).delivery_ratio == 1.0

    def test_render_mentions_the_essentials(self):
        text = self.make().render()
        assert "1000000 items" in text
        assert "2 connection(s)" in text
        assert "dropped 100000" in text


class TestThroughputGuards:
    """The satellite fix: degenerate runs report 0.0 Mops, never inf."""

    def test_zero_duration_run(self):
        assert ThroughputResult(total_items=100, elapsed_seconds=0.0).mops == 0.0

    def test_empty_run(self):
        assert ThroughputResult(total_items=0, elapsed_seconds=1.0).mops == 0.0

    def test_normal_run_unaffected(self):
        assert ThroughputResult(2_000_000, 2.0).mops == pytest.approx(1.0)

    def test_idle_shard(self):
        idle = ShardThroughput(
            shard_id=0, items=0, batches=0, busy_seconds=0.0, queue_depth=None
        )
        assert idle.mops == 0.0

    def test_unmeasurable_shard_busy_time(self):
        fast = ShardThroughput(
            shard_id=1, items=5, batches=1, busy_seconds=0.0, queue_depth=0
        )
        assert fast.mops == 0.0

    def test_parallelism_guard(self):
        empty = ShardedThroughputResult(
            total=ThroughputResult(total_items=0, elapsed_seconds=0.0),
            per_shard=(),
        )
        assert empty.parallelism == 0.0
        assert empty.mops == 0.0

    def test_parallelism_normal(self):
        result = ShardedThroughputResult(
            total=ThroughputResult(total_items=100, elapsed_seconds=1.0),
            per_shard=(
                ShardThroughput(0, 50, 1, 0.8, None),
                ShardThroughput(1, 50, 1, 0.9, None),
            ),
        )
        assert result.parallelism == pytest.approx(1.7)
