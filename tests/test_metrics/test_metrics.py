"""Unit tests for PR/RR/F1, ARE and throughput metrics."""

import pytest

from repro.config import StreamGeometry
from repro.core.oracle import SimplexOracle
from repro.core.reports import SimplexReport
from repro.fitting.simplex import SimplexTask
from repro.metrics.classification import ClassificationScores, score_reports
from repro.metrics.error import average_relative_error, lasting_time_are
from repro.metrics.throughput import measure_throughput
from repro.streams.model import Trace


def _report(item, start, lasting=6):
    return SimplexReport(
        item=item,
        start_window=start,
        report_window=start + 6,
        lasting_time=lasting,
        coefficients=(1.0, 2.0),
        mse=0.1,
    )


class TestClassification:
    def test_perfect(self):
        truth = {("a", 0), ("b", 1)}
        scores = score_reports([_report("a", 0), _report("b", 1)], truth)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_false_positive_hits_precision(self):
        truth = {("a", 0)}
        scores = score_reports([_report("a", 0), _report("x", 5)], truth)
        assert scores.precision == 0.5
        assert scores.recall == 1.0

    def test_miss_hits_recall(self):
        truth = {("a", 0), ("b", 1)}
        scores = score_reports([_report("a", 0)], truth)
        assert scores.recall == 0.5

    def test_duplicates_collapse(self):
        truth = {("a", 0)}
        scores = score_reports([_report("a", 0), _report("a", 0)], truth)
        assert scores.reported == 1

    def test_empty_conventions(self):
        assert score_reports([], set()).precision == 1.0
        assert score_reports([], set()).recall == 1.0
        assert score_reports([], {("a", 0)}).f1 == 0.0

    def test_f1_harmonic_mean(self):
        scores = ClassificationScores(true_positives=1, reported=2, actual=1)
        assert scores.f1 == pytest.approx(2 * 0.5 * 1.0 / 1.5)


class TestARE:
    def test_plain_are(self):
        assert average_relative_error([10, 20], [12, 20]) == pytest.approx(0.1)

    def test_zero_truth_skipped(self):
        assert average_relative_error([0, 10], [5, 10]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            average_relative_error([1], [1, 2])

    def test_lasting_time_are_matched_only(self):
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle(task)
        for window in range(9):
            for _ in range(5 + 3 * window):
                oracle.insert("lin")
            oracle.end_window()
        oracle.finalize()
        p = task.p
        good = SimplexReport("lin", 0, p - 1, p - 1, (5.0, 3.0), 0.0)
        off = SimplexReport("lin", 1, p, 2 * p, (5.0, 3.0), 0.0)  # bad estimate
        unmatched = SimplexReport("ghost", 0, p - 1, p - 1, (5.0, 3.0), 0.0)
        assert lasting_time_are([good], oracle) == pytest.approx(0.0)
        assert lasting_time_are([good, unmatched], oracle) == pytest.approx(0.0)
        assert lasting_time_are([off], oracle) > 0.0


class _CountingAlgo:
    def __init__(self):
        self.inserted = 0
        self.windows = 0

    def insert(self, item):
        self.inserted += 1

    def end_window(self):
        self.windows += 1


class TestThroughput:
    def test_processes_whole_trace(self):
        geometry = StreamGeometry(n_windows=3, window_size=4)
        trace = Trace("t", geometry, [["a"] * 4, ["b"] * 4, ["c"] * 4])
        algo = _CountingAlgo()
        result = measure_throughput(algo, trace)
        assert algo.inserted == 12
        assert algo.windows == 3
        assert result.total_items == 12
        assert result.mops > 0
