"""End-to-end integration tests asserting the paper's headline shapes.

These are the "does the reproduction reproduce?" tests: X-Sketch beats
the baseline on F1 under memory pressure, its lasting-time ARE is far
lower, the agreement with the exact oracle is high, and both X-Sketch
variants stay consistent with each other.
"""

import pytest

from repro.config import XSketchConfig
from repro.core.baseline import BaselineConfig, BaselineSolution
from repro.core.oracle import SimplexOracle
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.metrics.classification import score_reports
from repro.metrics.error import lasting_time_are


def _run(algorithm, trace):
    for window in trace.windows():
        algorithm.run_window(window)
    return algorithm.reports


@pytest.fixture(scope="module", params=[0, 1, 2], ids=["k0", "k1", "k2"])
def shape_results(request, small_trace):
    """Run XS-CM, XS-CU and the baseline at low memory on one trace."""
    k = request.param
    task = SimplexTask.paper_default(k)
    oracle = SimplexOracle.from_stream(small_trace.windows(), task)
    memory_kb = 12.0
    runs = {}
    for name, algo in (
        ("xs-cm", XSketch(XSketchConfig(task=task, memory_kb=memory_kb, update_rule="cm"), seed=5)),
        ("xs-cu", XSketch(XSketchConfig(task=task, memory_kb=memory_kb, update_rule="cu"), seed=5)),
        ("baseline", BaselineSolution(BaselineConfig(task=task, memory_kb=memory_kb), seed=5)),
    ):
        reports = _run(algo, small_trace)
        runs[name] = {
            "reports": reports,
            "scores": score_reports(reports, oracle.instances),
            "are": lasting_time_are(reports, oracle),
        }
    return k, oracle, runs


class TestPaperShapes:
    def test_truth_is_nonempty(self, shape_results):
        _, oracle, _ = shape_results
        assert len(oracle.instances) > 0

    def test_xsketch_beats_baseline_on_f1(self, shape_results):
        """The gap is large for k=0/1 and shrinks at k=2 (paper Section
        V-C6: 'the advantage of accuracy ... diminishes' with k), so the
        k=2 assertion only requires parity."""
        k, _, runs = shape_results
        margin = 0.0 if k < 2 else -0.05
        assert runs["xs-cm"]["scores"].f1 > runs["baseline"]["scores"].f1 + margin
        assert runs["xs-cu"]["scores"].f1 > runs["baseline"]["scores"].f1 + margin

    def test_xsketch_f1_is_high(self, shape_results):
        _, _, runs = shape_results
        assert runs["xs-cm"]["scores"].f1 >= 0.6
        assert runs["xs-cu"]["scores"].f1 >= 0.6

    def test_xsketch_are_not_worse_than_baseline(self, shape_results):
        """Figures 13/18/23: Stage 2's exact counting keeps lasting-time
        estimates close; the baseline's CM noise inflates them."""
        _, _, runs = shape_results
        assert runs["xs-cm"]["are"] <= runs["baseline"]["are"] + 0.05
        assert runs["xs-cu"]["are"] <= runs["baseline"]["are"] + 0.05

    def test_xs_precision_high(self, shape_results):
        _, _, runs = shape_results
        assert runs["xs-cm"]["scores"].precision >= 0.7


class TestAgainstOracleAtAmpleMemory:
    """With generous memory X-Sketch converges to the exact answer."""

    @pytest.mark.parametrize("k", [0, 1])
    def test_near_perfect_recall(self, small_trace, k):
        task = SimplexTask.paper_default(k)
        oracle = SimplexOracle.from_stream(small_trace.windows(), task)
        sketch = XSketch(XSketchConfig(task=task, memory_kb=200.0), seed=5)
        reports = _run(sketch, small_trace)
        scores = score_reports(reports, oracle.instances)
        assert scores.recall >= 0.9
        assert scores.precision >= 0.9


class TestControlledTruth:
    """On the hand-planted trace the right items -- and only they -- show."""

    def test_k1_finds_both_ramps_not_flat_or_slow(self, controlled_trace):
        task = SimplexTask.paper_default(1)
        sketch = XSketch(XSketchConfig(task=task, memory_kb=60.0), seed=5)
        reported = {r.item for r in _run(sketch, controlled_trace)}
        assert "rise" in reported
        assert "fall" in reported
        assert "const" not in reported
        assert "slow" not in reported  # slope 0.5 < L

    def test_k0_finds_constant(self, controlled_trace):
        task = SimplexTask.paper_default(0)
        sketch = XSketch(XSketchConfig(task=task, memory_kb=60.0), seed=5)
        reported = {r.item for r in _run(sketch, controlled_trace)}
        assert "const" in reported

    def test_k2_finds_parabola_not_lines(self, controlled_trace):
        task = SimplexTask.paper_default(2)
        sketch = XSketch(XSketchConfig(task=task, memory_kb=60.0), seed=5)
        reported = {r.item for r in _run(sketch, controlled_trace)}
        assert "parab" in reported
        assert "rise" not in reported
        assert "fall" not in reported

    def test_oracle_agrees_on_planted_items(self, controlled_trace):
        task = SimplexTask.paper_default(1)
        oracle = SimplexOracle.from_stream(controlled_trace.windows(), task)
        items = {item for item, _ in oracle.instances}
        assert "rise" in items and "fall" in items
        assert "const" not in items and "slow" not in items
