"""End-to-end replica stream: byte-identity, catch-up, staleness.

The acceptance criterion for the replica tier: at an equal
``snapshot_seq`` a replica's ``/reports`` and ``/reports?range=a:b``
bodies are **byte-identical** to the primary's — both sides render
through :mod:`repro.service.http`, so this pins the whole pipeline
(slim frames → mirror ladder → shared builders), not just JSON-level
equality.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json

import pytest

from repro.config import XSketchConfig
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.replica import ReplicaConfig, ReplicaServer
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace
from repro.streams.datasets import make_dataset
from repro.temporal import TemporalPolicy, TemporalStore
from repro.temporal.wire import snapshot_range_reports

SEED = 42
WINDOWS = 12
MORE_WINDOWS = 6
WINDOW_SIZE = 400
RANGES = [(0, 2), (4, 6), (8, 11)]

#: read routes whose bodies must match the primary byte for byte
IDENTITY_PATHS = ["/reports", "/history"] + [
    f"/reports?range={a}:{b}" for a, b in RANGES
]


def sketch_config():
    return XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0)


def temporal_engine():
    # fidelity_windows=0: asof payloads are primary-only by design (they
    # never ride the replica stream), so /history byte-identity is only
    # meaningful with fidelity off; /reports identity holds regardless.
    return ShardedXSketch(
        sketch_config(), n_shards=2, seed=SEED, backend="inline",
        temporal=TemporalStore(
            TemporalPolicy(freq_memory_kb=2.0, level_capacity=2,
                           fidelity_windows=0), seed=SEED
        ),
    )


async def http_raw(host, port, path, method="GET"):
    """One exchange, body returned as raw bytes (for byte comparison)."""
    reader, writer = await asyncio.open_connection(host, port)
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: 0\r\n\r\n"
    ).encode()
    writer.write(request)
    await writer.drain()
    response = await reader.read()
    writer.close()
    head, _, body = response.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


async def wait_for(predicate, message, timeout=20.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        await asyncio.sleep(0.02)


async def capture_identity(service, replica, paths):
    """(primary, replica) raw bodies for each path, plus both seqs."""
    p_host, p_port = service.http_address
    r_host, r_port = replica.http_address
    pairs = {}
    for path in paths:
        pairs[path] = (
            await http_raw(p_host, p_port, path),
            await http_raw(r_host, r_port, path),
        )
    return {
        "pairs": pairs,
        "primary_seq": service.publisher.seq,
        "replica_seq": replica.state.seq,
    }


@pytest.fixture(scope="module")
def streamed():
    """One primary + one replica through the full drill: sync, ingest,
    convergence, deliberate sever, reconnect catch-up."""

    async def scenario():
        captured = {}
        service = StreamService(
            temporal_engine(),
            ServiceConfig(window_size=WINDOW_SIZE, micro_batch=128,
                          publish_port=0, publish_heartbeat=0.1),
        )
        await service.start()
        pub_host, pub_port = service.publish_address
        replica = ReplicaServer(
            ReplicaConfig(pub_host, pub_port, reconnect_seconds=0.1)
        )
        await replica.start()
        await replica.wait_synced()
        captured["initial"] = {
            "seq": replica.state.seq, "full_syncs": replica.full_syncs,
        }

        # Phase 1: ingest, converge, capture the identity surfaces.
        trace = make_dataset("ip_trace", WINDOWS, WINDOW_SIZE, SEED)
        in_host, in_port = service.ingest_address
        await replay_trace(trace, in_host, in_port, connections=1,
                           batch_size=100)
        await wait_for(lambda: service.publisher.seq >= WINDOWS,
                       "primary to publish every boundary")
        await wait_for(
            lambda: replica.state.seq >= service.publisher.seq,
            "replica to converge on the published sequence",
        )
        captured["phase1"] = await capture_identity(
            service, replica, IDENTITY_PATHS
        )
        p_host, p_port = service.http_address
        r_host, r_port = replica.http_address
        captured["primary_healthz"] = await http_raw(p_host, p_port, "/healthz")
        captured["replica_healthz"] = await http_raw(r_host, r_port, "/healthz")
        captured["replica_stats"] = await http_raw(r_host, r_port, "/stats")
        captured["replica_metrics"] = await http_raw(r_host, r_port, "/metrics")
        captured["primary_metrics"] = await http_raw(p_host, p_port, "/metrics")
        captured["bad_range"] = await http_raw(r_host, r_port,
                                               "/reports?range=9:2")

        # Pin the sequence the satellite test inspects (satellite 4).
        pinned = replica.state
        captured["pinned_probe"] = snapshot_range_reports(
            pinned.temporal, 0, WINDOWS - 1
        )
        counters_before = {
            "full_syncs": replica.full_syncs,
            "deltas_applied": replica.deltas_applied,
            "reconnects": replica.reconnects,
        }

        # Phase 2: sever the link on purpose, keep ingesting, reconnect.
        status, body = await http_raw(r_host, r_port,
                                      "/disconnect?pause=1.0", method="POST")
        captured["disconnect"] = (status, json.loads(body))
        await wait_for(lambda: not replica.connected, "link to drop")
        captured["stale_healthz"] = await http_raw(r_host, r_port, "/healthz")
        more = make_dataset("ip_trace", MORE_WINDOWS, WINDOW_SIZE, SEED + 1)
        await replay_trace(more, in_host, in_port, connections=1,
                           batch_size=100)
        total = WINDOWS + MORE_WINDOWS
        await wait_for(lambda: service.publisher.seq >= total,
                       "primary to publish the second batch")
        await wait_for(
            lambda: replica.connected
            and replica.state.seq >= service.publisher.seq,
            "replica to reconnect and catch up",
        )
        captured["phase2"] = await capture_identity(
            service, replica,
            ["/reports", f"/reports?range={WINDOWS - 2}:{total - 1}"],
        )
        captured["counters_before"] = counters_before
        captured["counters_after"] = {
            "full_syncs": replica.full_syncs,
            "deltas_applied": replica.deltas_applied,
            "reconnects": replica.reconnects,
        }
        captured["recovered_healthz"] = await http_raw(r_host, r_port,
                                                       "/healthz")
        await replica.stop()
        await service.stop()
        return service, replica, pinned, captured

    return asyncio.run(scenario())


class TestByteIdentity:
    def test_replica_serves_byte_identical_reports(self, streamed):
        """The tentpole acceptance check: every read route byte-equal to
        the primary at the same sequence."""
        _, _, _, captured = streamed
        phase1 = captured["phase1"]
        assert phase1["replica_seq"] == phase1["primary_seq"] == WINDOWS
        for path, (primary, replica) in phase1["pairs"].items():
            assert primary[0] == 200, path
            assert replica[0] == 200, path
            assert replica[1] == primary[1], path

    def test_identity_survives_catch_up(self, streamed):
        """After the sever/reconnect drill the bodies still match —
        delta replay reconstructed the same state, bit for bit."""
        _, _, _, captured = streamed
        phase2 = captured["phase2"]
        assert phase2["replica_seq"] == phase2["primary_seq"]
        assert phase2["primary_seq"] == WINDOWS + MORE_WINDOWS
        for path, (primary, replica) in phase2["pairs"].items():
            assert replica[1] == primary[1], path

    def test_reports_carry_real_findings(self, streamed):
        """Guard against a vacuously-passing identity test: the trace
        must actually produce simplex reports."""
        _, _, _, captured = streamed
        _, body = captured["phase1"]["pairs"]["/reports"][1]
        assert json.loads(body)["total"] > 0

    def test_bad_range_is_a_400_on_the_replica_too(self, streamed):
        _, _, _, captured = streamed
        status, body = captured["bad_range"]
        assert status == 400
        assert "error" in json.loads(body)


class TestDeltaConvergence:
    def test_initial_sync_then_deltas_only(self, streamed):
        """One full sync at attach; every boundary after that arrives as
        a DELTA — including the post-reconnect catch-up."""
        _, _, _, captured = streamed
        assert captured["initial"] == {"seq": 0, "full_syncs": 1}
        before, after = (captured["counters_before"],
                         captured["counters_after"])
        assert before["full_syncs"] == 1
        assert after["full_syncs"] == 1, "catch-up must resume, not resync"
        assert before["deltas_applied"] == WINDOWS
        assert after["deltas_applied"] == WINDOWS + MORE_WINDOWS
        assert after["reconnects"] >= before["reconnects"] + 1

    def test_healthz_staleness_drill(self, streamed):
        """/disconnect marks the replica stale; reconnect heals it."""
        _, _, _, captured = streamed
        assert captured["disconnect"] == (200, {"disconnected": True,
                                                "pause": 1.0})
        status, body = captured["stale_healthz"]
        stale = json.loads(body)
        assert status == 200
        assert stale["status"] == "stale" and stale["connected"] is False
        assert stale["snapshot_seq"] == WINDOWS
        status, body = captured["recovered_healthz"]
        healed = json.loads(body)
        assert status == 200
        assert healed["status"] == "ok" and healed["connected"] is True
        assert healed["snapshot_seq"] == WINDOWS + MORE_WINDOWS
        assert healed["snapshot_age_windows"] == 0

    def test_primary_healthz_reports_publish_side(self, streamed):
        _, _, _, captured = streamed
        status, body = captured["primary_healthz"]
        publisher = json.loads(body)["publisher"]
        assert status == 200
        assert publisher["last_published_seq"] == WINDOWS
        assert publisher["windows_since_publish"] == 0
        assert publisher["subscribers"] == 1

    def test_both_metric_families_exposed(self, streamed):
        _, _, _, captured = streamed
        _, replica_text = captured["replica_metrics"]
        for name in ("replica_snapshot_seq", "replica_snapshot_age_windows",
                     "replica_connected", "replica_deltas_applied_total",
                     "replica_full_syncs_total", "temporal_nodes"):
            assert name.encode() in replica_text, name
        _, primary_text = captured["primary_metrics"]
        for name in ("service_published_seq", "service_publish_subscribers",
                     "service_publish_deltas_total"):
            assert name.encode() in primary_text, name

    def test_replica_stats_surface(self, streamed):
        _, _, _, captured = streamed
        _, body = captured["replica_stats"]
        stats = json.loads(body)
        assert stats["snapshot_seq"] == WINDOWS
        assert stats["tracked_items"] > 0
        assert stats["temporal"]["tip"] == WINDOWS
        assert stats["reports"] == json.loads(
            captured["phase1"]["pairs"]["/reports"][1][1]
        )["total"]


class TestSequencePinning:
    """Satellite: a published sequence is immutable — a query pinned to
    sequence ``n`` answers from ``n`` forever, however far the live
    state advances."""

    def test_pinned_state_is_frozen(self, streamed):
        _, _, pinned, _ = streamed
        with pytest.raises(dataclasses.FrozenInstanceError):
            pinned.seq = 999
        assert isinstance(pinned.reports, tuple)

    def test_pinned_sequence_unmoved_by_later_deltas(self, streamed):
        """Six more boundaries landed after the pin; the pinned state
        still describes sequence 12 exactly."""
        _, replica, pinned, captured = streamed
        assert pinned.seq == WINDOWS
        assert replica.state.seq == WINDOWS + MORE_WINDOWS
        assert replica.state is not pinned
        assert len(replica.state.reports) >= len(pinned.reports)
        # the live report stream extends the pinned one, never rewrites it
        assert replica.state.reports[: len(pinned.reports)] == pinned.reports

    def test_pinned_temporal_answers_do_not_drift(self, streamed):
        _, _, pinned, captured = streamed
        assert snapshot_range_reports(pinned.temporal, 0, WINDOWS - 1) == (
            captured["pinned_probe"]
        )
        assert pinned.temporal.tip == WINDOWS


class TestReplicaConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"subscribe_port": 0},
            {"subscribe_port": 70000},
            {"subscribe_port": 9000, "http_port": -1},
            {"subscribe_port": 9000, "reconnect_seconds": 0.0},
            {"subscribe_port": 9000, "max_frame_bytes": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReplicaConfig(subscribe_host="127.0.0.1", **kwargs)
