"""Resume-window exhaustion and the temporal-free replica.

Two scenarios the main drill cannot cover: a replica so far behind that
the publisher's retained DELTA history no longer reaches it (must fall
back to one full SNAPSHOT sync and still end byte-identical), and a
primary running without a temporal tier (range queries answer from the
report snapshot with ``"source": "snapshot"`` on both sides).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.replica import ReplicaConfig, ReplicaServer
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace
from repro.streams.datasets import make_dataset

from tests.test_replica.test_replication import (
    SEED,
    WINDOW_SIZE,
    http_raw,
    sketch_config,
    temporal_engine,
    wait_for,
)

PHASE_A = 12  # long enough for the ip_trace to produce simplex reports
PHASE_B = 4


def test_deep_lag_falls_back_to_full_sync():
    """publish_history=2 retains two boundaries; a replica eight behind
    cannot resume and must take a SNAPSHOT — exactly once."""

    async def scenario():
        service = StreamService(
            temporal_engine(),
            ServiceConfig(window_size=WINDOW_SIZE, micro_batch=128,
                          publish_port=0, publish_history=2,
                          publish_heartbeat=0.1),
        )
        await service.start()
        replica = ReplicaServer(
            ReplicaConfig(*service.publish_address, reconnect_seconds=0.1)
        )
        await replica.start()
        await replica.wait_synced()
        in_host, in_port = service.ingest_address

        await replay_trace(
            make_dataset("ip_trace", PHASE_A, WINDOW_SIZE, SEED),
            in_host, in_port, connections=1, batch_size=100,
        )
        await wait_for(lambda: replica.state.seq >= PHASE_A,
                       "replica to reach the first phase")
        synced = {"full_syncs": replica.full_syncs,
                  "deltas_applied": replica.deltas_applied}

        # A deterministic deep outage: stop the replica entirely, let
        # the primary publish far past the retained history, restart.
        await replica.stop()
        await replay_trace(
            make_dataset("ip_trace", PHASE_B, WINDOW_SIZE, SEED + 1),
            in_host, in_port, connections=1, batch_size=100,
        )
        total = PHASE_A + PHASE_B
        await wait_for(lambda: service.publisher.seq >= total,
                       "primary to outrun the retained history")
        await replica.start()
        await wait_for(
            lambda: replica.state is not None and replica.state.seq >= total,
            "replica to full-sync back to the tip",
        )

        identity = (
            await http_raw(*service.http_address, "/reports"),
            await http_raw(*replica.http_address, "/reports"),
            await http_raw(*service.http_address, f"/reports?range=2:{total - 2}"),
            await http_raw(*replica.http_address, f"/reports?range=2:{total - 2}"),
        )
        counters = {"full_syncs": replica.full_syncs,
                    "deltas_applied": replica.deltas_applied,
                    "snapshots_sent": service.publisher.snapshots_sent}
        await replica.stop()
        await service.stop()
        return synced, counters, identity

    synced, counters, identity = asyncio.run(scenario())
    assert synced == {"full_syncs": 1, "deltas_applied": PHASE_A}
    assert counters["full_syncs"] == 2, "deep lag must resync exactly once"
    assert counters["deltas_applied"] == PHASE_A, "no deltas bridge the gap"
    assert counters["snapshots_sent"] == 2
    primary_all, replica_all, primary_range, replica_range = identity
    assert replica_all[1] == primary_all[1]
    assert replica_range[1] == primary_range[1]
    assert json.loads(primary_all[1])["total"] > 0


def test_temporal_free_primary_replicates_snapshot_source():
    """Without a temporal tier the stream carries no ladder; range
    queries fall back to report-window filtering on both sides and stay
    byte-identical; /history is the same 400 on both."""

    async def scenario():
        engine = ShardedXSketch(sketch_config(), n_shards=2, seed=SEED,
                                backend="inline")
        service = StreamService(
            engine,
            ServiceConfig(window_size=WINDOW_SIZE, micro_batch=128,
                          publish_port=0, publish_heartbeat=0.1),
        )
        await service.start()
        replica = ReplicaServer(
            ReplicaConfig(*service.publish_address, reconnect_seconds=0.1)
        )
        await replica.start()
        await replica.wait_synced()
        await replay_trace(
            make_dataset("ip_trace", PHASE_A, WINDOW_SIZE, SEED),
            *service.ingest_address, connections=1, batch_size=100,
        )
        await wait_for(lambda: service.publisher.seq >= PHASE_A,
                       "primary to publish")
        await wait_for(lambda: replica.state.seq >= service.publisher.seq,
                       "replica to converge")
        path = f"/reports?range=1:{PHASE_A - 1}"
        captured = {
            "primary_range": await http_raw(*service.http_address, path),
            "replica_range": await http_raw(*replica.http_address, path),
            "primary_history": await http_raw(*service.http_address, "/history"),
            "replica_history": await http_raw(*replica.http_address, "/history"),
        }
        mirrored_temporal = replica.state.temporal
        await replica.stop()
        await service.stop()
        return captured, mirrored_temporal

    captured, mirrored_temporal = asyncio.run(scenario())
    assert mirrored_temporal is None
    status, body = captured["primary_range"]
    assert status == 200
    assert json.loads(body)["range"]["source"] == "snapshot"
    assert captured["replica_range"] == captured["primary_range"]
    assert captured["primary_history"][0] == 400
    assert captured["replica_history"] == captured["primary_history"]


def test_delta_before_snapshot_is_rejected():
    """A replica must never apply a DELTA with no base state: the frame
    handler forces a full resync instead of fabricating sequence 1."""
    from repro.replica.server import _Resync

    replica = ReplicaServer(ReplicaConfig("127.0.0.1", 9))
    with pytest.raises(_Resync) as excinfo:
        replica._apply_delta({"type": "delta", "seq": 1, "window": 1,
                              "items_total": 0, "new_reports": [],
                              "summary": None, "ladder_deltas": []})
    assert excinfo.value.full is True


def test_sequence_gap_forces_reconnect():
    from repro.replica.server import _Resync
    from repro.replica.server import ReplicaState

    replica = ReplicaServer(ReplicaConfig("127.0.0.1", 9))
    replica.state = ReplicaState(seq=4, window=4, items_total=0,
                                 reports=(), summary=None, temporal=None)
    # duplicates around a resume are silently skipped...
    replica._apply_delta({"type": "delta", "seq": 3, "window": 3,
                          "items_total": 0, "new_reports": [],
                          "summary": None, "ladder_deltas": []})
    assert replica.state.seq == 4 and replica.deltas_applied == 0
    # ...but a forward gap can only mean lost frames
    with pytest.raises(_Resync):
        replica._apply_delta({"type": "delta", "seq": 6, "window": 6,
                              "items_total": 0, "new_reports": [],
                              "summary": None, "ladder_deltas": []})
