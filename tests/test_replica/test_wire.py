"""Temporal wire layer: delta replay lock-step and full-state round trips."""

from __future__ import annotations

import json

import pytest

from repro.core.reports import SimplexReport
from repro.errors import ConfigurationError
from repro.temporal import TemporalPolicy, TemporalStore
from repro.temporal.wire import (
    WIRE_VERSION,
    apply_window_delta,
    export_ladder_state,
    import_ladder_state,
    snapshot_range_reports,
)

SEED = 42
WINDOWS = 40


def _policy():
    return TemporalPolicy(
        freq_memory_kb=2.0, level_capacity=2, track_reports=True,
        fidelity_windows=0,
    )


def _reports_for(window: int):
    return [
        SimplexReport(
            item=f"item-{window}-{i}", start_window=max(0, window - 3),
            report_window=window, lasting_time=3,
            coefficients=(1.0, 0.5 * i), mse=0.01 * i,
        )
        for i in range(window % 3)
    ]


def _drive(primary: TemporalStore, replica: TemporalStore, windows) -> None:
    for window in windows:
        primary.observe_items([f"x{n % 17}" for n in range(50)])
        primary.on_window(window, _reports_for(window))
        for delta in primary.take_deltas():
            # force the JSON wire round trip the real stream performs
            apply_window_delta(replica, json.loads(json.dumps(delta)))


@pytest.fixture()
def mirrored():
    primary = TemporalStore(_policy(), seed=SEED)
    primary.capture_deltas = True
    replica = TemporalStore(TemporalPolicy.from_spec(_policy().spec()), seed=SEED)
    _drive(primary, replica, range(WINDOWS))
    return primary, replica


class TestWindowDeltas:
    def test_replayed_ladder_has_identical_layout(self, mirrored):
        """Coarsening is deterministic in the level-0 append sequence, so
        the mirror holds the same nodes — not merely the same answers."""
        primary, replica = mirrored
        assert primary.snapshot.tip == replica.snapshot.tip
        assert primary.snapshot.coarsenings == replica.snapshot.coarsenings
        primary_layout = [
            (n.level, n.start, n.items) for n in primary.snapshot.nodes
        ]
        replica_layout = [
            (n.level, n.start, n.items) for n in replica.snapshot.nodes
        ]
        assert replica_layout == primary_layout

    def test_range_answers_identical(self, mirrored):
        primary, replica = mirrored
        for a, b in [(0, WINDOWS - 1), (3, 30), (17, 17)]:
            assert replica.range_reports(a, b) == primary.range_reports(a, b)
            assert replica.range_frequency("x3", a, b) == (
                primary.range_frequency("x3", a, b)
            )

    def test_counters_mirror(self, mirrored):
        primary, replica = mirrored
        assert replica.windows_observed == primary.windows_observed
        assert replica.items_observed == primary.items_observed

    def test_out_of_order_delta_rejected(self, mirrored):
        primary, replica = mirrored
        primary.observe_items(["y"])
        primary.on_window(WINDOWS, [])
        (delta,) = primary.take_deltas()
        skipped = dict(delta, window=WINDOWS + 5)
        with pytest.raises(ConfigurationError):
            apply_window_delta(replica, skipped)

    def test_capture_off_by_default(self):
        store = TemporalStore(_policy(), seed=SEED)
        store.on_window(0, [])
        assert store.take_deltas() == []


class TestFullState:
    def test_export_import_round_trip(self, mirrored):
        primary, _ = mirrored
        state = json.loads(json.dumps(export_ladder_state(primary)))
        clone = import_ladder_state(state)
        assert clone.range_reports(0, WINDOWS - 1) == (
            primary.range_reports(0, WINDOWS - 1)
        )
        assert clone.snapshot.coarsenings == primary.snapshot.coarsenings
        assert clone.windows_observed == primary.windows_observed

    def test_imported_store_keeps_lock_step(self, mirrored):
        """A full sync is a valid resume point: deltas applied after it
        land exactly as on the primary."""
        primary, _ = mirrored
        clone = import_ladder_state(export_ladder_state(primary))
        _drive(primary, clone, range(WINDOWS, WINDOWS + 10))
        assert clone.range_reports(0, WINDOWS + 9) == (
            primary.range_reports(0, WINDOWS + 9)
        )
        assert [n.describe()["level"] for n in clone.snapshot.nodes] == (
            [n.describe()["level"] for n in primary.snapshot.nodes]
        )

    def test_asof_payloads_never_ride_the_wire(self):
        """The replica is the slim half of the SF split: full merged
        snapshots stay on the primary."""
        policy = TemporalPolicy(
            freq_memory_kb=2.0, track_reports=True, fidelity_windows=4
        )
        store = TemporalStore(policy, seed=SEED)
        store.capture_deltas = True
        store.on_window(0, [], snapshot_fn=lambda: {"fat": True})
        assert any(n.asof is not None for n in store.snapshot.nodes)
        (delta,) = store.take_deltas()
        assert "asof" not in delta
        exported = export_ladder_state(store)
        assert all("asof" not in n for n in exported["nodes"])

    def test_version_mismatch_rejected(self, mirrored):
        primary, _ = mirrored
        state = export_ladder_state(primary)
        state["version"] = WIRE_VERSION + 1
        with pytest.raises(ConfigurationError):
            import_ladder_state(state)


class TestSnapshotRangeReports:
    def test_matches_store_query_on_pinned_snapshot(self, mirrored):
        _, replica = mirrored
        pinned = replica.snapshot
        for a, b in [(0, WINDOWS - 1), (5, 25)]:
            assert snapshot_range_reports(pinned, a, b) == (
                replica.range_reports(a, b)
            )

    def test_pinned_snapshot_survives_later_windows(self, mirrored):
        primary, replica = mirrored
        pinned = replica.snapshot
        before = snapshot_range_reports(pinned, 0, WINDOWS - 1)
        _drive(primary, replica, range(WINDOWS, WINDOWS + 8))
        assert snapshot_range_reports(pinned, 0, WINDOWS - 1) == before
        assert replica.snapshot.tip == WINDOWS + 8
