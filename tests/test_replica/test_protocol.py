"""Replica frame validation: the wire contract, without sockets."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.replica.protocol import (
    FRAME_TYPES,
    parse_frame,
    parse_subscribe,
    subscribe_message,
)


def _frame(kind: str, **overrides) -> dict:
    base = {"type": kind, "seq": 3, "window": 3, "items_total": 1200}
    if kind == "snapshot":
        base.update(reports=[], summary=None, temporal=None)
    elif kind == "delta":
        base.update(new_reports=[], summary=None, ladder_deltas=[])
    base.update(overrides)
    return base


class TestSubscribe:
    def test_round_trip(self):
        assert parse_subscribe(subscribe_message(7)) == 7
        assert parse_subscribe(subscribe_message(None)) is None

    @pytest.mark.parametrize(
        "obj",
        [
            {"type": "delta"},
            {"since": 3},
            "subscribe",
            {"type": "subscribe", "since": -1},
            {"type": "subscribe", "since": 1.5},
            {"type": "subscribe", "since": "7"},
        ],
    )
    def test_rejects_malformed(self, obj):
        with pytest.raises(ServiceError):
            parse_subscribe(obj)


class TestDownstreamFrames:
    @pytest.mark.parametrize("kind", FRAME_TYPES)
    def test_well_formed_frames_pass_through(self, kind):
        frame = _frame(kind)
        assert parse_frame(frame) is frame

    @pytest.mark.parametrize(
        "obj",
        [
            [],
            {"type": "subscribe", "since": None},  # upstream-only type
            _frame("heartbeat", type="gossip"),
            _frame("delta", seq=-1),
            _frame("delta", window="3"),
            _frame("snapshot", items_total=None),
            _frame("snapshot", reports=None),
            _frame("delta", new_reports={}),
            _frame("delta", ladder_deltas="[]"),
        ],
    )
    def test_rejects_malformed(self, obj):
        with pytest.raises(ServiceError):
            parse_frame(obj)

    def test_heartbeat_needs_no_list_fields(self):
        parse_frame({"type": "heartbeat", "seq": 0, "window": 0,
                     "items_total": 0})
