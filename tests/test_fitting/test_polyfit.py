"""Unit and property tests for polynomial fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FittingError
from repro.fitting.polyfit import PolynomialFit, fit_leading_and_mse, fit_polynomial


class TestFitExactData:
    def test_constant(self):
        fit = fit_polynomial([5, 5, 5, 5], 0)
        assert fit.coefficients[0] == pytest.approx(5.0)
        assert fit.mse == pytest.approx(0.0, abs=1e-12)

    def test_linear(self):
        fit = fit_polynomial([1, 4, 7, 10], 1)
        assert fit.coefficients == pytest.approx((1.0, 3.0))
        assert fit.mse == pytest.approx(0.0, abs=1e-12)

    def test_quadratic(self):
        values = [2 + 3 * i + 0.5 * i * i for i in range(7)]
        fit = fit_polynomial(values, 2)
        assert fit.coefficients == pytest.approx((2.0, 3.0, 0.5))
        assert fit.mse == pytest.approx(0.0, abs=1e-9)

    def test_cubic(self):
        values = [1 + i**3 for i in range(8)]
        fit = fit_polynomial(values, 3)
        assert fit.coefficients == pytest.approx((1.0, 0.0, 0.0, 1.0), abs=1e-8)


class TestFitProperties:
    def test_matches_numpy_polyfit(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = int(rng.integers(4, 9))
            k = int(rng.integers(0, 3))
            values = rng.uniform(0, 50, size=n)
            ours = fit_polynomial(values.tolist(), k)
            theirs = np.polyfit(np.arange(n), values, k)[::-1]
            assert np.allclose(ours.coefficients, theirs, atol=1e-6)

    @settings(max_examples=60)
    @given(
        st.lists(st.floats(min_value=0, max_value=1e4), min_size=4, max_size=8),
        st.integers(min_value=0, max_value=2),
    )
    def test_mse_nonnegative_and_decreasing_in_k(self, values, k):
        low = fit_polynomial(values, k)
        high = fit_polynomial(values, k + 1)
        assert low.mse >= -1e-9
        assert high.mse <= low.mse + 1e-6  # more degrees never fit worse

    @settings(max_examples=60)
    @given(
        st.lists(st.floats(min_value=0, max_value=1e4), min_size=3, max_size=8),
        st.integers(min_value=0, max_value=2),
    )
    def test_fast_path_agrees_with_full_fit(self, values, k):
        if len(values) < k + 1:
            return
        fit = fit_polynomial(values, k)
        leading, mse = fit_leading_and_mse(values, k)
        assert leading == pytest.approx(fit.leading, rel=1e-12, abs=1e-12)
        assert mse == pytest.approx(fit.mse, rel=1e-12, abs=1e-12)

    def test_predict_interpolates(self):
        fit = fit_polynomial([2, 5, 8, 11], 1)
        for i, expected in enumerate([2, 5, 8, 11]):
            assert fit.predict(i) == pytest.approx(expected)

    def test_predict_many(self):
        fit = fit_polynomial([0, 1, 2, 3], 1)
        assert fit.predict_many([4, 5]) == pytest.approx((4.0, 5.0))


class TestFitErrors:
    def test_empty_raises(self):
        with pytest.raises(FittingError):
            fit_polynomial([], 0)
        with pytest.raises(FittingError):
            fit_leading_and_mse([], 0)

    def test_underdetermined_raises(self):
        with pytest.raises(FittingError):
            fit_polynomial([1, 2], 2)


class TestPolynomialFitObject:
    def test_degree_and_leading(self):
        fit = PolynomialFit(coefficients=(1.0, 2.0, 3.0), mse=0.5, n_points=7)
        assert fit.degree == 2
        assert fit.leading == 3.0
