"""Unit tests for the k-simplex decision rule and SimplexTask."""

import pytest

from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask, evaluate_simplex, is_simplex


class TestSimplexTask:
    def test_paper_defaults(self):
        assert SimplexTask.paper_default(0).T == 1.0
        assert SimplexTask.paper_default(1).T == 2.0
        assert SimplexTask.paper_default(2).T == 4.0
        assert all(SimplexTask.paper_default(k).p == 7 for k in range(3))
        assert all(SimplexTask.paper_default(k).L == 1.0 for k in range(3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": -1},
            {"k": 2, "p": 2},
            {"T": -0.1},
            {"L": -1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimplexTask(**kwargs)

    def test_frozen_and_hashable(self):
        assert hash(SimplexTask(k=1)) == hash(SimplexTask(k=1))


class TestDecisionRule:
    def test_clean_linear_is_1_simplex(self):
        task = SimplexTask(k=1, p=7, T=1.0, L=1.0)
        assert is_simplex([3, 6, 9, 12, 15, 18, 21], task)

    def test_zero_frequency_disqualifies(self):
        task = SimplexTask(k=1, p=7, T=100.0, L=0.0)
        verdict = evaluate_simplex([3, 6, 0, 12, 15, 18, 21], task)
        assert not verdict.is_simplex
        assert not verdict.all_positive
        assert verdict.fit is None
        assert verdict.mse is None
        assert verdict.leading is None

    def test_mse_threshold_enforced(self):
        task = SimplexTask(k=1, p=7, T=0.5, L=0.0)
        noisy = [3, 9, 4, 14, 11, 20, 17]
        assert not is_simplex(noisy, task)
        loose = SimplexTask(k=1, p=7, T=100.0, L=0.0)
        assert is_simplex(noisy, loose)

    def test_leading_coefficient_guard(self):
        """Section III-C: a constant item is not 1-simplex because |a_1| < L."""
        task = SimplexTask(k=1, p=7, T=1.0, L=1.0)
        assert not is_simplex([5, 5, 5, 5, 5, 5, 5], task)

    def test_negative_slope_counts(self):
        """Decreasing items are in scope (|a_k|, not a_k)."""
        task = SimplexTask(k=1, p=7, T=1.0, L=1.0)
        assert is_simplex([21, 18, 15, 12, 9, 6, 3], task)

    def test_linear_item_is_not_2_simplex(self):
        """The guard separates k- from (k-1)-simplex items."""
        task = SimplexTask(k=2, p=7, T=1.0, L=1.0)
        assert not is_simplex([3, 6, 9, 12, 15, 18, 21], task)

    def test_parabola_is_2_simplex(self):
        task = SimplexTask(k=2, p=7, T=1.0, L=1.0)
        values = [40 - 1.5 * (i - 3) ** 2 for i in range(7)]
        assert is_simplex(values, task)

    def test_short_span_allowed(self):
        """Stage 1 applies the rule to s < p windows."""
        task = SimplexTask(k=1, p=7, T=1.0, L=1.0)
        assert is_simplex([2, 4, 6, 8], task)

    def test_constant_zero_level_not_simplex_k0(self):
        """k=0 with L=1 requires a level of at least 1."""
        task = SimplexTask(k=0, p=4, T=1.0, L=1.0)
        assert is_simplex([1, 1, 1, 1], task)
        # all-positive is required before the fit is even attempted
        assert not is_simplex([1, 1, 0, 1], task)
