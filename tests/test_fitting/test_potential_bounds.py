"""Unit and property tests for the Potential Λ and Theorems 3-4 bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fitting.bounds import ak_error_bound, mse_error_bound
from repro.fitting.polyfit import fit_polynomial
from repro.fitting.potential import DEFAULT_DELTA, potential


class TestPotential:
    def test_exact_fit_gives_huge_potential(self):
        fit = fit_polynomial([2, 4, 6, 8], 1)
        assert potential(fit) > 1e5  # mse ~ 0, |a_1| = 2

    def test_flat_item_gives_zero_potential_k1(self):
        fit = fit_polynomial([5, 5, 5, 5], 1)
        assert potential(fit) == pytest.approx(0.0, abs=1e-6)

    def test_delta_guards_division(self):
        fit = fit_polynomial([1, 2, 3, 4], 1)
        assert potential(fit, delta=1.0) == pytest.approx(1.0 / (0.0 + 1.0), abs=1e-9)

    def test_noisier_fit_has_lower_potential(self):
        clean = fit_polynomial([2, 4, 6, 8, 10, 12, 14], 1)
        noisy = fit_polynomial([2, 6, 4, 10, 8, 14, 12], 1)
        assert potential(clean, DEFAULT_DELTA) > potential(noisy, DEFAULT_DELTA)


FREQ = st.lists(st.floats(min_value=0, max_value=1e3), min_size=7, max_size=7)


class TestTheorem3:
    @settings(max_examples=80)
    @given(FREQ, FREQ, st.integers(min_value=0, max_value=2))
    def test_ak_error_within_bound(self, truth, estimate, k):
        bound = ak_error_bound(truth, estimate, k)
        true_fit = fit_polynomial(truth, k)
        est_fit = fit_polynomial(estimate, k)
        assert abs(true_fit.leading - est_fit.leading) <= bound + 1e-6

    def test_identical_vectors_zero_bound(self):
        values = [1, 2, 3, 4, 5, 6, 7]
        assert ak_error_bound(values, values, 1) == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ak_error_bound([1, 2], [1, 2, 3], 1)


class TestTheorem4:
    @settings(max_examples=80)
    @given(FREQ, FREQ, st.integers(min_value=0, max_value=2))
    def test_mse_error_within_bound(self, truth, estimate, k):
        bound = mse_error_bound(truth, estimate, k)
        true_fit = fit_polynomial(truth, k)
        est_fit = fit_polynomial(estimate, k)
        assert abs(true_fit.mse - est_fit.mse) <= bound + 1e-6

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mse_error_bound([1, 2], [1, 2, 3], 1)
