"""Unit tests for design matrices and cached pseudo-inverses."""

import numpy as np
import pytest

from repro.errors import FittingError
from repro.fitting.design import (
    design_matrix,
    pseudo_inverse,
    pseudo_inverse_norm,
    residual_projector,
    residual_projector_norm,
)


class TestDesignMatrix:
    def test_shape_and_values(self):
        x = design_matrix(4, 2)
        assert x.shape == (4, 3)
        assert x[0].tolist() == [1, 0, 0]
        assert x[3].tolist() == [1, 3, 9]

    def test_degree_zero(self):
        x = design_matrix(3, 0)
        assert x.tolist() == [[1], [1], [1]]

    def test_underdetermined_raises(self):
        with pytest.raises(FittingError):
            design_matrix(2, 2)

    def test_negative_degree_raises(self):
        with pytest.raises(FittingError):
            design_matrix(4, -1)


class TestPseudoInverse:
    def test_satisfies_normal_equation(self):
        """P = (X^T X)^{-1} X^T  must satisfy  P X = I."""
        for n, k in [(4, 0), (4, 1), (7, 2), (8, 3)]:
            x = design_matrix(n, k)
            p = np.asarray(pseudo_inverse(n, k))
            assert np.allclose(p @ x, np.eye(k + 1), atol=1e-9)

    def test_cached_instances_identical(self):
        assert pseudo_inverse(7, 1) is pseudo_inverse(7, 1)

    def test_degree_zero_is_mean(self):
        p = np.asarray(pseudo_inverse(5, 0))
        assert np.allclose(p, np.full((1, 5), 0.2))

    def test_norm_positive(self):
        assert pseudo_inverse_norm(7, 1) > 0


class TestResidualProjector:
    def test_projector_is_idempotent(self):
        a = residual_projector(7, 2)
        assert np.allclose(a @ a, a, atol=1e-9)

    def test_projector_annihilates_polynomials(self):
        """A * X = 0: degree-k polynomials leave no residual."""
        a = residual_projector(6, 1)
        x = design_matrix(6, 1)
        assert np.allclose(a @ x, 0, atol=1e-9)

    def test_norm_is_one_when_residual_space_nonempty(self):
        assert residual_projector_norm(7, 1) == pytest.approx(1.0, abs=1e-9)
