"""Unit tests for configuration objects."""

import pytest

from repro.config import StreamGeometry, XSketchConfig
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask


class TestStreamGeometry:
    def test_total_items(self):
        assert StreamGeometry(n_windows=10, window_size=100).total_items == 1000

    @pytest.mark.parametrize("kwargs", [{"n_windows": 0}, {"window_size": 0}])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            StreamGeometry(**kwargs)


class TestXSketchConfig:
    def test_defaults_follow_paper(self):
        config = XSketchConfig()
        assert config.s == 4
        assert config.u == 4
        assert config.r == 0.8
        assert config.G == 0.5
        assert config.d == 3

    def test_memory_split(self):
        config = XSketchConfig(memory_kb=100.0, r=0.8)
        assert config.stage1_bytes == int(100 * 1024 * 0.8)
        assert config.stage1_bytes + config.stage2_bytes == config.memory_bytes

    def test_stage2_cell_bytes(self):
        config = XSketchConfig(task=SimplexTask(k=1, p=7))
        assert config.stage2_cell_bytes == 4 + 4 + 7 * 4

    def test_stage2_buckets_positive_even_when_tiny(self):
        config = XSketchConfig(memory_kb=1.0)
        assert config.stage2_buckets >= 1

    def test_s_equal_p_allowed(self):
        config = XSketchConfig(task=SimplexTask(k=1, p=7), s=7)
        assert config.s == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"memory_kb": 0},
            {"s": 8},  # > p
            {"s": 1, "task": SimplexTask(k=1)},  # < k+1
            {"G": -0.1},
            {"d": 0},
            {"u": 0},
            {"r": 0.0},
            {"r": 1.0},
            {"delta": 0.0},
            {"update_rule": "median"},
            {"replacement": "random"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            XSketchConfig(**kwargs)

    def test_frozen(self):
        config = XSketchConfig()
        with pytest.raises(Exception):
            config.s = 5
