"""Shared helpers for the service tests: HTTP micro-client, stub engines."""

from __future__ import annotations

import asyncio
import json
import time
from typing import List, Optional, Tuple


async def http_request(
    host: str,
    port: int,
    path: str,
    method: str = "GET",
    body: Optional[dict] = None,
) -> Tuple[int, dict]:
    """One HTTP/1.1 exchange against the service's query listener."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode() + payload
    writer.write(request)
    await writer.drain()
    response = await reader.read()
    writer.close()
    head, _, raw = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(raw)


class RecordingEngine:
    """Engine stub that records every call; optionally slow or failing.

    ``delay`` seconds of sleep per ``ingest_batch`` simulate a slow
    consumer for the overload tests; ``fail_after`` items makes the next
    ingest raise ``RuntimeShardError`` for the fail-fast tests.
    """

    def __init__(self, delay: float = 0.0, fail_after: Optional[int] = None):
        self.delay = delay
        self.fail_after = fail_after
        self.items: List = []
        self.batches: List[int] = []
        self.windows = 0
        self.closed = False

    def ingest_batch(self, items) -> None:
        from repro.errors import RuntimeShardError

        if self.fail_after is not None and len(self.items) >= self.fail_after:
            raise RuntimeShardError("injected shard failure")
        if self.delay:
            time.sleep(self.delay)
        self.items.extend(items)
        self.batches.append(len(items))

    def flush_window(self):
        self.windows += 1
        return []

    @property
    def reports(self):
        return []

    def close(self) -> None:
        self.closed = True
