"""Service-level engine parity: the same trace served through each
runtime engine answers ``/reports`` identically (byte-for-byte for the
boundary-evaluating engines) at the same window sequence."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.config import XSketchConfig
from repro.core.engines import ENGINE_NAMES, make_engine
from repro.fitting.simplex import SimplexTask
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace
from repro.streams.datasets import make_dataset

SEED = 42
WINDOWS = 12
WINDOW_SIZE = 400


@pytest.fixture(scope="module")
def trace():
    return make_dataset("ip_trace", WINDOWS, WINDOW_SIZE, SEED)


def _config():
    return XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0)


async def _raw_get(host, port, path):
    """One GET, returning the raw response body bytes (parity surface)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    response = await reader.read()
    writer.close()
    head, _, body = response.partition(b"\r\n\r\n")
    assert head.split(b" ", 2)[1] == b"200"
    return body


def _serve_and_fetch(engine_factory, trace):
    async def scenario():
        service = StreamService(
            engine_factory(),
            ServiceConfig(window_size=WINDOW_SIZE, micro_batch=128),
        )
        await service.start()
        ingest_host, ingest_port = service.ingest_address
        await replay_trace(trace, ingest_host, ingest_port, connections=2, batch_size=64)
        http_host, http_port = service.http_address
        body = await _raw_get(http_host, http_port, "/reports")
        windows_closed = service.manager.windows_closed
        await service.stop()
        return body, windows_closed

    return asyncio.run(scenario())


class TestReportsParityAcrossEngines:
    @pytest.fixture(scope="class")
    def bodies(self, trace):
        results = {}
        for engine in ENGINE_NAMES:
            results[engine] = _serve_and_fetch(
                lambda engine=engine: make_engine(_config(), seed=SEED, engine=engine),
                trace,
            )
        return results

    def test_all_engines_drained_every_window(self, bodies):
        assert {windows for _, windows in bodies.values()} == {WINDOWS}

    def test_same_window_sequence_in_every_body(self, bodies):
        windows = {json.loads(body)["window"] for body, _ in bodies.values()}
        assert windows == {WINDOWS}

    def test_batched_and_vectorized_byte_identical(self, bodies):
        assert bodies["batched"][0] == bodies["vectorized"][0]
        assert json.loads(bodies["batched"][0])["total"] > 0

    def test_per_arrival_covers_batched(self, bodies):
        def keys(body):
            return {
                (r["report_window"], str(r["item"]))
                for r in json.loads(body)["reports"]
            }

        assert keys(bodies["batched"][0]) <= keys(bodies["xsketch"][0])

    def test_sharded_vectorized_matches_single_process_set(self, trace):
        """The sharded coordinator merges per-shard report streams; the
        resulting /reports set matches the single-process vectorized
        engine on the same (key-partitioned) trace."""
        single_body, _ = _serve_and_fetch(
            lambda: make_engine(_config(), seed=SEED, engine="vectorized"), trace
        )
        sharded_body, _ = _serve_and_fetch(
            lambda: ShardedXSketch(
                _config(), n_shards=2, seed=SEED, backend="inline",
                engine="vectorized",
            ),
            trace,
        )

        def keys(body):
            return sorted(
                (r["report_window"], str(r["item"]))
                for r in json.loads(body)["reports"]
            )

        assert keys(sharded_body) == keys(single_body)
