"""In-process server tests: e2e equivalence, flow control, lifecycle, HTTP.

Everything runs on ephemeral loopback ports with the inline shard
backend (deterministic, no worker processes), so these are ordinary
tier-1 tests.
"""

import asyncio

import pytest

from repro.config import XSketchConfig
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace, send_shutdown
from repro.service.protocol import MAGIC, decode_payload, encode_frame, encode_line, read_frame
from repro.streams.datasets import make_dataset

from tests.test_service.helpers import RecordingEngine, http_request

SEED = 42
WINDOWS = 12
WINDOW_SIZE = 400


@pytest.fixture(scope="module")
def trace():
    return make_dataset("ip_trace", WINDOWS, WINDOW_SIZE, SEED)


def sketch_config():
    return XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0)


def direct_reports(trace, n_shards=2):
    engine = ShardedXSketch(sketch_config(), n_shards=n_shards, seed=SEED, backend="inline")
    for window in trace.windows():
        engine.run_window(window)
    engine.close()
    return engine.report()


def service_over_shards(n_shards=2, **config_kwargs):
    engine = ShardedXSketch(sketch_config(), n_shards=n_shards, seed=SEED, backend="inline")
    config_kwargs.setdefault("window_size", WINDOW_SIZE)
    config_kwargs.setdefault("micro_batch", 128)
    return StreamService(engine, ServiceConfig(**config_kwargs))


class TestEndToEnd:
    def test_concurrent_loadgen_matches_direct_run(self, trace):
        """The acceptance path: N concurrent ordered connections into a
        sharded service, drain on shutdown, reports byte-identical to a
        direct in-process run of the same trace."""

        async def scenario():
            service = service_over_shards()
            await service.start()
            host, port = service.ingest_address
            stats = await replay_trace(
                trace, host, port, connections=4, batch_size=64, shutdown=True
            )
            await asyncio.wait_for(service.wait_stopped(), timeout=30)
            return service, stats

        service, stats = asyncio.run(scenario())
        assert stats.total_items == len(trace)
        assert stats.received_items == len(trace)
        assert stats.dropped_items == 0
        assert service.manager.windows_closed == WINDOWS
        assert list(service.manager.snapshot.reports) == direct_reports(trace)

    def test_single_connection_xsketch_engine(self, trace):
        """A plain (non-sharded) engine behind the same service protocol."""

        async def scenario():
            engine = XSketch(sketch_config(), seed=SEED)
            service = StreamService(
                engine, ServiceConfig(window_size=WINDOW_SIZE, micro_batch=256)
            )
            await service.start()
            host, port = service.ingest_address
            await replay_trace(trace, host, port, connections=1, batch_size=100)
            await service.stop()
            return list(service.manager.snapshot.reports)

        served = asyncio.run(scenario())
        direct = XSketch(sketch_config(), seed=SEED)
        for window in trace.windows():
            direct.run_window(window)
        assert served == direct.reports

    def test_jsonl_variant_equivalent_to_framed(self, trace):
        async def ingest(protocol):
            service = service_over_shards()
            await service.start()
            host, port = service.ingest_address
            stats = await replay_trace(
                trace, host, port, connections=2, batch_size=64, protocol=protocol
            )
            await service.stop()
            return stats, list(service.manager.snapshot.reports)

        framed_stats, framed_reports = asyncio.run(ingest("framed"))
        jsonl_stats, jsonl_reports = asyncio.run(ingest("jsonl"))
        assert framed_stats.received_items == jsonl_stats.received_items == len(trace)
        assert framed_reports == jsonl_reports == direct_reports(trace)

    def test_unordered_mode_delivers_everything(self, trace):
        """Without seq stamps report equality is not guaranteed, but
        delivery and window accounting still are."""

        async def scenario():
            service = service_over_shards()
            await service.start()
            host, port = service.ingest_address
            stats = await replay_trace(
                trace, host, port, connections=3, batch_size=64, ordered=False
            )
            await service.stop()
            return service, stats

        service, stats = asyncio.run(scenario())
        assert stats.received_items == len(trace)
        assert service.manager.windows_closed == WINDOWS
        assert service.manager.items_total == len(trace)


class TestFlowControl:
    def test_drop_policy_counts_and_bounds(self):
        """Overload with drop: queue memory stays bounded and every sent
        item is either acknowledged or counted as dropped."""
        n_batches, batch_items = 40, 10

        async def scenario():
            engine = RecordingEngine(delay=0.01)
            service = StreamService(
                engine,
                ServiceConfig(
                    window_size=10**9, micro_batch=batch_items,
                    queue_batches=2, overload="drop",
                ),
            )
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(MAGIC)
            for index in range(n_batches):
                writer.write(encode_frame([f"i{index}-{j}" for j in range(batch_items)]))
            await writer.drain()
            # sample queue depths while the slow engine chews
            depths = []
            for _ in range(10):
                status, stats = await http_request(*service.http_address, "/stats")
                assert status == 200
                depths.extend(
                    (c["queue_depth"], c["queue_capacity"])
                    for c in stats["per_connection"]
                )
                await asyncio.sleep(0.01)
            writer.write_eof()
            ack = decode_payload(await read_frame(reader, 1 << 20))
            writer.close()
            await service.stop()
            return engine, service, ack, depths

        engine, service, ack, depths = asyncio.run(scenario())
        sent = n_batches * batch_items
        assert ack["received"] + ack["dropped"] == sent
        assert ack["dropped"] > 0, "slow consumer at capacity 2 must drop"
        assert service.dropped_items == ack["dropped"]
        assert len(engine.items) == ack["received"]
        for depth, capacity in depths:
            assert depth <= capacity == 2

    def test_pushback_policy_delivers_everything(self):
        """Overload with pushback: the reader stalls instead of dropping,
        so a slow consumer still receives every item."""
        n_batches, batch_items = 20, 10

        async def scenario():
            engine = RecordingEngine(delay=0.005)
            service = StreamService(
                engine,
                ServiceConfig(
                    window_size=10**9, micro_batch=batch_items,
                    queue_batches=2, overload="pushback",
                ),
            )
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(MAGIC)
            for index in range(n_batches):
                writer.write(encode_frame([f"i{index}-{j}" for j in range(batch_items)]))
                await writer.drain()
            writer.write_eof()
            ack = decode_payload(await read_frame(reader, 1 << 20))
            writer.close()
            await service.stop()
            return engine, ack

        engine, ack = asyncio.run(scenario())
        assert ack == {"received": n_batches * batch_items, "dropped": 0}
        assert len(engine.items) == n_batches * batch_items

    def test_micro_batching_coalesces_frames(self):
        """Many small frames reach the engine as few ingest_batch calls."""

        async def scenario():
            engine = RecordingEngine()
            service = StreamService(
                engine, ServiceConfig(window_size=100, micro_batch=50)
            )
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(MAGIC)
            for index in range(20):  # 20 frames x 5 items = one window
                writer.write(encode_frame([f"x{index}-{j}" for j in range(5)]))
            writer.write_eof()
            await read_frame(reader, 1 << 20)
            writer.close()
            await service.stop()
            return engine

        engine = asyncio.run(scenario())
        assert len(engine.items) == 100
        assert engine.windows == 1
        # 100 items at micro_batch=50: far fewer engine calls than frames
        assert len(engine.batches) <= 3
        assert max(engine.batches) <= 50


class TestWindowAdvance:
    def test_flush_op_closes_partial_window(self):
        async def scenario():
            engine = RecordingEngine()
            service = StreamService(
                engine, ServiceConfig(window_size=1000, micro_batch=100)
            )
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(MAGIC)
            writer.write(encode_frame(["a", "b", "c"]))
            writer.write(encode_frame({"op": "flush"}))
            writer.write_eof()
            await read_frame(reader, 1 << 20)
            writer.close()
            await service.stop()
            return engine, service

        engine, service = asyncio.run(scenario())
        assert engine.windows == 1
        assert service.manager.windows_closed == 1
        assert engine.items == ["a", "b", "c"]

    def test_wall_clock_tick_closes_window(self):
        async def scenario():
            engine = RecordingEngine()
            service = StreamService(
                engine,
                ServiceConfig(window_size=10**9, window_seconds=0.03, micro_batch=10),
            )
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(MAGIC + encode_frame(["t1", "t2"]))
            await writer.drain()
            for _ in range(100):
                if service.manager.windows_closed >= 1:
                    break
                await asyncio.sleep(0.02)
            writer.write_eof()
            await read_frame(reader, 1 << 20)
            writer.close()
            closed_by_tick = service.manager.windows_closed
            await service.stop()
            return closed_by_tick, engine

        closed_by_tick, engine = asyncio.run(scenario())
        assert closed_by_tick >= 1
        assert engine.items == ["t1", "t2"]

    def test_idle_ticks_do_not_spin_windows(self):
        async def scenario():
            engine = RecordingEngine()
            service = StreamService(
                engine,
                ServiceConfig(window_size=10**9, window_seconds=0.01),
            )
            await service.start()
            await asyncio.sleep(0.1)
            await service.stop()
            return engine

        engine = asyncio.run(scenario())
        assert engine.windows == 0


class TestLifecycle:
    def test_drain_flushes_open_window_and_closes_engine(self):
        async def scenario():
            engine = RecordingEngine()
            service = StreamService(
                engine, ServiceConfig(window_size=1000, micro_batch=100)
            )
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(MAGIC + encode_frame(["a", "b"]))
            writer.write_eof()
            await read_frame(reader, 1 << 20)
            writer.close()
            await service.stop()
            await service.stop()  # idempotent
            return engine

        engine = asyncio.run(scenario())
        assert engine.windows == 1, "drain must flush the open window"
        assert engine.items == ["a", "b"]
        assert engine.closed

    def test_shutdown_op_drains_service(self):
        async def scenario():
            engine = RecordingEngine()
            service = StreamService(
                engine, ServiceConfig(window_size=1000, micro_batch=10)
            )
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_line(["z1", "z2"]) + encode_line({"op": "shutdown"}))
            await writer.drain()
            writer.write_eof()
            ack = decode_payload((await reader.readline()).strip())
            writer.close()
            await asyncio.wait_for(service.wait_stopped(), timeout=10)
            return engine, ack

        engine, ack = asyncio.run(scenario())
        assert ack["received"] == 2
        assert engine.windows == 1
        assert engine.closed

    def test_send_shutdown_helper(self):
        async def scenario():
            engine = RecordingEngine()
            service = StreamService(engine, ServiceConfig(window_size=1000))
            await service.start()
            host, port = service.ingest_address
            await send_shutdown(host, port)
            await asyncio.wait_for(service.wait_stopped(), timeout=10)
            return engine

        assert asyncio.run(scenario()).closed

    def test_engine_failure_fails_fast(self):
        """A RuntimeShardError from the engine stops the whole service
        without any external shutdown request."""

        async def scenario():
            engine = RecordingEngine(fail_after=0)
            service = StreamService(
                engine, ServiceConfig(window_size=1000, micro_batch=5)
            )
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(MAGIC + encode_frame(["a", "b", "c", "d", "e"]))
            writer.write_eof()
            await reader.read()  # connection unwinds cleanly
            writer.close()
            await asyncio.wait_for(service.wait_stopped(), timeout=10)
            return service, engine

        service, engine = asyncio.run(scenario())
        from repro.errors import RuntimeShardError

        assert isinstance(service.failure, RuntimeShardError)
        assert engine.closed, "fail-fast still releases engine resources"
        assert engine.items == [], "no item survives a failing ingest"

    def test_healthz_reports_failure(self):
        from repro.errors import RuntimeShardError

        async def scenario():
            service = StreamService(RecordingEngine(), ServiceConfig(window_size=100))
            await service.start()
            service._record_failure(RuntimeShardError("injected shard failure"))
            status, health = await http_request(*service.http_address, "/healthz")
            await service.stop()
            return status, health

        status, health = asyncio.run(scenario())
        assert status == 503
        assert health["status"] == "failing"
        assert "injected shard failure" in health["error"]

    def test_malformed_traffic_gets_error_ack(self):
        async def scenario():
            engine = RecordingEngine()
            service = StreamService(engine, ServiceConfig(window_size=1000))
            await service.start()
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_line(["ok"]) + b'{"op": "reboot"}\n')
            await writer.drain()
            writer.write_eof()
            ack = decode_payload((await reader.readline()).strip())
            writer.close()
            await service.stop()
            return engine, ack

        engine, ack = asyncio.run(scenario())
        assert "unknown op" in ack["error"]
        assert ack["received"] == 1, "messages before the bad one still count"
        assert engine.items == ["ok"]


class TestHttpApi:
    def test_endpoints(self, trace):
        async def scenario():
            service = service_over_shards()
            await service.start()
            host, port = service.ingest_address
            await replay_trace(trace, host, port, connections=2, batch_size=100)
            http = service.http_address
            health = await http_request(*http, "/healthz")
            stats = await http_request(*http, "/stats")
            engine_stats = await http_request(*http, "/stats?engine=1")
            reports = await http_request(*http, "/reports")
            limited = await http_request(*http, "/reports?limit=2")
            since = await http_request(*http, "/reports?since=6")
            missing = await http_request(*http, "/nope")
            bad_method = await http_request(*http, "/reports", method="POST")
            await service.stop()
            return service, health, stats, engine_stats, reports, limited, since, missing, bad_method

        (service, health, stats, engine_stats, reports,
         limited, since, missing, bad_method) = asyncio.run(scenario())
        direct = direct_reports(trace)

        assert health[0] == 200
        assert health[1]["status"] == "ok"
        assert health[1]["window"] == WINDOWS
        assert health[1]["items_total"] == len(trace)
        # Sharded engines expose their supervision view on /healthz.
        assert health[1]["engine"]["status"] == "ok"
        assert health[1]["engine"]["restarts_total"] == 0
        assert stats[0] == 200
        assert stats[1]["items_total"] == len(trace)
        assert stats[1]["window"] == WINDOWS
        assert stats[1]["reports"] == len(direct)
        assert engine_stats[1]["engine"]["n_shards"] == 2
        assert engine_stats[1]["engine"]["items_routed"] == len(trace)

        assert reports[0] == 200
        assert reports[1]["total"] == len(direct)
        assert [r["item"] for r in reports[1]["reports"]] == [r.item for r in direct]
        assert len(limited[1]["reports"]) == min(2, len(direct))
        assert limited[1]["total"] == len(direct)
        assert all(r["report_window"] >= 6 for r in since[1]["reports"])

        assert missing[0] == 404
        assert bad_method[0] == 405

    def test_item_filter(self, trace):
        async def scenario():
            service = service_over_shards()
            await service.start()
            host, port = service.ingest_address
            await replay_trace(trace, host, port)
            direct = direct_reports(trace)
            item = str(direct[0].item)
            status, body = await http_request(
                *service.http_address, f"/reports?item={item}"
            )
            await service.stop()
            return item, status, body

        item, status, body = asyncio.run(scenario())
        assert status == 200
        assert body["total"] >= 1
        assert all(r["item"] == item or str(r["item"]) == item for r in body["reports"])

    def test_bad_query_parameter(self):
        async def scenario():
            service = StreamService(RecordingEngine(), ServiceConfig(window_size=100))
            await service.start()
            status, body = await http_request(
                *service.http_address, "/reports?since=abc"
            )
            await service.stop()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 400
        assert "bad query parameter" in body["error"]
