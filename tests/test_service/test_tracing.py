"""End-to-end pipeline tracing: one span tree per window boundary.

The acceptance criterion for the tracing tier: a loadgen run against a
publishing primary with one replica yields, for every window boundary,
a single exportable span tree covering ingest → window → flush →
coordinator → shard → publish → replica-apply, with parent/child ids
consistent across process boundaries.  This drives the whole pipeline
in-process (inline sharded engine, real TCP between the tiers) and
pins exactly that, plus the `/trace` and `/slo` read surfaces.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.config import XSketchConfig
from repro.fitting.simplex import SimplexTask
from repro.obs.spans import span_trees
from repro.replica import ReplicaConfig, ReplicaServer
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace
from repro.streams.datasets import make_dataset

from .helpers import http_request

SEED = 23
WINDOWS = 6
WINDOW_SIZE = 300

#: every complete window tree contains these spans, parent to child
PRIMARY_SPANS = {
    "window", "ingest.frame", "window.flush",
    "coordinator.end_window", "shard.end_window", "publish.frame",
}


def traced_engine():
    return ShardedXSketch(
        XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0),
        n_shards=2, seed=SEED, backend="inline",
    )


async def wait_for(predicate, message, timeout=20.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        await asyncio.sleep(0.02)


@pytest.fixture(scope="module")
def traced():
    """Primary (trace on, publishing) + traced replica, driven to
    WINDOWS boundaries; captures every read surface before teardown."""

    async def scenario():
        captured = {}
        service = StreamService(
            traced_engine(),
            ServiceConfig(window_size=WINDOW_SIZE, micro_batch=128,
                          publish_port=0, publish_heartbeat=0.1,
                          trace=True),
        )
        await service.start()
        pub_host, pub_port = service.publish_address
        replica = ReplicaServer(
            ReplicaConfig(pub_host, pub_port, reconnect_seconds=0.1,
                          trace=True)
        )
        await replica.start()
        await replica.wait_synced()

        trace = make_dataset("ip_trace", WINDOWS, WINDOW_SIZE, SEED)
        in_host, in_port = service.ingest_address
        await replay_trace(trace, in_host, in_port, connections=1,
                           batch_size=100)
        await wait_for(lambda: service.publisher.seq >= WINDOWS,
                       "primary to publish every boundary")
        await wait_for(
            lambda: replica.deltas_applied + replica.full_syncs
            >= WINDOWS,
            "replica to apply every boundary",
        )

        p_host, p_port = service.http_address
        r_host, r_port = replica.http_address
        captured["primary_trace"] = await http_request(
            p_host, p_port, "/trace"
        )
        captured["replica_trace"] = await http_request(
            r_host, r_port, "/trace"
        )
        captured["chrome"] = await http_request(
            p_host, p_port, "/trace?format=chrome"
        )
        captured["bad_format"] = await http_request(
            p_host, p_port, "/trace?format=nonsense"
        )
        first_tid = captured["primary_trace"][1]["events"][0]["trace_id"]
        captured["filtered"] = await http_request(
            p_host, p_port, f"/trace?trace_id={first_tid}"
        )
        captured["filtered_tid"] = first_tid
        captured["primary_slo"] = await http_request(p_host, p_port, "/slo")
        captured["replica_slo"] = await http_request(r_host, r_port, "/slo")
        captured["primary_healthz"] = await http_request(
            p_host, p_port, "/healthz"
        )
        captured["replica_healthz"] = await http_request(
            r_host, r_port, "/healthz"
        )
        captured["primary_metrics"] = await http_request(
            p_host, p_port, "/stats"
        )
        status, _ = await http_request(p_host, p_port, "/trace",
                                       method="POST")
        captured["post_trace_status"] = status
        await replica.stop()
        await service.stop()
        return captured

    return asyncio.run(scenario())


def all_events(captured):
    return (captured["primary_trace"][1]["events"]
            + captured["replica_trace"][1]["events"])


class TestSpanTreeCompleteness:
    def test_one_complete_tree_per_window_boundary(self, traced):
        trees = span_trees(all_events(traced))
        complete = 0
        for tree in trees.values():
            names = set()

            def collect(node):
                names.add(node["span"]["name"])
                for child in node["children"]:
                    collect(child)

            for root in tree["roots"]:
                collect(root)
            if PRIMARY_SPANS | {"replica.apply"} <= names:
                complete += 1
        assert complete == WINDOWS

    def test_every_tree_has_exactly_one_root(self, traced):
        trees = span_trees(all_events(traced))
        for tree in trees.values():
            assert len(tree["roots"]) == 1
            assert tree["roots"][0]["span"]["name"] == "window"
            assert tree["orphans"] == []

    def test_parent_ids_consistent_across_processes(self, traced):
        events = all_events(traced)
        by_id = {(e["trace_id"], e["span_id"]) for e in events}
        for event in events:
            if event["parent_id"] is not None:
                assert (event["trace_id"], event["parent_id"]) in by_id

    def test_shard_spans_cover_every_shard(self, traced):
        events = traced["primary_trace"][1]["events"]
        shard_spans = [e for e in events if e["name"] == "shard.end_window"]
        assert {e["attrs"]["shard"] for e in shard_spans} == {0, 1}

    def test_replica_apply_parents_are_publish_frames(self, traced):
        publish = {
            (e["trace_id"], e["span_id"])
            for e in traced["primary_trace"][1]["events"]
            if e["name"] == "publish.frame"
        }
        applies = [e for e in traced["replica_trace"][1]["events"]
                   if e["name"] == "replica.apply"]
        assert len(applies) >= WINDOWS - 1  # first boundary may full-sync
        for event in applies:
            assert (event["trace_id"], event["parent_id"]) in publish
            assert event["proc"] == "replica"


class TestTraceEndpoint:
    def test_spans_payload_shape(self, traced):
        status, payload = traced["primary_trace"]
        assert status == 200
        assert set(payload) == {"recorded", "dropped", "events"}
        assert payload["recorded"] >= len(payload["events"])

    def test_chrome_format(self, traced):
        status, doc = traced["chrome"]
        assert status == 200
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        json.dumps(doc)  # round-trippable

    def test_trace_id_filter(self, traced):
        status, payload = traced["filtered"]
        assert status == 200
        assert payload["events"]
        assert {e["trace_id"] for e in payload["events"]} == \
            {traced["filtered_tid"]}

    def test_bad_format_is_400(self, traced):
        status, payload = traced["bad_format"]
        assert status == 400
        assert "format" in payload["error"]

    def test_post_is_405(self, traced):
        assert traced["post_trace_status"] == 405

    def test_trace_disabled_is_400(self):
        async def scenario():
            service = StreamService(
                traced_engine(), ServiceConfig(window_size=WINDOW_SIZE)
            )
            await service.start()
            host, port = service.http_address
            result = await http_request(host, port, "/trace")
            await service.stop()
            return result

        status, payload = asyncio.run(scenario())
        assert status == 400
        assert "--trace" in payload["error"]


class TestSloEndpoint:
    def test_primary_objectives_reported(self, traced):
        status, report = traced["primary_slo"]
        assert status == 200
        names = [o["name"] for o in report["objectives"]]
        assert names == ["ingest-latency", "window-latency", "item-loss"]
        for objective in report["objectives"]:
            assert set(objective["windows"]) == {"60", "300", "900"}
            for window in objective["windows"].values():
                assert window["burn_rate"] >= 0.0

    def test_replica_objectives_reported(self, traced):
        status, report = traced["replica_slo"]
        assert status == 200
        names = [o["name"] for o in report["objectives"]]
        assert names == ["replica-staleness", "replica-connected"]

    def test_healthz_carries_slo_summary(self, traced):
        for key in ("primary_healthz", "replica_healthz"):
            status, body = traced[key]
            assert status == 200
            assert set(body["slo"]) == {"breaching", "worst"}

    def test_healthy_run_is_not_breaching(self, traced):
        _, body = traced["replica_healthz"]
        assert body["slo"]["breaching"] == []
