"""Load-generator unit tests: batch planning and share distribution."""

import pytest

from repro.errors import ServiceError
from repro.service.loadgen import plan_batches, replay_trace, run_loadgen
from repro.streams.datasets import make_dataset

TRACE = make_dataset("ip_trace", 4, 100, 3)


class TestPlanBatches:
    def test_preserves_stream_order(self):
        plan = plan_batches(TRACE, batch_size=30, ordered=True)
        replayed = [item for _, items in plan for item in items]
        assert replayed == list(TRACE.items())

    def test_sequence_numbers_are_dense(self):
        plan = plan_batches(TRACE, batch_size=30, ordered=True)
        assert [seq for seq, _ in plan] == list(range(len(plan)))

    def test_unordered_has_no_sequence(self):
        plan = plan_batches(TRACE, batch_size=30, ordered=False)
        assert all(seq is None for seq, _ in plan)

    def test_batches_never_straddle_windows(self):
        # window_size=100 with batch_size=30 -> 30/30/30/10 per window
        plan = plan_batches(TRACE, batch_size=30, ordered=True)
        assert [len(items) for _, items in plan[:4]] == [30, 30, 30, 10]
        assert len(plan) == 16

    def test_round_robin_shares_recombine(self):
        """Splitting plan[i::n] over n connections loses nothing."""
        plan = plan_batches(TRACE, batch_size=25, ordered=True)
        for connections in (1, 2, 3, 5):
            shares = [plan[index::connections] for index in range(connections)]
            recombined = sorted(
                (entry for share in shares for entry in share),
                key=lambda entry: entry[0],
            )
            assert recombined == plan


class TestReplayValidation:
    def test_rejects_bad_connection_count(self):
        with pytest.raises(ServiceError, match="connections"):
            run_loadgen(TRACE, "127.0.0.1", 1, connections=0)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ServiceError, match="protocol"):
            run_loadgen(TRACE, "127.0.0.1", 1, protocol="pigeon")

    def test_replay_trace_is_a_coroutine(self):
        assert replay_trace.__code__.co_flags & 0x80  # CO_COROUTINE
