"""The /metrics exposition endpoint.

Acceptance criterion: the Stage-1 promotion and Stage-2 election
counters scraped from ``/metrics`` must *exactly* match ground truth
derived from an offline run of the same deterministic trace.
"""

import asyncio

import pytest

from repro.config import XSketchConfig
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.obs import Recorder, TraceRing, parse_text, validate_text
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace
from repro.streams.datasets import make_dataset

SEED = 42
WINDOWS = 10
WINDOW_SIZE = 400


@pytest.fixture(scope="module")
def trace():
    return make_dataset("ip_trace", WINDOWS, WINDOW_SIZE, SEED)


def sketch_config():
    return XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0)


async def http_get_raw(host, port, path, method="GET"):
    """One HTTP/1.1 exchange returning (status, content_type, body text)."""
    reader, writer = await asyncio.open_connection(host, port)
    request = f"{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: 0\r\n\r\n"
    writer.write(request.encode())
    await writer.drain()
    response = await reader.read()
    writer.close()
    head, _, body = response.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    content_type = ""
    for line in lines[1:]:
        if line.lower().startswith("content-type:"):
            content_type = line.split(":", 1)[1].strip()
    return status, content_type, body.decode()


def offline_ground_truth(trace):
    """The same trace through the same engine config, in process."""
    sketch = XSketch(sketch_config(), seed=SEED)
    for window in trace.windows():
        sketch.run_window(window)
    return sketch.stats


class TestMetricsEndpoint:
    def scrape(self, trace, engine):
        async def scenario():
            service = StreamService(
                engine, ServiceConfig(window_size=WINDOW_SIZE, micro_batch=256)
            )
            await service.start()
            host, port = service.ingest_address
            await replay_trace(trace, host, port, connections=1, batch_size=100)
            result = await http_get_raw(*service.http_address, "/metrics")
            await service.stop()
            return result

        return asyncio.run(scenario())

    def test_counters_match_offline_ground_truth(self, trace):
        engine = XSketch(sketch_config(), seed=SEED, recorder=Recorder(trace=TraceRing()))
        status, content_type, body = self.scrape(trace, engine)
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        samples = parse_text(body)
        truth = offline_ground_truth(trace)
        assert samples["xsketch_stage1_promotions_total"] == truth.promotions
        assert samples["xsketch_stage2_elections_won_total"] == truth.replacements_won
        assert samples["xsketch_stage2_elections_lost_total"] == truth.replacements_lost
        assert samples["xsketch_reports_total"] == truth.reports
        assert truth.promotions > 0, "fixture trace must exercise promotions"
        assert samples["service_items_ingested_total"] == len(trace)
        assert samples["service_items_dropped_total"] == 0

    def test_exposition_is_valid(self, trace):
        engine = XSketch(sketch_config(), seed=SEED, recorder=Recorder())
        _, _, body = self.scrape(trace, engine)
        families, samples = validate_text(body)
        assert families > 10
        assert samples > families

    def test_sharded_engine_aggregates_across_shards(self, trace):
        engine = ShardedXSketch(
            sketch_config(), n_shards=2, seed=SEED, backend="inline", observability=True
        )
        status, _, body = self.scrape(trace, engine)
        assert status == 200
        samples = parse_text(body)
        # key routing preserves per-item streams, so decision totals match
        # the unsharded ground truth exactly
        truth = offline_ground_truth(trace)
        assert samples["xsketch_stage1_promotions_total"] == truth.promotions
        assert samples["xsketch_windows_total"] == 2 * WINDOWS
        assert samples["runtime_windows_total"] == WINDOWS
        assert samples["runtime_items_routed_total"] == len(trace)

    def test_post_is_rejected(self, trace):
        async def scenario():
            service = StreamService(
                XSketch(sketch_config(), seed=SEED),
                ServiceConfig(window_size=WINDOW_SIZE),
            )
            await service.start()
            result = await http_get_raw(*service.http_address, "/metrics", method="POST")
            await service.stop()
            return result

        status, content_type, _ = asyncio.run(scenario())
        assert status == 405
        assert content_type == "application/json"

    def test_scrape_works_without_observability(self, trace):
        """A plain engine still exposes its exact counters and the
        service-level metrics; histograms are simply absent."""
        engine = XSketch(sketch_config(), seed=SEED)
        status, _, body = self.scrape(trace, engine)
        assert status == 200
        samples = parse_text(body)
        assert samples["xsketch_stage1_promotions_total"] > 0
        assert "xsketch_stage1_potential_count" not in samples
        assert "service_batch_items_count" in samples
