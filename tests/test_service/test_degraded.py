"""Graceful degradation: the service survives engine trouble.

Two layers are under test.  ``on_engine_error="degrade"`` keeps the
server up after an *unrecoverable* engine failure, serving last-good
snapshots and a 503 ``/healthz``.  Below that, a *supervised* sharded
engine (process backend) heals worker crashes itself: the service only
ever sees a transient ``"degraded"`` health status and never records a
failure — the end-to-end test SIGKILLs a real worker under a running
service and watches ``/healthz`` go degraded, then ok.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.config import XSketchConfig
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService

from tests.test_service.helpers import RecordingEngine, http_request

SEED = 42
WINDOW_SIZE = 400


def sketch_config():
    return XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0)


async def http_get_text(host, port, path):
    """One HTTP/1.1 exchange returning (status, body text) — for routes
    like /metrics whose body is not JSON."""
    reader, writer = await asyncio.open_connection(host, port)
    request = f"GET {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: 0\r\n\r\n"
    writer.write(request.encode())
    await writer.drain()
    response = await reader.read()
    writer.close()
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.decode().split("\r\n")[0].split(" ", 2)[1])
    return status, body.decode()


class HealthyEngine(RecordingEngine):
    """Stub engine with a controllable health() view."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.health_status = "ok"

    def health(self):
        return {"status": self.health_status, "restarts_total": 0}


class TestConfig:
    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="on_engine_error"):
            ServiceConfig(on_engine_error="retry")


class TestDegradeMode:
    def test_engine_failure_keeps_server_up(self):
        """degrade policy: a failing engine turns /healthz 503 but the
        server keeps answering /reports and /stats from the last-good
        snapshot instead of shutting down."""

        async def scenario():
            engine = RecordingEngine(fail_after=64)
            service = StreamService(
                engine,
                ServiceConfig(
                    window_size=64, micro_batch=16, on_engine_error="degrade"
                ),
            )
            await service.start()
            http_host, http_port = service.http_address
            host, port = service.ingest_address
            reader, writer = await asyncio.open_connection(host, port)
            # First window succeeds and publishes a snapshot; the second
            # trips fail_after inside the engine.
            from repro.service.protocol import encode_line

            writer.write(encode_line({"items": list(range(64))}))
            await writer.drain()
            await asyncio.sleep(0.2)
            writer.write(encode_line({"items": list(range(64))}))
            await writer.drain()
            writer.write_eof()
            await reader.read()
            writer.close()
            for _ in range(100):
                if service.failure is not None:
                    break
                await asyncio.sleep(0.05)
            assert service.failure is not None
            # Server must still be up and answering.
            health_status, health = await http_request(
                http_host, http_port, "/healthz"
            )
            reports_status, reports = await http_request(
                http_host, http_port, "/reports"
            )
            stats_status, stats = await http_request(http_host, http_port, "/stats")
            await service.stop()
            return health_status, health, reports_status, reports, stats_status

        health_status, health, reports_status, reports, stats_status = asyncio.run(
            scenario()
        )
        assert health_status == 503
        assert health["status"] == "failing"
        assert health["on_engine_error"] == "degrade"
        assert "injected shard failure" in health["error"]
        assert reports_status == 200
        assert reports["window"] == 1
        assert stats_status == 200

    def test_shutdown_mode_still_fails_fast(self):
        """The historical default is untouched: shutdown policy stops
        the service on the first engine error."""

        async def scenario():
            engine = RecordingEngine(fail_after=0)
            service = StreamService(
                engine, ServiceConfig(window_size=64, micro_batch=16)
            )
            await service.start()
            host, port = service.ingest_address
            from repro.service.protocol import encode_line

            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_line({"items": list(range(16))}))
            await writer.drain()
            writer.write_eof()
            await reader.read()
            writer.close()
            await asyncio.wait_for(service.wait_stopped(), timeout=10)
            return service

        service = asyncio.run(scenario())
        assert service.config.on_engine_error == "shutdown"
        assert service.failure is not None


class TestEngineHealthPassthrough:
    def test_healthz_carries_engine_health(self):
        async def scenario():
            engine = HealthyEngine()
            service = StreamService(engine, ServiceConfig(window_size=64))
            await service.start()
            host, port = service.http_address
            ok_status, ok_body = await http_request(host, port, "/healthz")
            engine.health_status = "degraded"
            deg_status, deg_body = await http_request(host, port, "/healthz")
            stats_status, stats_body = await http_request(host, port, "/stats")
            await service.stop()
            return ok_status, ok_body, deg_status, deg_body, stats_body

        ok_status, ok_body, deg_status, deg_body, stats_body = asyncio.run(scenario())
        assert ok_status == 200
        assert ok_body["status"] == "ok"
        assert ok_body["engine"]["status"] == "ok"
        # Degraded engine: still HTTP 200 (the service itself is fine,
        # load balancers should not evict it) but visibly degraded.
        assert deg_status == 200
        assert deg_body["status"] == "degraded"
        assert deg_body["engine"]["status"] == "degraded"
        assert stats_body["engine_health"]["status"] == "degraded"


class TestSupervisedRecoveryEndToEnd:
    def test_worker_kill_degrades_then_heals(self):
        """SIGKILL a real shard worker under a running service: the
        service never fails, /healthz dips to degraded, and the next
        window flush triggers a supervised restart back to ok with
        shard_restarts_total visible in /metrics."""

        async def scenario():
            engine = ShardedXSketch(
                sketch_config(), n_shards=2, seed=SEED, backend="process",
                reply_timeout=60.0,
            )
            service = StreamService(
                engine,
                ServiceConfig(
                    window_size=WINDOW_SIZE,
                    micro_batch=128,
                    on_engine_error="degrade",
                ),
            )
            await service.start()
            http_host, http_port = service.http_address
            items = [f"item-{i % 50}" for i in range(WINDOW_SIZE)]
            await service.manager.submit(items)
            status, body = await http_request(http_host, http_port, "/healthz")
            assert status == 200 and body["status"] == "ok"
            victim_pid = body["engine"]["worker_pids"][0]
            os.kill(victim_pid, signal.SIGKILL)
            for _ in range(200):
                status, body = await http_request(http_host, http_port, "/healthz")
                if body["status"] == "degraded":
                    break
                await asyncio.sleep(0.05)
            degraded_seen = body["status"] == "degraded"
            assert body["engine"]["dead_shards"] == [0]
            # The next window flush hits the dead shard and supervision
            # restarts it; after that the service is healthy again.
            with pytest.warns(RuntimeWarning, match="restarted shard 0"):
                await service.manager.submit(items)
            status, healed = await http_request(http_host, http_port, "/healthz")
            metrics_status, metrics = await http_get_text(
                http_host, http_port, "/metrics"
            )
            assert metrics_status == 200
            await service.stop()
            assert service.failure is None
            return degraded_seen, status, healed, metrics

        degraded_seen, status, healed, metrics = asyncio.run(scenario())
        assert degraded_seen
        assert status == 200
        assert healed["status"] == "ok"
        assert healed["engine"]["restarts_total"] == 1
        # The worker died idle (blocked in get(), holding the queue's
        # reader lock); everything dispatched after the kill is salvaged
        # through the raw-pipe drain, so recovery is lossless.
        assert healed["engine"]["items_lost_estimate"] == 0
        assert "runtime_shard_restarts_total 1" in metrics
        assert "runtime_items_lost_estimate 0" in metrics
