"""Wire-protocol unit tests: framing, JSONL, message validation."""

import asyncio
import struct

import pytest

from repro.errors import ServiceError
from repro.service.protocol import (
    MAGIC,
    batch_message,
    decode_payload,
    encode_frame,
    encode_line,
    iter_window_batches,
    parse_message,
    read_frame,
    read_lines,
)


def feed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_frame_round_trip(self):
        message = {"items": ["a", "b", 3], "seq": 9}
        frame = encode_frame(message)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == message

    def test_read_frame_sequence(self):
        frames = encode_frame(["a"]) + encode_frame({"op": "flush"})

        async def scenario():
            reader = feed_reader(frames)
            first = await read_frame(reader, 1 << 20)
            second = await read_frame(reader, 1 << 20)
            third = await read_frame(reader, 1 << 20)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert decode_payload(first) == ["a"]
        assert decode_payload(second) == {"op": "flush"}
        assert third is None

    def test_oversized_frame_rejected(self):
        async def scenario():
            reader = feed_reader(encode_frame(["x" * 100]))
            await read_frame(reader, max_bytes=10)

        with pytest.raises(ServiceError, match="exceeds limit"):
            asyncio.run(scenario())

    def test_truncated_frame_rejected(self):
        async def scenario():
            reader = feed_reader(struct.pack(">I", 50) + b"short")
            await read_frame(reader, 1 << 20)

        with pytest.raises(ServiceError, match="truncated frame payload"):
            asyncio.run(scenario())

    def test_truncated_header_rejected(self):
        async def scenario():
            reader = feed_reader(b"\x00\x00")
            await read_frame(reader, 1 << 20)

        with pytest.raises(ServiceError, match="truncated frame header"):
            asyncio.run(scenario())


class TestJsonl:
    def test_lines_with_initial_chunk(self):
        """The 4 magic-probe bytes are replayed into the line stream."""
        data = encode_line(["a", "b"]) + encode_line({"op": "flush"})

        async def scenario():
            reader = feed_reader(data[4:])
            return [line async for line in read_lines(reader, data[:4], 1 << 20)]

        lines = asyncio.run(scenario())
        assert [decode_payload(line) for line in lines] == [
            ["a", "b"],
            {"op": "flush"},
        ]

    def test_unterminated_tail_line_is_yielded(self):
        async def scenario():
            reader = feed_reader(b'["tail"]')
            return [line async for line in read_lines(reader, b"", 1 << 20)]

        assert [decode_payload(l) for l in asyncio.run(scenario())] == [["tail"]]


class TestMessages:
    def test_bare_list_is_a_batch(self):
        assert parse_message(["a", 2]) == ("batch", ["a", 2], None)

    def test_sequenced_batch(self):
        assert parse_message({"items": ["a"], "seq": 4}) == ("batch", ["a"], 4)

    def test_batch_message_shapes(self):
        assert batch_message(["a"]) == ["a"]
        assert batch_message(["a"], seq=0) == {"items": ["a"], "seq": 0}

    def test_ops(self):
        assert parse_message({"op": "flush"}) == ("flush",)
        assert parse_message({"op": "shutdown"}) == ("shutdown",)

    @pytest.mark.parametrize(
        "bad",
        [
            {"op": "reboot"},
            {"items": "abc"},
            {"items": [1.5]},
            {"items": [None]},
            {"items": ["a"], "seq": -1},
            {"items": ["a"], "seq": "x"},
            "just a string",
            42,
        ],
    )
    def test_malformed_messages_rejected(self, bad):
        with pytest.raises(ServiceError):
            parse_message(bad)

    def test_malformed_json_rejected(self):
        with pytest.raises(ServiceError, match="malformed JSON"):
            decode_payload(b"{nope")

    def test_magic_is_not_valid_json(self):
        """The framed-mode preamble can never be confused with a JSONL line."""
        with pytest.raises(ServiceError):
            decode_payload(MAGIC)


class TestWindowBatches:
    def test_batches_never_straddle(self):
        window = list(range(10))
        batches = list(iter_window_batches(window, 4))
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_bad_batch_size(self):
        with pytest.raises(ServiceError):
            list(iter_window_batches([1], 0))
