"""Checkpoint round-trip through the service's ``/checkpoint`` endpoint.

Satellite acceptance: run a *process*-backend sharded engine behind the
service, checkpoint it over HTTP mid-stream, restore the checkpoint
into an *inline* engine, and get identical reports — the service layer
adds nothing and loses nothing across the backend swap.
"""

import asyncio

import pytest

from repro.config import XSketchConfig
from repro.fitting.simplex import SimplexTask
from repro.runtime.sharded import ShardedXSketch
from repro.service import ServiceConfig, StreamService
from repro.service.loadgen import replay_trace
from repro.streams.datasets import make_dataset

from tests.test_service.helpers import http_request

SEED = 11
WINDOWS = 8
WINDOW_SIZE = 400


def sketch_config():
    return XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0)


@pytest.mark.slow
class TestServiceCheckpoint:
    def test_process_checkpoint_restores_inline(self, tmp_path):
        """process-backend service -> POST /checkpoint -> inline restore."""
        trace = make_dataset("ip_trace", WINDOWS, WINDOW_SIZE, SEED)
        ckpt = tmp_path / "service-ckpt"

        async def scenario():
            engine = ShardedXSketch(
                sketch_config(), n_shards=2, seed=SEED, backend="process"
            )
            service = StreamService(
                engine, ServiceConfig(window_size=WINDOW_SIZE, micro_batch=200)
            )
            await service.start()
            host, port = service.ingest_address
            # Exact multiple of window_size, so the checkpoint lands on a
            # window boundary with no buffered items to refuse.
            await replay_trace(trace, host, port, connections=2, batch_size=100)
            status, body = await http_request(
                *service.http_address, f"/checkpoint?dir={ckpt}", method="POST"
            )
            served = list(service.manager.snapshot.reports)
            await service.stop()
            return status, body, served

        status, body, served = asyncio.run(scenario())
        assert status == 200
        assert body["window"] == WINDOWS
        assert body["directory"] == str(ckpt)

        restored = ShardedXSketch.restore(ckpt, backend="inline")
        try:
            assert restored.window == WINDOWS
            restored_reports = restored.report()
        finally:
            restored.close()
        assert restored_reports == served

        # ...and the restored engine equals a direct run of the same trace.
        direct = ShardedXSketch(
            sketch_config(), n_shards=2, seed=SEED, backend="inline"
        )
        for window in trace.windows():
            direct.run_window(window)
        direct_reports = direct.report()
        direct.close()
        assert restored_reports == direct_reports

    def test_checkpoint_body_and_default_errors(self, tmp_path):
        """Directory can come from the JSON body; none configured -> 400."""

        async def scenario():
            engine = ShardedXSketch(
                sketch_config(), n_shards=1, seed=SEED, backend="inline"
            )
            service = StreamService(engine, ServiceConfig(window_size=100))
            await service.start()
            http = service.http_address
            no_dir = await http_request(*http, "/checkpoint", method="POST")
            body_dir = await http_request(
                *http,
                "/checkpoint",
                method="POST",
                body={"directory": str(tmp_path / "from-body")},
            )
            await service.stop()
            return no_dir, body_dir

        no_dir, body_dir = asyncio.run(scenario())
        assert no_dir[0] == 400
        assert "no checkpoint directory" in no_dir[1]["error"]
        assert body_dir[0] == 200
        assert (tmp_path / "from-body").is_dir()

    def test_final_checkpoint_on_drain(self, tmp_path):
        """checkpoint_dir in the config -> stop() writes a final checkpoint."""
        trace = make_dataset("ip_trace", 2, 100, SEED)
        ckpt = tmp_path / "final"

        async def scenario():
            engine = ShardedXSketch(
                sketch_config(), n_shards=2, seed=SEED, backend="inline"
            )
            service = StreamService(
                engine,
                ServiceConfig(
                    window_size=100, micro_batch=50, checkpoint_dir=str(ckpt)
                ),
            )
            await service.start()
            host, port = service.ingest_address
            await replay_trace(trace, host, port)
            await service.stop()

        asyncio.run(scenario())
        restored = ShardedXSketch.restore(ckpt, backend="inline")
        try:
            assert restored.window == 2
            assert restored.stats().items_routed == len(trace)
        finally:
            restored.close()
