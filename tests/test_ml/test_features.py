"""Unit tests for simplex feature extraction."""

import pytest

from repro.core.reports import SimplexReport
from repro.ml.features import FEATURE_NAMES, extract_features, feature_matrix, report_features


def _report(item="x", coeffs=(4.0, 3.0), lasting=6, mse=0.1, window=9):
    return SimplexReport(
        item=item,
        start_window=window - 6,
        report_window=window,
        lasting_time=lasting,
        coefficients=coeffs,
        mse=mse,
    )


class TestReportFeatures:
    def test_linear_report(self):
        row = report_features(_report(), p=7)
        features = row.as_dict()
        assert features["level"] == 4.0
        assert features["slope"] == 3.0
        assert features["curvature"] == 0.0
        assert features["mse"] == pytest.approx(0.1)
        assert features["lasting_time"] == 6.0
        assert features["next_prediction"] == pytest.approx(4.0 + 3.0 * 7)

    def test_constant_report_pads_slope(self):
        row = report_features(_report(coeffs=(5.0,)), p=7)
        assert row.as_dict()["slope"] == 0.0
        assert row.as_dict()["next_prediction"] == pytest.approx(5.0)

    def test_quadratic_report(self):
        row = report_features(_report(coeffs=(2.0, 1.0, -0.5)), p=7)
        features = row.as_dict()
        assert features["curvature"] == -0.5
        assert features["next_prediction"] == pytest.approx(2 + 7 - 0.5 * 49)


class TestFeatureMatrix:
    def test_extract_and_select(self):
        rows = extract_features([_report(), _report(item="y", coeffs=(1.0, -2.0))], p=7)
        matrix = feature_matrix(rows, columns=("slope", "lasting_time"))
        assert matrix == [[3.0, 6.0], [-2.0, 6.0]]

    def test_default_columns_complete(self):
        rows = extract_features([_report()], p=7)
        matrix = feature_matrix(rows)
        assert len(matrix[0]) == len(FEATURE_NAMES)

    def test_unknown_column(self):
        rows = extract_features([_report()], p=7)
        with pytest.raises(KeyError):
            feature_matrix(rows, columns=("bogus",))

    def test_features_feed_a_regressor(self):
        """End-to-end: slope features predict next-window frequency."""
        from repro.ml.linreg import LinearRegression

        rows = []
        truths = []
        for slope in (1.5, 2.0, 3.0, 4.0, -2.0, -3.5):
            report = _report(coeffs=(10.0, slope))
            rows.append(report_features(report, p=7))
            truths.append(10.0 + slope * 7)  # the true next value
        matrix = feature_matrix(rows, columns=("level", "slope"))
        model = LinearRegression().fit(matrix, truths)
        prediction = model.predict([[10.0, 5.0]])[0]
        assert prediction == pytest.approx(10.0 + 5.0 * 7, abs=1e-6)
