"""Unit tests for the from-scratch linear regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FittingError
from repro.ml.linreg import LinearRegression, LinearRegressionModel


class TestLinearRegression:
    def test_recovers_exact_line(self):
        model = LinearRegression().fit([[0.0], [1.0], [2.0]], [1.0, 3.0, 5.0])
        assert model.intercept == pytest.approx(1.0)
        assert model.coefficients[0] == pytest.approx(2.0)

    def test_multivariate(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(50, 3))
        beta = np.array([2.0, -1.0, 0.5])
        y = x @ beta + 4.0
        model = LinearRegression().fit(x.tolist(), y.tolist())
        assert np.allclose(model.coefficients, beta, atol=1e-8)
        assert model.intercept == pytest.approx(4.0)

    def test_no_intercept(self):
        model = LinearRegression(fit_intercept=False).fit([[1.0], [2.0]], [2.0, 4.0])
        assert model.intercept == 0.0
        assert model.coefficients[0] == pytest.approx(2.0)

    def test_singular_design_falls_back_to_ridge(self):
        # duplicate feature column -> singular gram matrix
        x = [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]
        model = LinearRegression().fit(x, [2.0, 4.0, 6.0])
        pred = model.predict([[4.0, 4.0]])[0]
        assert pred == pytest.approx(8.0, rel=1e-3)

    def test_predict_before_fit_raises(self):
        with pytest.raises(FittingError):
            LinearRegression().predict([[1.0]])

    def test_empty_raises(self):
        with pytest.raises(FittingError):
            LinearRegression().fit([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(FittingError):
            LinearRegression().fit([[1.0]], [1.0, 2.0])

    @settings(max_examples=30)
    @given(
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
    )
    def test_exact_on_any_line(self, intercept, slope):
        xs = [[float(i)] for i in range(6)]
        ys = [intercept + slope * i for i in range(6)]
        model = LinearRegression().fit(xs, ys)
        assert model.predict([[10.0]])[0] == pytest.approx(intercept + slope * 10, abs=1e-6)


class TestLinearRegressionModel:
    def test_predict_next_on_trend(self):
        series = [2.0 + 3.0 * i for i in range(10)]
        assert LinearRegressionModel().predict_next(series) == pytest.approx(32.0)

    def test_needs_two_points(self):
        with pytest.raises(FittingError):
            LinearRegressionModel().predict_next([5.0])
