"""Unit tests for the from-scratch ARIMA."""

import numpy as np
import pytest

from repro.errors import FittingError
from repro.ml.arima import ArimaModel, arima_forecast, fit_arima


class TestFitArima:
    def test_linear_trend_forecast(self):
        """ARIMA(·,1,·) handles a deterministic trend exactly."""
        series = [2.0 + 3.0 * i for i in range(30)]
        fit = fit_arima(series, order=(2, 1, 1))
        forecast = arima_forecast(fit, series, steps=1)
        assert forecast[0] == pytest.approx(92.0, abs=0.5)

    def test_multi_step_trend(self):
        series = [10.0 + 2.0 * i for i in range(30)]
        fit = fit_arima(series, order=(1, 1, 0))
        forecasts = arima_forecast(fit, series, steps=3)
        assert forecasts == pytest.approx([70.0, 72.0, 74.0], abs=1.0)

    def test_ar1_process_coefficient_recovered(self):
        rng = np.random.default_rng(7)
        phi = 0.6
        series = [0.0]
        for _ in range(400):
            series.append(phi * series[-1] + rng.normal(0, 1))
        fit = fit_arima(series, order=(1, 0, 0))
        assert fit.ar_coefficients[0] == pytest.approx(phi, abs=0.12)

    def test_too_short_raises(self):
        with pytest.raises(FittingError):
            fit_arima([1.0, 2.0, 3.0], order=(2, 1, 1))

    def test_invalid_order(self):
        with pytest.raises(FittingError):
            fit_arima(list(range(30)), order=(-1, 0, 0))

    def test_forecast_steps_validated(self):
        series = [float(i) for i in range(30)]
        fit = fit_arima(series, order=(1, 1, 0))
        with pytest.raises(FittingError):
            arima_forecast(fit, series, steps=0)


class TestArimaModel:
    def test_trend(self):
        series = [5.0 + 4.0 * i for i in range(25)]
        assert ArimaModel().predict_next(series) == pytest.approx(105.0, abs=1.0)

    def test_constant_series_falls_back_to_mean(self):
        assert ArimaModel().predict_next([7.0] * 20) == pytest.approx(7.0)

    def test_short_series_falls_back_to_mean(self):
        assert ArimaModel().predict_next([4.0, 6.0]) == pytest.approx(5.0)

    def test_empty_series(self):
        assert ArimaModel().predict_next([]) == 0.0

    def test_noisy_trend_reasonable(self):
        rng = np.random.default_rng(1)
        series = [10 + 2 * i + float(rng.normal(0, 0.5)) for i in range(30)]
        prediction = ArimaModel().predict_next(series)
        assert 60 <= prediction <= 80
