"""Unit tests for Holt's linear smoothing."""

import pytest

from repro.errors import ConfigurationError, FittingError
from repro.ml.holt import HoltModel, fit_holt


class TestFitHolt:
    def test_exact_on_linear_trend(self):
        series = [4.0 + 2.0 * i for i in range(20)]
        fit = fit_holt(series)
        assert fit.forecast(1)[0] == pytest.approx(4.0 + 2.0 * 20, abs=0.5)

    def test_multi_step_forecast(self):
        series = [10.0 + 3.0 * i for i in range(15)]
        fit = fit_holt(series)
        one, two, three = fit.forecast(3)
        assert two - one == pytest.approx(three - two)  # constant trend

    def test_constant_series(self):
        fit = fit_holt([5.0] * 10)
        assert fit.forecast(1)[0] == pytest.approx(5.0, abs=1e-6)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            fit_holt([1.0, 2.0], alpha=0.0)
        with pytest.raises(ConfigurationError):
            fit_holt([1.0, 2.0], beta=1.5)

    def test_too_short(self):
        with pytest.raises(FittingError):
            fit_holt([1.0])

    def test_forecast_steps_validated(self):
        fit = fit_holt([1.0, 2.0, 3.0])
        with pytest.raises(FittingError):
            fit.forecast(0)


class TestHoltModel:
    def test_trend(self):
        series = [2.0 + 3.0 * i for i in range(12)]
        assert HoltModel().predict_next(series) == pytest.approx(38.0, abs=1.0)

    def test_short_series_fallbacks(self):
        assert HoltModel().predict_next([]) == 0.0
        assert HoltModel().predict_next([7.0]) == 7.0

    def test_adapts_to_trend_change(self):
        """Holt should track a recent trend better than global linreg."""
        from repro.ml.linreg import LinearRegressionModel

        series = [10.0] * 15 + [10.0 + 4.0 * i for i in range(1, 11)]
        truth = 10.0 + 4.0 * 11
        holt_error = abs(HoltModel().predict_next(series) - truth)
        linreg_error = abs(LinearRegressionModel().predict_next(series) - truth)
        assert holt_error < linreg_error
