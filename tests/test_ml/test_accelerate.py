"""Integration tests for the Section-VI ML comparison pipeline."""

import pytest

from repro.fitting.simplex import SimplexTask
from repro.ml.accelerate import run_ml_comparison
from repro.ml.evaluation import prediction_accuracy
from repro.streams.datasets import make_dataset


class TestPredictionAccuracy:
    def test_all_within_tolerance(self):
        assert prediction_accuracy([10, 20], [11, 19]) == 1.0

    def test_absolute_floor(self):
        # small truths use the absolute tolerance
        assert prediction_accuracy([1.0], [2.5]) == 1.0
        assert prediction_accuracy([1.0], [4.0]) == 0.0

    def test_relative_band(self):
        assert prediction_accuracy([100.0], [125.0]) == 1.0
        assert prediction_accuracy([100.0], [140.0]) == 0.0

    def test_empty(self):
        assert prediction_accuracy([], []) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            prediction_accuracy([1.0], [])


class TestRunMLComparison:
    @pytest.fixture(scope="class")
    def result(self):
        trace = make_dataset("ip_trace", n_windows=24, window_size=1200, seed=11)
        return run_ml_comparison(
            trace, SimplexTask.paper_default(1), memory_kb=40, seed=4, n_eval_windows=3
        )

    def test_produces_tasks(self, result):
        assert result.n_tasks > 0
        assert result.n_eval_windows > 0
        assert result.n_model_predictions > result.n_tasks

    def test_xsketch_accuracy_reasonable(self, result):
        assert result.xsketch_accuracy >= 0.5

    def test_model_times_positive(self, result):
        assert result.xsketch_seconds > 0
        assert result.linreg_seconds > 0
        assert result.arima_seconds > 0

    def test_arima_slowest(self, result):
        """The paper's key ordering: the per-item time-series model costs
        far more than the sketch pass."""
        assert result.arima_seconds > result.xsketch_seconds
        assert result.speedup_over_arima() > 1.0
