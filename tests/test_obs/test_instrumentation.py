"""Algorithm instrumentation: observe everything, perturb nothing."""

import pytest

from repro.config import XSketchConfig
from repro.core.batched import BatchedXSketch
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.obs import MetricsRegistry, Recorder, TraceRing, collect_xsketch
from repro.streams.datasets import ip_trace_stream


def _windows(n=16, size=600, seed=3):
    return [list(w) for w in ip_trace_stream(n_windows=n, window_size=size, seed=seed).windows()]


def _run(sketch, windows):
    for window in windows:
        sketch.run_window(window)
    return sketch


def _config(**overrides):
    return XSketchConfig(task=SimplexTask(k=1), **overrides)


class TestBehaviourNeutrality:
    """A live recorder must never change what the sketch computes."""

    def test_reports_identical_with_and_without_recorder(self):
        windows = _windows()
        plain = _run(XSketch(_config(), seed=7), windows)
        observed = _run(
            XSketch(_config(), seed=7, recorder=Recorder(trace=TraceRing())),
            windows,
        )
        assert observed.reports == plain.reports
        assert observed.stats == plain.stats

    def test_batched_variant_too(self):
        windows = _windows(n=10)
        plain = _run(BatchedXSketch(_config(), seed=7), windows)
        observed = _run(
            BatchedXSketch(_config(), seed=7, recorder=Recorder(trace=TraceRing())),
            windows,
        )
        assert observed.reports == plain.reports

    def test_election_instrumentation_does_not_consume_rng(self):
        # Crowd Stage 2 (tiny table) so elections actually happen; the
        # replacement coin flips must land identically either way.
        config = _config(memory_kb=6.0)
        windows = _windows(n=20, size=900)
        plain = _run(XSketch(config, seed=11), windows)
        observed = _run(
            XSketch(config, seed=11, recorder=Recorder(trace=TraceRing())),
            windows,
        )
        assert plain.stats.replacements_won + plain.stats.replacements_lost > 0
        assert observed.stats == plain.stats
        assert observed.reports == plain.reports


class TestExactCounters:
    def test_registry_matches_stats(self):
        sketch = _run(XSketch(_config(), seed=7, recorder=Recorder()), _windows())
        stats = sketch.stats
        registry = sketch.metrics_registry()
        assert registry.value("xsketch_stage1_arrivals_total") == stats.stage1_arrivals
        assert registry.value("xsketch_stage1_fits_total") == stats.stage1_fits
        assert registry.value("xsketch_stage1_promotions_total") == stats.promotions
        assert registry.value("xsketch_stage2_inserts_empty_total") == stats.inserts_empty
        assert registry.value("xsketch_stage2_elections_won_total") == stats.replacements_won
        assert registry.value("xsketch_stage2_elections_lost_total") == stats.replacements_lost
        assert registry.value("xsketch_stage2_evictions_total") == stats.evictions_zero
        assert registry.value("xsketch_reports_total") == stats.reports
        assert registry.value("xsketch_windows_total") == stats.windows
        assert registry.value("xsketch_stage2_tracked_items") == stats.stage2_tracked

    def test_counters_present_without_recorder(self):
        # The null recorder skips histograms/traces, never the counters.
        sketch = _run(XSketch(_config(), seed=7), _windows(n=8))
        registry = sketch.metrics_registry()
        assert registry.value("xsketch_stage1_promotions_total") == sketch.stats.promotions
        assert registry.get("xsketch_stage1_potential") is None

    def test_collect_is_additive_across_sketches(self):
        windows = _windows(n=8)
        a = _run(XSketch(_config(), seed=1), windows)
        b = _run(XSketch(_config(), seed=2), windows)
        registry = MetricsRegistry()
        collect_xsketch(a, registry)
        collect_xsketch(b, registry)
        assert registry.value("xsketch_stage1_promotions_total") == (
            a.stats.promotions + b.stats.promotions
        )

    def test_potential_histogram_counts_fits(self):
        sketch = _run(XSketch(_config(), seed=7, recorder=Recorder()), _windows())
        histogram = sketch.metrics_registry().get("xsketch_stage1_potential")
        assert histogram.count == sketch.stats.stage1_fits

    def test_wmin_histogram_counts_full_bucket_elections(self):
        config = _config(memory_kb=6.0)
        sketch = _run(XSketch(config, seed=11, recorder=Recorder()), _windows(n=20, size=900))
        stats = sketch.stats
        elections = stats.replacements_won + stats.replacements_lost
        assert elections > 0
        histogram = sketch.metrics_registry().get("xsketch_stage2_wmin")
        assert histogram.count == elections

    def test_occupancy_histogram_samples_every_bucket_each_window(self):
        sketch = _run(XSketch(_config(), seed=7, recorder=Recorder()), _windows(n=8))
        histogram = sketch.metrics_registry().get("xsketch_stage2_bucket_occupancy")
        assert histogram.count == sketch.stage2.m * sketch.window


class TestTraceEvents:
    def test_promotions_and_stage2_lifecycle_traced(self):
        ring = TraceRing()
        sketch = _run(
            XSketch(_config(), seed=7, recorder=Recorder(trace=ring)), _windows()
        )
        stats = sketch.stats
        assert len(ring.events("stage1_promotion")) == min(stats.promotions, ring.capacity)
        assert len(ring.events("stage2_evict")) == stats.evictions_zero
        assert len(ring.events("stage2_report")) == stats.reports
        reported = ring.events("stage2_report")
        if reported:
            event = reported[0]
            assert {"item", "window", "lasting", "mse", "ts"} <= set(event)

    def test_why_was_item_reported_query(self):
        ring = TraceRing()
        sketch = _run(
            XSketch(_config(), seed=7, recorder=Recorder(trace=ring)), _windows()
        )
        reports = sketch.reports
        assert reports, "fixture stream must produce at least one report"
        item = str(reports[0].item)
        kinds = [e["kind"] for e in ring.for_item(item)]
        assert "stage1_promotion" in kinds
        assert "stage2_report" in kinds


class TestTowerOverflow:
    def test_overflow_counter_counts_saturated_increments(self):
        # A tiny Stage-1 budget saturates low tower levels quickly.
        config = _config(memory_kb=4.0)
        recorder = Recorder()
        sketch = _run(XSketch(config, seed=7, recorder=recorder), _windows(n=10, size=2000))
        assert recorder.registry.value("tower_overflow_total") > 0

    def test_saturated_counters_gauge(self):
        config = _config(memory_kb=4.0)
        sketch = _run(XSketch(config, seed=7), _windows(n=10, size=2000))
        registry = sketch.metrics_registry()
        assert registry.value("xsketch_stage1_saturated_counters") > 0
        # and the scan agrees with the gauge
        assert registry.value("xsketch_stage1_saturated_counters") == (
            sketch.stage1.filter.saturated_counters()
        )


class TestVectorizedCacheMetrics:
    def test_cache_counters_exported(self):
        from repro.core.vectorized import VectorizedXSketch

        sketch = VectorizedXSketch(_config(), seed=7)
        for _ in range(3):
            sketch.run_window([f"i{j % 25}" for j in range(300)])
        registry = sketch.metrics_registry()
        info = sketch.tower.cache_info()
        assert registry.value("vectorized_hash_cache_hits_total") == info["hits"]
        assert registry.value("vectorized_hash_cache_misses_total") == info["misses"]
        assert registry.value("vectorized_hash_cache_evictions_total") == info["evictions"]
        assert registry.value("vectorized_hash_cache_entries") == info["size"]
        assert info["hits"] > 0 and info["misses"] > 0

    def test_scalar_engines_do_not_export_cache_metrics(self):
        sketch = _run(XSketch(_config(), seed=7), _windows(n=4))
        assert sketch.metrics_registry().get("vectorized_hash_cache_hits_total") is None
