"""Unit tests for the span tracer and its export shapes."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    SpanContext,
    Tracer,
    chrome_trace,
    span_trees,
    write_spans_jsonl,
)


class TestTracer:
    def test_with_scoped_span_emits_on_exit(self):
        tracer = Tracer(proc="primary")
        with tracer.span("window.flush", window=3) as span:
            child_ctx = span.context
        (event,) = tracer.events()
        assert event["name"] == "window.flush"
        assert event["trace_id"] == child_ctx.trace_id
        assert event["span_id"] == child_ctx.span_id
        assert event["parent_id"] is None
        assert event["proc"] == "primary"
        assert event["attrs"] == {"window": 3}
        assert event["dur"] >= 0.0

    def test_child_span_links_to_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child", parent=root.context):
                pass
        child, parent = tracer.events()  # child closes first
        assert child["parent_id"] == parent["span_id"]
        assert child["trace_id"] == parent["trace_id"]

    def test_error_annotated_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("merge"):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event["attrs"]["error"] == "ValueError"

    def test_close_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("step")
        try:
            pass
        finally:
            span.close()
        span.close()
        assert len(tracer.events()) == 1

    def test_bounded_ring_counts_drops(self):
        tracer = Tracer(capacity=2)
        for n in range(5):
            tracer.emit("e", trace_id="t", span_id=str(n), ts=0.0, dur=0.0)
        assert tracer.recorded == 5
        assert tracer.dropped == 3
        assert [e["span_id"] for e in tracer.events()] == ["3", "4"]

    def test_adopt_keeps_foreign_proc_stamp(self):
        tracer = Tracer(proc="primary")
        tracer.adopt([{"name": "shard.end_window", "trace_id": "t",
                       "span_id": "s", "parent_id": "p", "ts": 1.0,
                       "dur": 0.5, "proc": "shard-1"}])
        (event,) = tracer.events()
        assert event["proc"] == "shard-1"

    def test_events_filter_by_trace_id(self):
        tracer = Tracer()
        tracer.emit("a", trace_id="t1", span_id="1", ts=0.0, dur=0.0)
        tracer.emit("b", trace_id="t2", span_id="2", ts=0.0, dur=0.0)
        assert [e["name"] for e in tracer.events(trace_id="t2")] == ["b"]

    def test_timestamps_monotonic_without_wall_clock_reads(self):
        tracer = Tracer()
        first = tracer.timestamp()
        second = tracer.timestamp()
        assert second >= first

    def test_context_wire_roundtrip(self):
        ctx = SpanContext("t" * 16, "s" * 8, 12.5)
        back = SpanContext.from_wire(json.loads(json.dumps(ctx.to_wire())))
        assert (back.trace_id, back.span_id, back.ts) == \
            (ctx.trace_id, ctx.span_id, ctx.ts)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything") as span:
            span.annotate(x=1)
        NULL_TRACER.emit("e", trace_id="t", span_id="s", ts=0.0, dur=0.0)
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.enabled is False


def _event(name, trace, span, parent=None, ts=0.0):
    return {"name": name, "trace_id": trace, "span_id": span,
            "parent_id": parent, "ts": ts, "dur": 0.1, "proc": "p"}


class TestSpanTrees:
    def test_assembles_one_tree_per_trace(self):
        events = [
            _event("root", "t1", "r", ts=0.0),
            _event("late-child", "t1", "b", parent="r", ts=2.0),
            _event("early-child", "t1", "a", parent="r", ts=1.0),
            _event("other", "t2", "x"),
        ]
        trees = span_trees(events)
        assert set(trees) == {"t1", "t2"}
        (root,) = trees["t1"]["roots"]
        assert root["span"]["name"] == "root"
        assert [c["span"]["name"] for c in root["children"]] == \
            ["early-child", "late-child"]
        assert trees["t1"]["orphans"] == []

    def test_orphans_name_missing_parents(self):
        trees = span_trees([_event("lost", "t", "s", parent="gone")])
        assert trees["t"]["roots"] == []
        assert trees["t"]["orphans"][0]["name"] == "lost"


class TestChromeTrace:
    def test_shape_and_metadata(self):
        events = [
            _event("window", "t", "r", ts=1.0),
            dict(_event("apply", "t", "s", parent="r", ts=1.5),
                 proc="replica"),
        ]
        doc = chrome_trace(events)
        assert doc["displayTimeUnit"] == "ms"
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {m["args"]["name"] for m in metas} == {"p", "replica"}
        assert len(slices) == 2
        window = next(e for e in slices if e["name"] == "window")
        assert window["ts"] == 1.0 * 1e6  # microseconds
        assert window["args"]["trace_id"] == "t"
        # the two procs get distinct pids
        assert len({e["pid"] for e in slices}) == 2

    def test_json_serializable(self):
        doc = chrome_trace([_event("a", "t", "s")])
        json.dumps(doc)


class TestJsonlExport:
    def test_write_spans_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(
            [_event("a", "t", "1"), _event("b", "t", "2")], path
        )
        assert count == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
