"""Labeled instruments and the escaping round-trip of the exposition.

Prometheus label values may contain every character Python strings do;
the text format escapes backslash, double-quote and newline.  These
tests pin that ``render_text`` → ``parse_text`` → ``parse_labels``
recovers the original values exactly — including the nasty ones — and
that the flight-recorder loss counter rides the same machinery.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    collect_trace_ring,
    parse_labels,
    parse_text,
    render_text,
)
from repro.obs.registry import escape_label_value, unescape_label_value

NASTY_VALUES = [
    'quote " inside',
    "back\\slash",
    "new\nline",
    'all \\ of " them\n at once',
    "\\n literal backslash-n",
    "trailing backslash \\",
    "",
    "plain",
]


class TestEscaping:
    @pytest.mark.parametrize("value", NASTY_VALUES)
    def test_escape_roundtrip(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    def test_escaped_text_is_single_line(self):
        assert "\n" not in escape_label_value("a\nb")

    def test_literal_backslash_n_survives(self):
        # '\\n' (two characters) and '\n' (one) must escape differently.
        assert escape_label_value("\\n") != escape_label_value("\n")


class TestLabeledExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter(
            "requests_total", "requests by outcome", labels={"status": "ok"}
        ).inc(7)
        registry.counter(
            "requests_total", "requests by outcome", labels={"status": "err"}
        ).inc(2)
        registry.histogram(
            "phase_seconds", "time per phase", buckets=(0.1, 1.0),
            labels={"phase": "merge"},
        ).observe(0.05)
        return registry

    def test_one_help_type_per_family(self):
        text = render_text(self.build())
        assert text.count("# HELP requests_total") == 1
        assert text.count("# TYPE requests_total") == 1

    def test_parse_recovers_labeled_samples(self):
        samples = parse_text(render_text(self.build()))
        assert samples['requests_total{status="ok"}'] == 7
        assert samples['requests_total{status="err"}'] == 2
        assert samples['phase_seconds_bucket{phase="merge",le="0.1"}'] == 1

    @pytest.mark.parametrize("value", NASTY_VALUES)
    def test_nasty_label_values_roundtrip(self, value):
        registry = MetricsRegistry()
        registry.counter(
            "events_total", "labeled events", labels={"path": value}
        ).inc(3)
        samples = parse_text(render_text(registry))
        (key,) = samples
        assert samples[key] == 3
        name, labels = parse_labels(key)
        assert name == "events_total"
        assert labels == {"path": value}

    def test_parse_labels_bare_sample(self):
        assert parse_labels("plain_total") == ("plain_total", {})

    def test_parse_labels_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_labels('broken{oops')

    def test_family_kind_conflict_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", labels={"a": "1"})
        with pytest.raises(ConfigurationError):
            registry.gauge("thing_total", labels={"a": "2"})

    def test_merge_sums_matching_label_sets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total", labels={"s": "x"}).inc(1)
        b.counter("c_total", labels={"s": "x"}).inc(2)
        b.counter("c_total", labels={"s": "y"}).inc(5)
        a.merge(b)
        assert a.value('c_total{s="x"}') == 3
        assert a.value('c_total{s="y"}') == 5


class TestTraceRingCollector:
    def test_recorded_and_dropped_exposed(self):
        tracer = Tracer(capacity=2, proc="test")
        for n in range(5):
            tracer.emit(
                "step", trace_id="t", span_id=f"s{n}", ts=0.0, dur=0.1
            )
        registry = collect_trace_ring(tracer)
        samples = parse_text(render_text(registry))
        assert samples['obs_trace_events_total{status="recorded"}'] == 2
        assert samples['obs_trace_events_total{status="dropped"}'] == 3

    def test_additive_into_existing_registry(self):
        tracer = Tracer(capacity=8, proc="test")
        tracer.emit("step", trace_id="t", span_id="s", ts=0.0, dur=0.1)
        registry = MetricsRegistry()
        collect_trace_ring(tracer, registry)
        collect_trace_ring(tracer, registry)
        assert registry.value('obs_trace_events_total{status="recorded"}') == 2
