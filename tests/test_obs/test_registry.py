"""Unit tests for the metrics registry and the exposition codec."""

import json

import pytest

from repro.errors import ConfigurationError, MergeError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_text,
    render_text,
    validate_text,
)


class TestCounter:
    def test_inc(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)

    def test_rejects_bad_name(self):
        with pytest.raises(ConfigurationError):
            Counter("bad name")
        with pytest.raises(ConfigurationError):
            Counter("0starts_with_digit")

    def test_merge_adds(self):
        a, b = Counter("c"), Counter("c")
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.value == 5


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.inc(2)
        gauge.inc(-4)
        assert gauge.value == 5

    def test_merge_is_additive(self):
        # Gauges in this codebase carry additive facts (tracked items,
        # queue depth), so the shard reduction sums them.
        a, b = Gauge("g"), Gauge("g")
        a.set(3)
        b.set(4)
        a.merge(b)
        assert a.value == 7


class TestHistogram:
    def test_observe_buckets_inclusive_le(self):
        h = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 10.0, 11.0):
            h.observe(value)
        # le=1 owns 0.5 and 1.0; le=5 owns 3.0; le=10 owns 10.0; +Inf owns 11
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.cumulative() == [2, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(25.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())

    def test_merge_requires_identical_bounds(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(MergeError):
            a.merge(b)

    def test_merge_adds_bucketwise(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.bucket_counts == [1, 1, 1]
        assert a.count == 3


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigurationError):
            registry.gauge("m")

    def test_value_reads_scalars(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        assert registry.value("c") == 3
        assert registry.value("missing", default=-1) == -1
        registry.histogram("h")
        with pytest.raises(ConfigurationError):
            registry.value("h")

    def test_merge_adopts_and_reduces(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared").inc(1)
        b.counter("shared").inc(2)
        b.gauge("only_b").set(5)
        b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        assert a.value("shared") == 3
        assert a.value("only_b") == 5
        assert a.get("h").count == 1

    def test_merge_kind_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m")
        b.gauge("m")
        with pytest.raises(MergeError):
            a.merge(b)

    def test_snapshot_roundtrip_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c", "help c").inc(2)
        registry.gauge("g").set(-1)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        restored = MetricsRegistry.from_snapshot(snapshot)
        assert restored.as_dict() == registry.as_dict()
        assert restored.get("c").help == "help c"

    def test_merge_snapshot_sums(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.merge_snapshot(b.snapshot())
        assert a.value("c") == 3

    def test_as_dict_histogram_shape(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        view = registry.as_dict()["h"]
        assert view["count"] == 1
        assert view["buckets"] == {"1.0": 1, "+Inf": 1}


class TestExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs processed").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency", "seconds", buckets=(0.1, 1.0)).observe(0.5)
        return registry

    def test_render_structure(self):
        text = render_text(self.build())
        assert "# HELP jobs_total jobs processed" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        # no HELP line for the help-less gauge, TYPE always present
        assert "# HELP depth" not in text
        assert "# TYPE depth gauge" in text
        assert 'latency_bucket{le="0.1"} 0' in text
        assert 'latency_bucket{le="1"} 1' in text
        assert 'latency_bucket{le="+Inf"} 1' in text
        assert "latency_sum 0.5" in text
        assert "latency_count 1" in text

    def test_parse_roundtrip(self):
        text = render_text(self.build())
        samples = parse_text(text)
        assert samples["jobs_total"] == 3.0
        assert samples['latency_bucket{le="+Inf"}'] == 1.0

    def test_validate_counts_families_and_samples(self):
        families, samples = validate_text(render_text(self.build()))
        assert families == 3
        assert samples == 7  # 1 counter + 1 gauge + (3 buckets + sum + count)

    def test_validate_rejects_duplicate_type(self):
        with pytest.raises(ValueError):
            validate_text("# TYPE a counter\n# TYPE a counter\na 1\n")

    def test_validate_rejects_duplicate_help(self):
        with pytest.raises(ValueError):
            validate_text("# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n")

    def test_validate_rejects_untyped_sample(self):
        with pytest.raises(ValueError):
            validate_text("a 1\n")

    def test_parse_rejects_duplicate_sample(self):
        with pytest.raises(ValueError):
            parse_text("# TYPE a counter\na 1\na 2\n")

    def test_parse_rejects_garbage_value(self):
        with pytest.raises(ValueError):
            parse_text("a banana\n")

    def test_registry_render_text_matches_module(self):
        registry = self.build()
        assert registry.render_text() == render_text(registry)
