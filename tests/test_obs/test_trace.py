"""Unit tests for the trace ring and the recorder pair."""

import json

import pytest

from repro.obs import NULL_RECORDER, MetricsRegistry, Recorder, TraceRing
from repro.obs.trace import write_jsonl


class TestTraceRing:
    def test_records_with_timestamp_and_kind(self):
        ring = TraceRing()
        ring.record("promotion", item="a", window=3)
        (event,) = ring.events()
        assert event["kind"] == "promotion"
        assert event["item"] == "a"
        assert event["window"] == 3
        assert event["ts"] > 0

    def test_bounded_and_counts_drops(self):
        ring = TraceRing(capacity=3)
        for i in range(5):
            ring.record("e", i=i)
        assert len(ring) == 3
        assert ring.recorded == 5
        assert ring.dropped == 2
        assert [e["i"] for e in ring.events()] == [2, 3, 4]

    def test_filter_by_kind_and_item(self):
        ring = TraceRing()
        ring.record("promotion", item="x")
        ring.record("election", item="x")
        ring.record("promotion", item="y")
        assert len(ring.events("promotion")) == 2
        assert [e["kind"] for e in ring.for_item("x")] == ["promotion", "election"]

    def test_dump_jsonl(self, tmp_path):
        ring = TraceRing()
        ring.record("a", n=1)
        ring.record("b", n=2)
        path = tmp_path / "sub" / "trace.jsonl"
        assert ring.dump_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["a", "b"]

    def test_write_jsonl_counts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert write_jsonl([{"kind": "a"}], path) == 1

    def test_extend_merges_foreign_events(self):
        ring = TraceRing()
        ring.extend([{"kind": "a", "ts": 1.0}, {"kind": "b", "ts": 2.0}])
        assert ring.recorded == 2
        assert len(ring) == 2


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.registry is None
        assert NULL_RECORDER.trace is None
        # every instrument accepts its method and does nothing
        NULL_RECORDER.counter("c").inc()
        NULL_RECORDER.gauge("g").set(1)
        NULL_RECORDER.histogram("h").observe(0.5)
        NULL_RECORDER.event("kind", item="x")
        with NULL_RECORDER.span("phase"):
            pass


class TestRecorder:
    def test_instruments_land_in_registry(self):
        recorder = Recorder()
        assert recorder.enabled is True
        recorder.counter("c").inc(2)
        assert recorder.registry.value("c") == 2

    def test_events_need_a_ring(self):
        recorder = Recorder()
        recorder.event("kind")  # no ring: silently dropped
        ring = TraceRing()
        recorder = Recorder(trace=ring)
        recorder.event("kind", item="x")
        assert len(ring) == 1

    def test_span_times_into_histogram_and_ring(self):
        ring = TraceRing()
        recorder = Recorder(MetricsRegistry(), trace=ring)
        with recorder.span("flush", window=3):
            pass
        histogram = recorder.registry.get("flush_seconds")
        assert histogram.count == 1
        (event,) = ring.events("span")
        assert event["name"] == "flush"
        assert event["window"] == 3
        assert event["error"] is None

    def test_span_records_error_and_propagates(self):
        ring = TraceRing()
        recorder = Recorder(MetricsRegistry(), trace=ring)
        with pytest.raises(RuntimeError, match="boom"):
            with recorder.span("flush"):
                raise RuntimeError("boom")
        (event,) = ring.events("span")
        assert event["error"] == "RuntimeError"
