"""Unit tests for the declarative SLO engine and its burn rates."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, Objective, SloEngine
from repro.obs.slo import primary_objectives, replica_objectives


def latency_objective(threshold=0.1, target=0.9):
    return Objective(
        "lat", "latency objective", "latency", target,
        metric="pipeline_phase_seconds", labels={"phase": "ingest"},
        threshold=threshold,
    )


def registry_with_phase(observations):
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "pipeline_phase_seconds", "", buckets=(0.1, 1.0),
        labels={"phase": "ingest"},
    )
    for value in observations:
        histogram.observe(value)
    return registry


class TestObjectiveValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            Objective("x", "", "weird", 0.9, metric="m")

    def test_rejects_target_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Objective("x", "", "gauge", 1.0, metric="m")

    def test_ratio_needs_both_metric_lists(self):
        with pytest.raises(ConfigurationError):
            Objective("x", "", "ratio", 0.99, bad_metrics=["b"])

    def test_non_ratio_needs_metric(self):
        with pytest.raises(ConfigurationError):
            Objective("x", "", "latency", 0.99)


class TestObjectiveCounts:
    def test_latency_counts_within_threshold(self):
        objective = latency_objective(threshold=0.1)
        registry = registry_with_phase([0.05, 0.08, 0.5, 2.0])
        good, total = objective.counts(registry)
        assert (good, total) == (2.0, 4.0)

    def test_latency_label_mismatch_counts_nothing(self):
        objective = Objective(
            "lat", "", "latency", 0.9, metric="pipeline_phase_seconds",
            labels={"phase": "merge"}, threshold=0.1,
        )
        good, total = objective.counts(registry_with_phase([0.05]))
        assert (good, total) == (0.0, 0.0)

    def test_ratio_counts(self):
        objective = Objective(
            "loss", "", "ratio", 0.999,
            bad_metrics=["items_dropped_total"],
            total_metrics=["items_in_total", "items_dropped_total"],
        )
        registry = MetricsRegistry()
        registry.counter("items_in_total").inc(990)
        registry.counter("items_dropped_total").inc(10)
        good, total = objective.counts(registry)
        assert (good, total) == (990.0, 1000.0)

    def test_gauge_le_and_ge(self):
        low = Objective("g", "", "gauge", 0.9, metric="age", threshold=2.0)
        high = Objective("c", "", "gauge", 0.9, metric="age",
                         threshold=2.0, op="ge")
        registry = MetricsRegistry()
        registry.gauge("age").set(1.0)
        assert low.counts(registry) == (1.0, 1.0)
        assert high.counts(registry) == (0.0, 1.0)


class TestSloEngine:
    def test_burn_moves_on_bad_events_and_recovers(self):
        observations = []
        engine = SloEngine(
            [latency_objective(target=0.9)],
            lambda: registry_with_phase(observations),
            windows=(60.0,),
        )
        observations.extend([0.01] * 10)
        report = engine.evaluate()
        (entry,) = report["objectives"]
        assert entry["windows"]["60"]["burn_rate"] == 0.0
        assert report["breaching"] == []

        # ten slow batches: bad_fraction 0.5 over the window, burn 5.0
        observations.extend([0.5] * 10)
        report = engine.evaluate()
        (entry,) = report["objectives"]
        assert entry["windows"]["60"]["burn_rate"] == pytest.approx(5.0)
        assert report["breaching"] == ["lat"]
        assert report["worst"]["name"] == "lat"

    def test_gauge_objectives_accumulate_per_sample(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("replica_snapshot_age_windows")
        objective = Objective(
            "stale", "", "gauge", 0.5,
            metric="replica_snapshot_age_windows", threshold=2.0,
        )
        engine = SloEngine([objective], lambda: registry, windows=(60.0,))
        gauge.set(0)
        engine.sample()
        gauge.set(10)  # one bad sample out of two
        report = engine.evaluate()
        (entry,) = report["objectives"]
        assert entry["windows"]["60"]["events"] == 2.0
        assert entry["windows"]["60"]["bad_fraction"] == pytest.approx(0.5)

    def test_duplicate_objective_names_rejected(self):
        objective = latency_objective()
        with pytest.raises(ConfigurationError):
            SloEngine([objective, latency_objective()], MetricsRegistry)

    def test_summary_shape(self):
        engine = SloEngine([latency_objective()], MetricsRegistry)
        summary = engine.summary()
        assert set(summary) == {"breaching", "worst"}


class TestDefaultCatalogs:
    def test_primary_catalog_names(self):
        names = [o.name for o in primary_objectives()]
        assert names == ["ingest-latency", "window-latency", "item-loss"]

    def test_replica_catalog_names(self):
        names = [o.name for o in replica_objectives()]
        assert names == ["replica-staleness", "replica-connected"]

    def test_catalog_evaluates_on_empty_registry(self):
        engine = SloEngine(primary_objectives(), MetricsRegistry)
        report = engine.evaluate()
        assert report["breaching"] == []
        for entry in report["objectives"]:
            for window in entry["windows"].values():
                assert window["burn_rate"] == 0.0
