"""Cross-backend metrics parity (satellite c).

The same trace pushed through an inline-backend and a process-backend
``ShardedXSketch`` must yield *identical* aggregated registries: the
decision counters are exact facts about the algorithm, not samples, so
shipping them across a process boundary must not change a single count.
"""

from __future__ import annotations

import pytest

from repro.config import XSketchConfig
from repro.fitting.simplex import SimplexTask
from repro.obs import MetricsRegistry
from repro.runtime.sharded import ShardedXSketch
from repro.streams.datasets import ip_trace_stream

SEED = 7
N_SHARDS = 3


def _config():
    return XSketchConfig(task=SimplexTask(k=1), memory_kb=40.0)


def _windows():
    return [list(w) for w in ip_trace_stream(n_windows=12, window_size=600, seed=3).windows()]


def _run(backend, observability=True):
    with ShardedXSketch(
        _config(),
        n_shards=N_SHARDS,
        seed=SEED,
        backend=backend,
        observability=observability,
    ) as sharded:
        for window in _windows():
            sharded.run_window(window)
        registry = sharded.metrics_registry()
        events = sharded.trace_events() if observability else []
        reports = sorted((r.report_window, str(r.item)) for r in sharded.reports)
    return registry, events, reports


@pytest.fixture(scope="module")
def inline_run():
    return _run("inline")


@pytest.fixture(scope="module")
def process_run():
    return _run("process")


class TestCrossBackendParity:
    def test_aggregated_registries_identical(self, inline_run, process_run):
        inline_registry, _, _ = inline_run
        process_registry, _, _ = process_run
        assert inline_registry.as_dict() == process_registry.as_dict()

    def test_key_counters_nonzero(self, inline_run):
        registry, _, _ = inline_run
        assert registry.value("xsketch_stage1_promotions_total") > 0
        assert registry.value("runtime_items_routed_total") == 12 * 600
        # per-shard windows sum across shards; the coordinator count does not
        assert registry.value("xsketch_windows_total") == N_SHARDS * 12
        assert registry.value("runtime_windows_total") == 12

    def test_counters_match_single_sketch_ground_truth(self, inline_run):
        """Shard aggregation equals an unsharded run of the same trace:
        promotions, elections, and reports are partition-invariant."""
        from repro.core.xsketch import XSketch
        from repro.runtime.partition import KeyPartitioner

        registry, _, _ = inline_run
        # replay the same partition locally to derive ground truth
        config = _config()
        partitioner = KeyPartitioner(N_SHARDS, seed=SEED, hash_family=config.hash_family)
        shards = [XSketch(config, seed=SEED) for _ in range(N_SHARDS)]
        for window in _windows():
            for sketch, part in zip(shards, partitioner.split(window)):
                sketch.run_window(part)
        assert registry.value("xsketch_stage1_promotions_total") == sum(
            s.stats.promotions for s in shards
        )
        assert registry.value("xsketch_stage2_elections_won_total") == sum(
            s.stats.replacements_won for s in shards
        )
        assert registry.value("xsketch_reports_total") == sum(
            s.stats.reports for s in shards
        )

    def test_trace_events_survive_the_process_boundary(self, inline_run, process_run):
        _, inline_events, _ = inline_run
        _, process_events, _ = process_run
        assert len(inline_events) == len(process_events)
        assert inline_events, "observability run must record trace events"
        # every shipped event is stamped with its shard of origin
        assert all("shard" in event for event in process_events)
        assert {e["shard"] for e in process_events} <= set(range(N_SHARDS))

    def test_reports_unaffected_by_observability(self, inline_run):
        _, _, observed_reports = inline_run
        _, _, plain_reports = _run("inline", observability=False)
        assert observed_reports == plain_reports

    def test_observability_off_still_collects_exact_counters(self):
        registry, events, _ = _run("inline", observability=False)
        assert events == []
        assert registry.value("xsketch_stage1_promotions_total") > 0
        # histograms exist only when a live recorder was attached
        assert registry.get("xsketch_stage1_potential") is None

    def test_collection_is_repeatable_not_cumulative(self):
        """metrics_registry() is a pull-style snapshot: collecting twice
        into fresh registries gives the same values, not doubled ones."""
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="inline", observability=True
        ) as sharded:
            for window in _windows():
                sharded.run_window(window)
            first = sharded.metrics_registry()
            second = sharded.metrics_registry()
        assert first.as_dict() == second.as_dict()

    def test_merge_into_caller_registry(self):
        """A caller-supplied registry receives the aggregate (service path)."""
        mine = MetricsRegistry()
        mine.counter("service_items_ingested_total").inc(5)
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="inline", observability=True
        ) as sharded:
            for window in _windows()[:4]:
                sharded.run_window(window)
            out = sharded.metrics_registry(mine)
        assert out is mine
        assert mine.value("service_items_ingested_total") == 5
        assert mine.value("xsketch_windows_total") == 2 * 4
