"""Property tests: every structure honors its memory budget.

Memory efficiency is the paper's central claim, so the accounting must
be airtight: for any admissible configuration, the accounted bytes of
the built structure may never exceed the requested budget (plus at most
one allocation quantum of slack where rounding is documented).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import XSketchConfig
from repro.core.baseline import BaselineConfig, BaselineSolution
from repro.core.batched import BatchedXSketch
from repro.core.vectorized import VectorizedXSketch
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.sketch.cm import CMSketch
from repro.sketch.coldfilter import ColdFilter
from repro.sketch.count import CountSketch
from repro.sketch.csm import CSMSketch
from repro.sketch.cu import CUSketch
from repro.sketch.elastic import ElasticSketch
from repro.sketch.loglogfilter import LogLogFilter
from repro.sketch.mv import MVSketch
from repro.sketch.pyramid import PyramidSketch
from repro.sketch.tower import TowerSketch
from repro.sketch.windowed import make_windowed_filter

SINGLE_WINDOW_SKETCHES = [
    CMSketch,
    CUSketch,
    CountSketch,
    CSMSketch,
    TowerSketch,
    ColdFilter,
    LogLogFilter,
    PyramidSketch,
    MVSketch,
    ElasticSketch,
]


class TestSingleWindowSketchBudgets:
    @pytest.mark.parametrize("sketch_cls", SINGLE_WINDOW_SKETCHES)
    @pytest.mark.parametrize("memory_bytes", [1500, 4096, 65536])
    def test_within_budget(self, sketch_cls, memory_bytes):
        sketch = sketch_cls(memory_bytes, seed=1)
        assert sketch.memory_bytes <= memory_bytes


class TestWindowedFilterBudgets:
    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(["tower", "cm", "cu", "cold", "loglog"]),
        st.integers(min_value=4000, max_value=200000),
        st.integers(min_value=1, max_value=8),
    )
    def test_within_budget(self, structure, memory_bytes, s):
        wf = make_windowed_filter(structure, memory_bytes, s=s, seed=1)
        assert wf.memory_bytes <= memory_bytes


class TestAlgorithmBudgets:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=5.0, max_value=500.0),
        st.floats(min_value=0.2, max_value=0.9),
        st.integers(min_value=1, max_value=8),
    )
    def test_xsketch_engines_within_budget(self, k, memory_kb, r, u):
        task = SimplexTask.paper_default(k)
        config = XSketchConfig(task=task, memory_kb=memory_kb, r=r, u=u)
        # one bucket of rounding slack: stage2_buckets floors, but tiny
        # budgets guarantee the minimum single bucket
        slack = config.u * config.stage2_cell_bytes
        for engine in (XSketch, BatchedXSketch, VectorizedXSketch):
            sketch = engine(config, seed=1)
            assert sketch.memory_bytes <= memory_kb * 1024 + slack

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=5.0, max_value=500.0))
    def test_baseline_within_budget(self, memory_kb):
        config = BaselineConfig(task=SimplexTask.paper_default(1), memory_kb=memory_kb)
        baseline = BaselineSolution(config, seed=1)
        # set/table capacities use minimum-1 floors at tiny budgets
        slack = 16
        assert baseline.memory_bytes <= memory_kb * 1024 + slack
