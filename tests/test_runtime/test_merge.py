"""Merge semantics of X-Sketch stage state (Stage 1, Stage 2, XSketch)."""

from __future__ import annotations

import pytest

from repro.config import XSketchConfig
from repro.core.stage1 import Promotion
from repro.core.stage2 import Stage2
from repro.core.xsketch import XSketch
from repro.errors import MergeError
from repro.fitting.simplex import SimplexTask
from repro.runtime.mergeable import Mergeable, merge_all

SEED = 31


def _config(**overrides):
    overrides.setdefault("memory_kb", 40.0)
    return XSketchConfig(task=SimplexTask.paper_default(1), **overrides)


def _promotion(item, w_str, frequencies=(3, 5, 7, 9)):
    return Promotion(item=item, frequencies=tuple(frequencies), w_str=w_str, potential=2.0)


def _colliding_items(stage2, count=2):
    """Items that share one Stage-2 bucket (forces weight election)."""
    target = stage2.family.hash32("anchor-0", stage2._bucket_hash_index) % stage2.m
    found = []
    index = 0
    while len(found) < count:
        item = f"anchor-{index}"
        if stage2.family.hash32(item, stage2._bucket_hash_index) % stage2.m == target:
            found.append(item)
        index += 1
    return found


class TestStage2Merge:
    def test_disjoint_items_union(self):
        config = _config()
        a = Stage2(config, seed=SEED)
        b = Stage2(config, seed=SEED)
        a.try_insert(_promotion("left", w_str=0), window=3)
        b.try_insert(_promotion("right", w_str=1), window=3)
        a.merge(b, window=3)
        assert a.lookup("left") is not None
        assert a.lookup("right") is not None
        assert len(a) == 2
        assert a.merges == 1

    def test_same_item_counts_add_and_w_str_keeps_earlier(self):
        config = _config()
        a = Stage2(config, seed=SEED)
        b = Stage2(config, seed=SEED)
        a.try_insert(_promotion("dup", w_str=2, frequencies=(1, 1, 1, 1)), window=5)
        b.try_insert(_promotion("dup", w_str=0, frequencies=(2, 2, 2, 2)), window=5)
        a.record_arrival("dup", 5)
        a.merge(b, window=5)
        cell = a.lookup("dup")
        assert cell.w_str == 0
        merged_total = sum(cell.counts)
        assert merged_total == (1 + 1 + 1 + 1 + 1) + (2 + 2 + 2 + 2)

    def test_full_bucket_elects_by_weight(self):
        config = _config(u=1)
        resident_side = Stage2(config, seed=SEED)
        incoming_side = Stage2(config, seed=SEED)
        heavy, light = _colliding_items(resident_side, 2)
        resident_side.try_insert(_promotion(heavy, w_str=0), window=10)  # W = 10
        incoming_side.try_insert(_promotion(light, w_str=8), window=10)  # W = 2
        resident_side.merge(incoming_side, window=10)
        assert resident_side.lookup(heavy) is not None
        assert resident_side.lookup(light) is None
        assert resident_side.merge_dropped == 1
        # the election is by weight, not by merge direction
        fresh_resident = Stage2(config, seed=SEED)
        fresh_incoming = Stage2(config, seed=SEED)
        fresh_resident.try_insert(_promotion(light, w_str=8), window=10)
        fresh_incoming.try_insert(_promotion(heavy, w_str=0), window=10)
        fresh_resident.merge(fresh_incoming, window=10)
        assert fresh_resident.lookup(heavy) is not None
        assert fresh_resident.lookup(light) is None

    def test_geometry_and_seed_mismatch_rejected(self):
        a = Stage2(_config(), seed=SEED)
        with pytest.raises(MergeError):
            a.merge(Stage2(_config(u=2), seed=SEED), window=0)
        with pytest.raises(MergeError):
            a.merge(Stage2(_config(), seed=SEED + 1), window=0)


def _run_windows(sketch, windows):
    for window in windows:
        sketch.run_window(window)
    return sketch


class TestXSketchMerge:
    def test_merged_equals_single_for_cm_rule_stage1(self, controlled_trace):
        """Split the stream by key parity; CM-rule Stage-1 merge is exact.

        Every key's full history stays on one side (the sharded-runtime
        routing invariant), so merged Stage-1 counters equal the single
        sketch's and the merged tracked set is the union.
        """
        config = _config(update_rule="cm", memory_kb=80.0)
        windows = list(controlled_trace.windows())
        left = [[i for i in w if hash_side(i) == 0] for w in windows]
        right = [[i for i in w if hash_side(i) == 1] for w in windows]
        single = _run_windows(XSketch(config, seed=SEED), windows)
        a = _run_windows(XSketch(config, seed=SEED), left)
        b = _run_windows(XSketch(config, seed=SEED), right)
        a.merge(b)
        probes = {item for w in windows for item in w}
        for item in sorted(probes, key=str)[:200]:
            merged_est = a.stage1.filter.query_slot(item, a.window % config.s)
            single_est = single.stage1.filter.query_slot(item, single.window % config.s)
            assert merged_est == single_est

    def test_merge_requires_same_window_and_config(self):
        a = XSketch(_config(), seed=SEED)
        b = XSketch(_config(), seed=SEED)
        b.run_window(["x"] * 10)
        with pytest.raises(MergeError):
            a.merge(b)
        with pytest.raises(MergeError):
            a.merge(XSketch(_config(memory_kb=50.0), seed=SEED))

    def test_merge_combines_report_streams_in_canonical_order(self, controlled_trace):
        config = _config(memory_kb=80.0)
        windows = list(controlled_trace.windows())
        left = [[i for i in w if hash_side(i) == 0] for w in windows]
        right = [[i for i in w if hash_side(i) == 1] for w in windows]
        a = _run_windows(XSketch(config, seed=SEED), left)
        b = _run_windows(XSketch(config, seed=SEED), right)
        expected = sorted(
            [(r.report_window, str(r.item)) for r in a.reports + b.reports]
        )
        a.merge(b)
        assert [(r.report_window, str(r.item)) for r in a.reports] == expected

    def test_satisfies_mergeable_protocol(self):
        assert isinstance(XSketch(_config(), seed=SEED), Mergeable)

    def test_merge_all_folds_left(self):
        config = _config(memory_kb=80.0)
        sketches = [XSketch(config, seed=SEED) for _ in range(3)]
        streams = (["a"] * 5, ["b"] * 5, ["c"] * 5)
        for sketch, stream in zip(sketches, streams):
            sketch.run_window(list(stream))
        merged = merge_all(*sketches)
        assert merged is sketches[0]
        assert merged.stage1.arrivals == 15


def hash_side(item) -> int:
    """Deterministic 2-way key split, independent of PYTHONHASHSEED."""
    text = item if isinstance(item, str) else repr(item)
    return sum(text.encode()) % 2
