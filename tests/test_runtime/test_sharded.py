"""ShardedXSketch: equivalence with the single-process sketch, worker
processes, checkpoint/restore, and observability."""

from __future__ import annotations

import pytest

from repro.config import XSketchConfig
from repro.core.xsketch import XSketch
from repro.errors import RuntimeShardError
from repro.fitting.simplex import SimplexTask
from repro.runtime.sharded import ShardedXSketch

SEED = 11


def _config(memory_kb=60.0, **overrides):
    return XSketchConfig(
        task=SimplexTask.paper_default(1), memory_kb=memory_kb, **overrides
    )


def _report_keys(reports):
    return [(r.report_window, str(r.item)) for r in reports]


def _run_trace(algorithm, windows):
    for window in windows:
        algorithm.run_window(window)
    return algorithm


@pytest.fixture(scope="module")
def planted_windows(controlled_trace):
    return list(controlled_trace.windows())


class TestInlineEquivalence:
    def test_sharded_reports_equal_single_sketch(self, planted_windows):
        """Acceptance criterion: same reported simplex items as the
        single-process sketch on the same planted stream."""
        config = _config()
        single = _run_trace(XSketch(config, seed=SEED), planted_windows)
        with ShardedXSketch(config, n_shards=2, seed=SEED, backend="inline") as sharded:
            _run_trace(sharded, planted_windows)
            sharded_keys = _report_keys(sharded.reports)
        single_keys = sorted(_report_keys(single.reports))
        assert sorted(sharded_keys) == single_keys
        assert set(str(r.item) for r in single.reports) >= {"rise", "fall"}

    def test_shard_count_does_not_change_report_set(self, planted_windows):
        config = _config()
        results = {}
        for n_shards in (2, 3):
            with ShardedXSketch(
                config, n_shards=n_shards, seed=SEED, backend="inline"
            ) as sharded:
                _run_trace(sharded, planted_windows)
                results[n_shards] = sorted(_report_keys(sharded.reports))
        assert results[2] == results[3]

    def test_insert_buffering_matches_ingest_batch(self, planted_windows):
        config = _config()
        windows = planted_windows[:6]
        with ShardedXSketch(
            config, n_shards=2, seed=SEED, backend="inline", batch_size=64
        ) as by_item, ShardedXSketch(
            config, n_shards=2, seed=SEED, backend="inline"
        ) as by_batch:
            for window in windows:
                for item in window:
                    by_item.insert(item)
                by_item.flush_window()
                by_batch.ingest_batch(window)
                by_batch.flush_window()
            assert _report_keys(by_item.reports) == _report_keys(by_batch.reports)
            assert by_item.stats().items_routed == by_batch.stats().items_routed


class TestProcessBackend:
    def test_worker_processes_match_single_sketch(self, planted_windows):
        """Acceptance criterion with real worker processes (N=2)."""
        config = _config()
        windows = planted_windows[:10]
        single = _run_trace(XSketch(config, seed=SEED), windows)
        with ShardedXSketch(config, n_shards=2, seed=SEED, backend="process") as sharded:
            _run_trace(sharded, windows)
            sharded_keys = _report_keys(sharded.reports)
            stats = sharded.stats()
        assert sorted(sharded_keys) == sorted(_report_keys(single.reports))
        assert stats.n_shards == 2
        assert stats.items_routed == sum(len(w) for w in windows)
        assert all(s.worker is not None for s in stats.shards)
        assert sum(s.worker.items_ingested for s in stats.shards) == stats.items_routed

    def test_process_backend_equals_inline_backend(self, planted_windows):
        config = _config()
        windows = planted_windows[:8]
        with ShardedXSketch(config, n_shards=2, seed=SEED, backend="process") as proc:
            _run_trace(proc, windows)
            proc_keys = _report_keys(proc.reports)
        with ShardedXSketch(config, n_shards=2, seed=SEED, backend="inline") as inline:
            _run_trace(inline, windows)
            inline_keys = _report_keys(inline.reports)
        assert proc_keys == inline_keys

    def test_close_is_idempotent_and_workers_exit(self, planted_windows):
        config = _config()
        sharded = ShardedXSketch(config, n_shards=2, seed=SEED, backend="process")
        sharded.run_window(planted_windows[0])
        sharded.close()
        sharded.close()
        with pytest.raises(RuntimeShardError):
            sharded.ingest_batch(planted_windows[0])


class TestCheckpointRestore:
    def test_roundtrip_resumes_identically(self, planted_windows, tmp_path):
        config = _config()
        first, rest = planted_windows[:12], planted_windows[12:]
        reference = ShardedXSketch(config, n_shards=2, seed=SEED, backend="inline")
        _run_trace(reference, first)
        reference.checkpoint(tmp_path / "ckpt")
        _run_trace(reference, rest)

        restored = ShardedXSketch.restore(tmp_path / "ckpt", backend="inline")
        assert restored.window == len(first)
        assert _report_keys(restored.reports) == _report_keys(
            ShardedXSketch.restore(tmp_path / "ckpt", backend="inline").reports
        )
        _run_trace(restored, rest)
        assert _report_keys(restored.reports) == _report_keys(reference.reports)
        assert restored.stats().items_routed == reference.stats().items_routed

    def test_checkpoint_layout(self, planted_windows, tmp_path):
        config = _config()
        with ShardedXSketch(config, n_shards=3, seed=SEED, backend="inline") as sharded:
            _run_trace(sharded, planted_windows[:4])
            sharded.checkpoint(tmp_path / "ckpt")
        names = sorted(p.name for p in (tmp_path / "ckpt").iterdir())
        assert names == [
            "manifest.json",
            "shard-00.json",
            "shard-01.json",
            "shard-02.json",
        ]

    def test_checkpoint_refuses_buffered_items(self, planted_windows, tmp_path):
        config = _config()
        with ShardedXSketch(
            config, n_shards=2, seed=SEED, backend="inline", batch_size=10_000
        ) as sharded:
            sharded.insert("pending-item")
            with pytest.raises(RuntimeShardError):
                sharded.checkpoint(tmp_path / "ckpt")

    def test_restore_into_worker_processes(self, planted_windows, tmp_path):
        config = _config()
        first, rest = planted_windows[:10], planted_windows[10:14]
        reference = ShardedXSketch(config, n_shards=2, seed=SEED, backend="inline")
        _run_trace(reference, first)
        reference.checkpoint(tmp_path / "ckpt")
        _run_trace(reference, rest)
        with ShardedXSketch.restore(tmp_path / "ckpt", backend="process") as restored:
            _run_trace(restored, rest)
            assert _report_keys(restored.reports) == _report_keys(reference.reports)


class TestCompactionAndObservability:
    def test_merged_sketch_compacts_shards(self, planted_windows):
        config = _config()
        with ShardedXSketch(config, n_shards=3, seed=SEED, backend="inline") as sharded:
            _run_trace(sharded, planted_windows)
            merged = sharded.merged_sketch()
            assert sharded.stats().merge_count == 2  # 3 shards -> 2 merges
        assert merged.window == len(planted_windows)
        assert _report_keys(merged.reports) == _report_keys(sharded.reports)

    def test_stats_shapes(self, planted_windows):
        config = _config()
        with ShardedXSketch(config, n_shards=4, seed=SEED, backend="inline") as sharded:
            _run_trace(sharded, planted_windows[:5])
            stats = sharded.stats()
            depths = sharded.queue_depths()
        assert stats.window == 5
        assert len(stats.shards) == 4
        assert len(depths) == 4
        assert sum(s.items_routed for s in stats.shards) == stats.items_routed
        assert all(s.batches_sent > 0 for s in stats.shards)
        assert stats.reports == len(sharded.reports)

    def test_memory_budget_scales_with_shards(self):
        config = _config()
        with ShardedXSketch(config, n_shards=2, seed=SEED, backend="inline") as two, \
                ShardedXSketch(config, n_shards=4, seed=SEED, backend="inline") as four:
            assert four.memory_bytes == pytest.approx(2 * two.memory_bytes)
