"""Fault-spec parsing and validation (no worker processes involved)."""

import pytest

from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.config import XSketchConfig
from repro.runtime.faults import (
    Fault,
    FaultInjector,
    parse_fault,
    parse_faults,
)
from repro.runtime.sharded import ShardedXSketch


def _config():
    task = SimplexTask.paper_default(1)
    return XSketchConfig(task=task, memory_kb=60.0)


class TestParse:
    def test_kill_spec_round_trip(self):
        fault = parse_fault("kill:shard=0,window=3,point=checkpoint")
        assert fault == Fault(kind="kill", shard=0, window=3, point="checkpoint")

    def test_drop_reply_spec(self):
        fault = parse_fault("drop_reply:shard=1,op=end_window,count=2")
        assert fault.kind == "drop_reply"
        assert fault.shard == 1
        assert fault.op == "end_window"
        assert fault.count == 2

    def test_slow_spec(self):
        fault = parse_fault("slow:shard=0,op=stats,seconds=2.5")
        assert fault.seconds == pytest.approx(2.5)

    def test_error_spec_defaults(self):
        fault = parse_fault("error:shard=1")
        assert fault.op == "end_window"
        assert fault.window is None
        assert fault.count == 1

    def test_parse_faults_none_is_empty(self):
        assert parse_faults(None) == []
        assert parse_faults([]) == []

    @pytest.mark.parametrize(
        "spec",
        [
            "kill",                          # no shard
            "kill:window=3",                 # no shard
            "explode:shard=0",               # unknown kind
            "kill:shard=0,point=nowhere",    # bad kill point
            "slow:shard=0,seconds=0",        # non-positive sleep
            "drop_reply:shard=0,op=advance", # not a faultable op
            "kill:shard=0,shardx=1",         # unknown field
            "kill:shard=zero",               # unparsable value
            "kill:shard=0,count=0",          # count < 1
            "kill:shard=-1",                 # negative shard
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault(spec)


class TestInjectorSelection:
    def test_injector_filters_by_shard(self):
        faults = [Fault(kind="slow", shard=0, op="stats", seconds=1.0)]
        assert bool(FaultInjector(faults, shard_id=0))
        assert not bool(FaultInjector(faults, shard_id=1))

    def test_drop_reply_fires_count_times(self):
        faults = [Fault(kind="drop_reply", shard=0, op="end_window", count=2)]
        injector = FaultInjector(faults, shard_id=0)
        assert injector.should_drop_reply("end_window", 0)
        assert injector.should_drop_reply("end_window", 1)
        assert not injector.should_drop_reply("end_window", 2)

    def test_window_filter(self):
        faults = [Fault(kind="drop_reply", shard=0, op="end_window", window=5)]
        injector = FaultInjector(faults, shard_id=0)
        assert not injector.should_drop_reply("end_window", 4)
        assert injector.should_drop_reply("end_window", 5)


class TestRuntimeValidation:
    def test_inline_backend_rejects_faults(self):
        with pytest.raises(ConfigurationError, match="process backend"):
            ShardedXSketch(
                _config(), n_shards=2, backend="inline",
                faults=[Fault(kind="kill", shard=0)],
            )

    def test_fault_shard_out_of_range(self):
        with pytest.raises(ConfigurationError, match="shard 5"):
            ShardedXSketch(
                _config(), n_shards=2, backend="process",
                faults=[Fault(kind="kill", shard=5)],
            )

    def test_bad_supervision_knobs(self):
        with pytest.raises(ConfigurationError):
            ShardedXSketch(_config(), n_shards=2, backend="inline",
                           auto_checkpoint_interval=-1)
        with pytest.raises(ConfigurationError):
            ShardedXSketch(_config(), n_shards=2, backend="inline",
                           max_restarts=-1)
