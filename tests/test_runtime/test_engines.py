"""Engine selection in the sharded runtime: report identity across
``engine="xsketch" | "batched" | "vectorized"``, checkpoint round-trips
that preserve the engine, compaction classes, and supervised respawn
continuing with the engine the shard crashed with."""

from __future__ import annotations

import json

import pytest

from repro.config import XSketchConfig
from repro.core.engines import ENGINE_NAMES, make_engine, validate_engine
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.runtime.faults import Fault
from repro.runtime.sharded import ShardedXSketch

SEED = 11
N_WINDOWS = 12


def _config(memory_kb=60.0, **overrides):
    return XSketchConfig(
        task=SimplexTask.paper_default(1), memory_kb=memory_kb, **overrides
    )


def _report_keys(reports):
    return [(r.report_window, str(r.item)) for r in reports]


def _run_trace(algorithm, windows):
    for window in windows:
        algorithm.run_window(window)
    return algorithm


@pytest.fixture(scope="module")
def planted_windows(controlled_trace):
    return list(controlled_trace.windows())[:N_WINDOWS]


@pytest.fixture(scope="module")
def inline_keys_by_engine(planted_windows):
    keys = {}
    for engine in ENGINE_NAMES:
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="inline", engine=engine
        ) as sharded:
            _run_trace(sharded, planted_windows)
            keys[engine] = sorted(_report_keys(sharded.reports))
    return keys


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            validate_engine("turbo")

    def test_vectorized_requires_tower(self):
        config = _config(stage1_structure="cold")
        with pytest.raises(ConfigurationError, match="tower"):
            validate_engine("vectorized", config)

    def test_sharded_rejects_bad_engine_before_spawn(self):
        with pytest.raises(ConfigurationError):
            ShardedXSketch(_config(), n_shards=2, backend="inline", engine="turbo")
        with pytest.raises(ConfigurationError):
            ShardedXSketch(
                _config(stage1_structure="cold"),
                n_shards=2,
                backend="inline",
                engine="vectorized",
            )

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_factory_builds_the_named_engine(self, engine):
        expected = {
            "xsketch": "XSketch",
            "batched": "BatchedXSketch",
            "vectorized": "VectorizedXSketch",
        }[engine]
        assert type(make_engine(_config(), engine=engine)).__name__ == expected

    def test_make_algorithm_threads_engine(self):
        from repro.experiments.harness import make_algorithm

        task = SimplexTask.paper_default(1)
        single = make_algorithm("xs-cu", task, 40.0, engine="vectorized")
        assert type(single).__name__ == "VectorizedXSketch"
        with pytest.raises(ConfigurationError, match="fixes its engine"):
            make_algorithm("xs-batched", task, 40.0, engine="vectorized")
        with pytest.raises(ConfigurationError, match="fixes its engine"):
            make_algorithm("baseline", task, 40.0, engine="batched")


class TestCrossEngineReportIdentity:
    def test_batched_and_vectorized_identical_inline(self, inline_keys_by_engine):
        assert inline_keys_by_engine["batched"] == inline_keys_by_engine["vectorized"]
        assert inline_keys_by_engine["batched"]  # the trace produced reports

    def test_per_arrival_covers_batched_reports(self, inline_keys_by_engine):
        """Per-arrival evaluates the Potential on partially accumulated
        counts, so it can promote strictly more -- never less -- than
        the boundary-evaluating engines on the same stream."""
        assert set(inline_keys_by_engine["batched"]) <= set(
            inline_keys_by_engine["xsketch"]
        )

    @pytest.mark.parametrize("engine", ["batched", "vectorized"])
    def test_process_backend_matches_inline(
        self, engine, planted_windows, inline_keys_by_engine
    ):
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, engine=engine,
        ) as sharded:
            _run_trace(sharded, planted_windows)
            keys = sorted(_report_keys(sharded.reports))
        assert keys == inline_keys_by_engine[engine]


class TestEngineCheckpoint:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_roundtrip_preserves_engine_and_reports(
        self, engine, planted_windows, tmp_path
    ):
        directory = tmp_path / engine
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="inline", engine=engine
        ) as sharded:
            _run_trace(sharded, planted_windows[:8])
            sharded.checkpoint(directory)
            expected = _report_keys(sharded.reports)
            _run_trace(sharded, planted_windows[8:])
            full = _report_keys(sharded.reports)
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["engine"] == engine
        restored = ShardedXSketch.restore(directory, backend="inline")
        assert restored.engine == engine
        assert _report_keys(restored.reports) == expected
        _run_trace(restored, planted_windows[8:])
        assert _report_keys(restored.reports) == full
        restored.close()

    def test_legacy_manifest_defaults_to_per_arrival(self, planted_windows, tmp_path):
        directory = tmp_path / "legacy"
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="inline"
        ) as sharded:
            _run_trace(sharded, planted_windows[:4])
            sharded.checkpoint(directory)
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["engine"]
        manifest_path.write_text(json.dumps(manifest))
        restored = ShardedXSketch.restore(directory, backend="inline")
        assert restored.engine == "xsketch"
        restored.close()


class TestMergedSketchPerEngine:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_compaction_class_matches_engine(self, engine, planted_windows):
        expected = {
            "xsketch": "XSketch",
            "batched": "BatchedXSketch",
            "vectorized": "VectorizedXSketch",
        }[engine]
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="inline", engine=engine
        ) as sharded:
            _run_trace(sharded, planted_windows[:8])
            merged = sharded.merged_sketch()
            assert type(merged).__name__ == expected
            assert _report_keys(merged.reports) == _report_keys(sharded.report())


class TestSupervisedRespawnKeepsEngine:
    def test_boundary_kill_report_identical_vectorized(
        self, planted_windows, inline_keys_by_engine
    ):
        """SIGKILL a vectorized shard at a checkpoint boundary: the
        respawned worker restores the ``vectorized`` snapshot variant and
        the run stays report-identical with zero estimated loss."""
        fault = Fault(kind="kill", shard=0, window=4, point="checkpoint")
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, faults=[fault], engine="vectorized",
        ) as sharded:
            with pytest.warns(RuntimeWarning, match="restarted shard 0"):
                _run_trace(sharded, planted_windows)
            keys = sorted(_report_keys(sharded.reports))
            health = sharded.health()
            merged = sharded.merged_sketch()
            assert type(merged).__name__ == "VectorizedXSketch"
        assert keys == inline_keys_by_engine["vectorized"]
        assert health["restarts_total"] == 1
        assert health["items_lost_estimate"] == 0
