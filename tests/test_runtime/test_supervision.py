"""Supervised self-healing of the sharded runtime (crash scenarios).

Every test drives real worker processes through the deterministic
fault harness (:mod:`repro.runtime.faults`), so the crashes happen at
exact, reproducible instants: at a checkpoint boundary (clean kill —
no loss), mid-window (bounded loss), on a dropped reply (wedged
worker), and so on.  The acceptance bar is the ISSUE's: a boundary
kill must be *report-identical* to an uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.config import XSketchConfig
from repro.errors import RuntimeShardError
from repro.fitting.simplex import SimplexTask
from repro.obs.collect import collect_sharded
from repro.runtime.faults import Fault
from repro.runtime.sharded import ShardedXSketch

SEED = 11


def _metric_value(registry, name):
    return {m["name"]: m for m in registry.snapshot()["metrics"]}[name]["value"]

#: A short but report-producing slice of the planted trace.
N_WINDOWS = 12


def _config(memory_kb=60.0, **overrides):
    return XSketchConfig(
        task=SimplexTask.paper_default(1), memory_kb=memory_kb, **overrides
    )


def _report_keys(reports):
    return [(r.report_window, str(r.item)) for r in reports]


def _run_trace(algorithm, windows):
    for window in windows:
        algorithm.run_window(window)
    return algorithm


@pytest.fixture(scope="module")
def planted_windows(controlled_trace):
    return list(controlled_trace.windows())[:N_WINDOWS]


@pytest.fixture(scope="module")
def baseline_keys(planted_windows):
    """Report keys of an uninterrupted run (inline backend: exact)."""
    with ShardedXSketch(
        _config(), n_shards=2, seed=SEED, backend="inline"
    ) as sharded:
        _run_trace(sharded, planted_windows)
        return sorted(_report_keys(sharded.reports))


class TestBoundaryKill:
    def test_checkpoint_kill_is_report_identical(
        self, planted_windows, baseline_keys
    ):
        """ISSUE acceptance: SIGKILL at a window boundary -> respawn,
        restore, identical reports, restarts_total == 1, zero loss."""
        fault = Fault(kind="kill", shard=0, window=4, point="checkpoint")
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, faults=[fault],
        ) as sharded:
            with pytest.warns(RuntimeWarning, match="restarted shard 0"):
                _run_trace(sharded, planted_windows)
            keys = sorted(_report_keys(sharded.reports))
            health = sharded.health()
            registry = sharded.metrics_registry()
        assert keys == baseline_keys
        assert health["restarts_total"] == 1
        assert health["restarts"] == [1, 0]
        assert health["items_lost_estimate"] == 0
        assert health["status"] == "ok"
        assert _metric_value(registry, "runtime_shard_restarts_total") == 1
        assert _metric_value(registry, "runtime_items_lost_estimate") == 0

    def test_restart_survives_checkpoint_and_merge(self, planted_windows, tmp_path):
        """A post-restart runtime still checkpoints and compacts."""
        fault = Fault(kind="kill", shard=1, window=3, point="checkpoint")
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, faults=[fault],
        ) as sharded:
            with pytest.warns(RuntimeWarning):
                _run_trace(sharded, planted_windows[:8])
            sharded.checkpoint(tmp_path / "ckpt")
            merged = sharded.merged_sketch()
            assert merged.window == sharded.window
        restored = ShardedXSketch.restore(tmp_path / "ckpt", backend="inline")
        assert restored.window == 8
        assert sorted(_report_keys(restored.reports)) == sorted(
            _report_keys(merged.reports)
        )


class TestMidWindowKill:
    def test_ingest_kill_completes_with_bounded_loss(self, planted_windows):
        """A mid-window SIGKILL completes the run; the consumed batch is
        recorded as bounded loss in metrics instead of raising."""
        fault = Fault(kind="kill", shard=0, window=5, point="ingest")
        window_size = len(planted_windows[0])
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, faults=[fault],
        ) as sharded:
            with pytest.warns(RuntimeWarning, match="restarted shard 0"):
                _run_trace(sharded, planted_windows)
            health = sharded.health()
            registry = sharded.metrics_registry()
            assert sharded.window == len(planted_windows)
        assert health["restarts_total"] == 1
        # Bounded: at most one window of shard-0 items can be lost, and
        # a kill on the very first ingest after a checkpoint loses
        # exactly the one dispatched batch (the rest is salvaged).
        assert 0 < health["items_lost_estimate"] <= window_size
        assert _metric_value(registry, "runtime_items_lost_estimate") == (
            health["items_lost_estimate"]
        )

    def test_end_window_kill_completes(self, planted_windows):
        """A kill on the window-close command loses the shard's open
        window back to the checkpoint but the run still completes."""
        fault = Fault(kind="kill", shard=1, window=6, point="end_window")
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, faults=[fault],
        ) as sharded:
            with pytest.warns(RuntimeWarning, match="restarted shard 1"):
                _run_trace(sharded, planted_windows)
            health = sharded.health()
            assert sharded.window == len(planted_windows)
        assert health["restarts_total"] == 1
        assert health["command_retries"] >= 1


class TestWedgedWorker:
    def test_dropped_reply_triggers_deadline_restart(self, planted_windows):
        """A worker that processes but never replies is declared wedged
        at the reply deadline and restarted; the command is resent."""
        fault = Fault(kind="drop_reply", shard=0, op="end_window", window=2)
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=3.0, faults=[fault],
        ) as sharded:
            with pytest.warns(RuntimeWarning, match="restarted shard 0"):
                _run_trace(sharded, planted_windows[:5])
            health = sharded.health()
            assert sharded.window == 5
        assert health["restarts_total"] == 1
        assert health["command_retries"] >= 1

    def test_slow_worker_under_deadline_is_harmless(self, planted_windows):
        fault = Fault(kind="slow", shard=0, op="end_window", seconds=0.3, window=1)
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, faults=[fault],
        ) as sharded:
            _run_trace(sharded, planted_windows[:4])
            assert sharded.health()["restarts_total"] == 0
            assert sharded.window == 4


class TestSupervisionLimits:
    def test_unsupervised_kill_raises(self, planted_windows):
        fault = Fault(kind="kill", shard=0, window=1, point="end_window")
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, supervised=False, faults=[fault],
        ) as sharded:
            with pytest.raises(RuntimeShardError, match="exited"):
                _run_trace(sharded, planted_windows[:4])

    def test_restart_budget_exhaustion_raises(self, planted_windows):
        fault = Fault(kind="kill", shard=0, window=1, point="end_window")
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, max_restarts=0, faults=[fault],
        ) as sharded:
            with pytest.raises(RuntimeShardError, match="budget exhausted"):
                _run_trace(sharded, planted_windows[:4])

    def test_error_reply_propagates_even_supervised(self, planted_windows):
        """Worker exceptions are bugs, not crashes: never retried."""
        fault = Fault(kind="error", shard=1, op="end_window", window=2)
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, faults=[fault],
        ) as sharded:
            with pytest.raises(RuntimeShardError, match="InjectedFaultError"):
                _run_trace(sharded, planted_windows[:4])

    def test_sparse_checkpoint_interval_still_recovers(self, planted_windows):
        """interval=3 means the restore point can trail the kill by up
        to two windows; the advance fast-forward must cover the gap."""
        fault = Fault(kind="kill", shard=0, window=5, point="end_window")
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            reply_timeout=60.0, auto_checkpoint_interval=3, faults=[fault],
        ) as sharded:
            with pytest.warns(RuntimeWarning, match="restarted shard 0"):
                _run_trace(sharded, planted_windows[:8])
            health = sharded.health()
            assert sharded.window == 8
        assert health["restarts_total"] == 1


class TestClosePath:
    def test_double_close_is_idempotent(self, planted_windows):
        sharded = ShardedXSketch(_config(), n_shards=2, seed=SEED, backend="process")
        _run_trace(sharded, planted_windows[:2])
        sharded.close()
        sharded.close()
        assert sharded.close_errors == []

    def test_clean_close_records_no_errors(self, planted_windows):
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process"
        ) as sharded:
            _run_trace(sharded, planted_windows[:2])
        assert sharded.close_errors == []

    def test_close_after_external_kill_records_error(self, planted_windows):
        """Killing a worker behind the coordinator's back must not make
        close() raise, but the swallowed trouble must be recorded."""
        sharded = ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            supervised=False,
        )
        try:
            _run_trace(sharded, planted_windows[:2])
            os.kill(sharded._workers[0].pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while sharded._workers[0].is_alive() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert sharded.health()["status"] == "degraded"
            with pytest.warns(RuntimeWarning, match="close"):
                sharded.close()
            assert sharded.close_errors
        finally:
            sharded.close()
        registry = collect_sharded(sharded)
        assert _metric_value(registry, "runtime_close_errors_total") >= 1

    def test_health_reports_dead_worker(self, planted_windows):
        with ShardedXSketch(
            _config(), n_shards=2, seed=SEED, backend="process",
            supervised=False,
        ) as sharded:
            _run_trace(sharded, planted_windows[:2])
            assert sharded.health()["status"] == "ok"
            os.kill(sharded._workers[1].pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while sharded._workers[1].is_alive() and time.monotonic() < deadline:
                time.sleep(0.05)
            health = sharded.health()
            assert health["status"] == "degraded"
            assert health["dead_shards"] == [1]
