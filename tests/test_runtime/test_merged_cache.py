"""merged_sketch() memoization and the coordinator→temporal wiring."""

from __future__ import annotations

import pytest

from repro.config import XSketchConfig
from repro.errors import RuntimeShardError
from repro.fitting.simplex import SimplexTask
from repro.runtime.sharded import ShardedXSketch
from repro.temporal import TemporalPolicy, TemporalStore

SEED = 11


def _config(memory_kb=60.0):
    return XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=memory_kb)


def _engine(**kwargs):
    return ShardedXSketch(
        _config(), n_shards=2, seed=SEED, backend="inline", **kwargs
    )


class TestMergedSketchMemo:
    def test_repeated_calls_return_same_object_within_window(self):
        with _engine() as sharded:
            sharded.run_window([f"i{n % 7}" for n in range(100)])
            first = sharded.merged_sketch()
            second = sharded.merged_sketch()
            assert second is first
            assert sharded.merge_count == 1  # one compaction, not two

    def test_new_data_invalidates_the_memo(self):
        with _engine() as sharded:
            sharded.run_window([f"i{n % 7}" for n in range(100)])
            cached = sharded.merged_sketch()
            sharded.ingest_batch(["fresh"])
            sharded.flush_window()
            assert sharded.merged_sketch() is not cached

    def test_window_boundary_invalidates_the_memo(self):
        with _engine() as sharded:
            sharded.run_window(["a", "b", "a"])
            cached = sharded.merged_sketch()
            sharded.flush_window()  # empty window still moves the boundary
            assert sharded.merged_sketch() is not cached

    def test_memoized_sketch_carries_fresh_reports(self, controlled_trace):
        """The memo key is the window id; the report list is refreshed on
        every call so it never lags the coordinator's."""
        with _engine() as sharded:
            for window in controlled_trace.windows():
                sharded.run_window(window)
            merged = sharded.merged_sketch()
            assert merged.reports == sharded.report()
            assert sharded.merged_sketch().reports == sharded.report()

    def test_memo_respects_boundary_only_contract(self):
        with _engine() as sharded:
            sharded.run_window(["a"] * 10)
            sharded.merged_sketch()
            sharded.insert("pending")  # buffered, not yet dispatched
            with pytest.raises(RuntimeShardError):
                sharded.merged_sketch()

    def test_hit_and_miss_counters_track_memo_effectiveness(self):
        """runtime_merged_cache_* source of truth: a rebuild counts one
        miss, every memoized answer counts one hit, and the collector
        mirrors both."""
        from repro.obs.collect import collect_sharded

        with _engine() as sharded:
            assert (sharded.merged_cache_hits, sharded.merged_cache_misses) == (0, 0)
            sharded.run_window([f"i{n % 7}" for n in range(100)])
            sharded.merged_sketch()
            assert (sharded.merged_cache_hits, sharded.merged_cache_misses) == (0, 1)
            sharded.merged_sketch()
            sharded.merged_sketch()
            assert (sharded.merged_cache_hits, sharded.merged_cache_misses) == (2, 1)
            sharded.run_window(["fresh"])  # boundary invalidates
            sharded.merged_sketch()
            assert (sharded.merged_cache_hits, sharded.merged_cache_misses) == (2, 2)
            registry = collect_sharded(sharded)
            assert registry.value("runtime_merged_cache_hits_total") == 2
            assert registry.value("runtime_merged_cache_misses_total") == 2

    def test_slim_summary_rides_the_memo(self):
        """slim_summary() must not force a second shard compaction."""
        with _engine() as sharded:
            base = [f"i{n % 9}" for n in range(80)]
            for window in range(8):
                sharded.run_window(base + ["grower"] * (4 * window + 1))
            summary = sharded.slim_summary()
            assert sharded.merged_cache_misses == 1
            again = sharded.slim_summary()
            assert sharded.merged_cache_misses == 1
            assert sharded.merged_cache_hits == 1
            assert again == summary
            assert summary["window"] == 8
            assert summary["tracked"] == sorted(
                summary["tracked"], key=lambda entry: entry["item"]
            )
            assert summary["tracked_items"] == len(summary["tracked"])


class TestEngineTemporalWiring:
    def test_engine_feeds_store_at_each_boundary(self):
        store = TemporalStore(
            TemporalPolicy(freq_memory_kb=1.0, fidelity_windows=2), seed=SEED
        )
        with _engine(temporal=store) as sharded:
            for window in range(10):
                sharded.run_window([f"i{n % 5}" for n in range(60)])
        assert store.windows_observed == 10
        assert store.items_observed == 600
        assert store.snapshot.tip == 10
        assert store.range_frequency("i0", 0, 9) >= 10 * 60 // 5

    def test_engine_range_reports_match_report_stream(self):
        store = TemporalStore(TemporalPolicy(freq_memory_kb=1.0), seed=SEED)
        with _engine(temporal=store) as sharded:
            base = [f"i{n % 9}" for n in range(80)]
            for window in range(12):
                sharded.run_window(base + ["grower"] * (4 * window + 1))
            assert store.range_reports(0, 11) == sharded.report()

    def test_asof_snapshot_rides_the_memo(self):
        store = TemporalStore(
            TemporalPolicy(freq_memory_kb=1.0, fidelity_windows=3), seed=SEED
        )
        with _engine(temporal=store) as sharded:
            for window in range(8):
                sharded.run_window([f"i{n % 5}" for n in range(40)])
            got = store.sketch_asof(7)
            assert got is not None
            window, sketch = got
            assert window == 7
            assert sketch.window == sharded.window
