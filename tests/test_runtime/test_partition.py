"""KeyPartitioner: determinism, stability, balance, independence."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hashing.family import make_family
from repro.runtime.partition import PARTITION_SEED_SALT, KeyPartitioner


def test_shard_assignment_is_stable():
    partitioner = KeyPartitioner(4, seed=9)
    items = [f"flow-{i}" for i in range(500)] + list(range(500))
    first = [partitioner.shard_of(item) for item in items]
    second = [partitioner.shard_of(item) for item in items]
    assert first == second
    rebuilt = KeyPartitioner(4, seed=9)
    assert [rebuilt.shard_of(item) for item in items] == first


def test_split_preserves_order_and_routes_consistently():
    partitioner = KeyPartitioner(3, seed=2)
    items = [f"k{i % 40}" for i in range(400)]
    parts = partitioner.split(items)
    assert len(parts) == 3
    assert sum(len(part) for part in parts) == len(items)
    for shard, part in enumerate(parts):
        assert all(partitioner.shard_of(item) == shard for item in part)
    # order preserved within a shard
    for part in parts:
        positions = [items.index(item) for item in part[:5]]
        assert positions == sorted(positions)


def test_every_arrival_of_a_key_routes_to_one_shard():
    partitioner = KeyPartitioner(5, seed=123)
    parts = partitioner.split(["dup", "a", "dup", "b", "dup"])
    shard = partitioner.shard_of("dup")
    assert parts[shard].count("dup") == 3
    assert sum(part.count("dup") for part in parts) == 3


@pytest.mark.parametrize("n_shards", [2, 4, 8])
def test_partition_is_roughly_balanced(n_shards):
    partitioner = KeyPartitioner(n_shards, seed=0)
    parts = partitioner.split([f"item-{i}" for i in range(4000)])
    expected = 4000 / n_shards
    for part in parts:
        assert 0.7 * expected <= len(part) <= 1.3 * expected


def test_routing_hash_is_salted_away_from_sketch_hashes():
    # The sketch family at the same base seed must not reproduce the
    # routing hash, or routing would correlate with counter placement.
    partitioner = KeyPartitioner(4, seed=7, hash_family="crc")
    sketch_family = make_family("crc", 7)
    items = [f"flow-{i}" for i in range(200)]
    collisions = sum(
        partitioner.shard_of(item) == sketch_family.hash32(item, 0) % 4
        for item in items
    )
    assert collisions < len(items) * 0.5
    salted = make_family("crc", (7 ^ PARTITION_SEED_SALT) & 0xFFFFFFFF)
    assert all(
        partitioner.shard_of(item) == salted.hash32(item, 0) % 4 for item in items
    )


def test_spec_roundtrip():
    partitioner = KeyPartitioner(6, seed=42, hash_family="murmur")
    rebuilt = KeyPartitioner.from_spec(partitioner.spec())
    items = [f"x{i}" for i in range(100)]
    assert [rebuilt.shard_of(i) for i in items] == [partitioner.shard_of(i) for i in items]


def test_invalid_shard_count_rejected():
    with pytest.raises(ConfigurationError):
        KeyPartitioner(0)
