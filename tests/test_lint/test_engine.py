"""Engine-level tests: suppressions, baseline, selection, rendering, CLI.

The fixture tests pin each rule's behaviour; these pin the machinery
around the rules — the parts that decide whether a finding is shown,
hidden, grandfathered, or fails the build.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import Finding, LintEngine, Severity, lint_source, run_lint
from repro.lint.engine import (
    load_baseline,
    render_github,
    render_json,
    render_text,
)
from repro.lint.findings import BaselineKey
from repro.lint.registry import get_rule, select_rules

REPO_ROOT = Path(__file__).resolve().parents[2]

_ASSERT_SNIPPET = "def check(x):\n    assert x > 0\n"


def _write_module(directory: Path, name: str, source: str) -> Path:
    path = directory / name
    path.write_text(source, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# suppressions


def test_same_line_suppression_hides_finding():
    flagged = lint_source(
        _ASSERT_SNIPPET, module_name="repro.core.example", enable=["assert-stmt"]
    )
    assert [f.rule for f in flagged] == ["assert-stmt"]
    suppressed = lint_source(
        "def check(x):\n"
        "    assert x > 0  # lint: ignore[assert-stmt]\n",
        module_name="repro.core.example",
        enable=["assert-stmt"],
    )
    assert suppressed == []


def test_suppression_is_rule_specific():
    findings = lint_source(
        "def check(x):\n"
        "    assert x > 0  # lint: ignore[broad-except]\n",
        module_name="repro.core.example",
        enable=["assert-stmt"],
    )
    assert [f.rule for f in findings] == ["assert-stmt"]


def test_suppression_accepts_multiple_rules():
    findings = lint_source(
        "def check(x):\n"
        "    assert x  # lint: ignore[assert-stmt, broad-except]\n",
        module_name="repro.core.example",
        enable=["assert-stmt"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# baseline


def test_baseline_hides_matching_finding(tmp_path):
    # The module has to land inside a src-scoped dotted path for the
    # rule to apply, so lay out a src/ tree under tmp_path.
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    module = _write_module(src, "victim.py", _ASSERT_SNIPPET)
    baseline = _write_module(
        tmp_path,
        "baseline.txt",
        "assert-stmt src/repro/core/victim.py::check  # justified\n",
    )
    engine = LintEngine(
        root=tmp_path, enable=["assert-stmt"], baseline_path=baseline
    )
    findings = engine.run([module])
    assert findings == []
    assert [f.rule for f in engine.baselined] == ["assert-stmt"]
    assert engine.stale_baseline == []


def test_stale_baseline_entry_is_reported(tmp_path):
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    module = _write_module(src, "clean.py", "X = 1\n")
    baseline = _write_module(
        tmp_path,
        "baseline.txt",
        "assert-stmt src/repro/core/clean.py::check  # fixed long ago\n",
    )
    engine = LintEngine(
        root=tmp_path, enable=["assert-stmt"], baseline_path=baseline
    )
    findings = engine.run([module])
    assert findings == []
    assert engine.stale_baseline == [
        BaselineKey("assert-stmt", "src/repro/core/clean.py", "check")
    ]
    report = render_text(findings, engine)
    assert "stale baseline entry" in report


def test_stale_baseline_fails_strict(tmp_path):
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    _write_module(src, "clean.py", "X = 1\n")
    _write_module(
        tmp_path,
        "lint-baseline.txt",
        "assert-stmt src/repro/core/clean.py::check  # gone\n",
    )
    code, _ = run_lint(["src"], root=tmp_path, strict=True)
    assert code == 1
    code, _ = run_lint(["src"], root=tmp_path, strict=False)
    assert code == 0


def test_load_baseline_parses_reasons_and_skips_junk(tmp_path):
    path = _write_module(
        tmp_path,
        "baseline.txt",
        "# a comment line\n"
        "\n"
        "not-a-valid-entry\n"
        "assert-stmt src/x.py::f  # the reason\n",
    )
    entries = load_baseline(path)
    assert entries == {
        BaselineKey("assert-stmt", "src/x.py", "f"): "the reason"
    }


def test_repo_baseline_entries_all_carry_reasons():
    entries = load_baseline(REPO_ROOT / "lint-baseline.txt")
    assert entries, "repo baseline should exist"
    for key, reason in entries.items():
        assert reason, f"baseline entry {key.render()} has no inline reason"


# ----------------------------------------------------------------------
# parse errors and selection


def test_syntax_error_fails_even_without_strict(tmp_path):
    _write_module(tmp_path, "broken.py", "def oops(:\n")
    code, report = run_lint([str(tmp_path)], root=tmp_path, strict=False)
    assert code == 1
    assert "syntax error" in report


def test_non_utf8_file_reports_clean_diagnostic(tmp_path):
    path = tmp_path / "latin.py"
    path.write_bytes(b"# caf\xe9\nX = 1\n")
    engine = LintEngine(root=tmp_path, enable=["assert-stmt"])
    findings = engine.run([path])
    assert findings == []
    assert len(engine.errors) == 1
    assert "not UTF-8" in engine.errors[0]
    code, report = run_lint([str(path)], root=tmp_path, strict=False)
    assert code == 1  # unparseable files always fail, like syntax errors
    assert "not UTF-8" in report


def test_null_byte_file_reports_clean_diagnostic(tmp_path):
    path = tmp_path / "nulls.py"
    path.write_bytes(b"X = 1\x00\n")
    engine = LintEngine(root=tmp_path, enable=["assert-stmt"])
    findings = engine.run([path])
    assert findings == []
    assert len(engine.errors) == 1
    # SyntaxError on current CPython, bare ValueError on older ones —
    # either way a one-line diagnostic, never a traceback
    assert engine.errors[0].startswith("nulls.py")
    assert "null bytes" in engine.errors[0]


def test_empty_module_lints_clean(tmp_path):
    _write_module(tmp_path, "empty.py", "")
    code, report = run_lint([str(tmp_path)], root=tmp_path, strict=True)
    assert code == 0, report


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError, match="unknown rule"):
        select_rules(enable=["no-such-rule"])
    with pytest.raises(KeyError, match="unknown rule"):
        select_rules(disable=["no-such-rule"])


def test_disable_drops_rule():
    chosen = select_rules(disable=["assert-stmt"])
    assert get_rule("assert-stmt") not in chosen
    assert get_rule("broad-except") in chosen


# ----------------------------------------------------------------------
# rendering


def test_render_json_shape():
    findings = [
        Finding(
            path="src/x.py",
            line=3,
            rule="assert-stmt",
            message="msg",
            severity=Severity.ERROR,
            symbol="f",
        )
    ]
    payload = json.loads(render_json(findings))
    assert payload["summary"]["total"] == 1
    assert payload["summary"]["errors"] == 1
    assert payload["summary"]["warnings"] == 0
    (entry,) = payload["findings"]
    assert entry["path"] == "src/x.py"
    assert entry["line"] == 3
    assert entry["rule"] == "assert-stmt"
    assert entry["severity"] == "error"


def test_render_text_summary_line():
    report = render_text([])
    assert report.splitlines()[-1] == "0 finding(s): 0 error(s), 0 warning(s)"


def test_render_github_annotation_shape():
    findings = [
        Finding(
            path="src/x.py",
            line=3,
            col=7,
            rule="assert-stmt",
            message="first line\nsecond % line",
            severity=Severity.ERROR,
            symbol="f",
        ),
        Finding(
            path="src/y.py",
            line=9,
            rule="missing-slots",
            message="warn msg",
            severity=Severity.WARNING,
            symbol="C",
        ),
    ]
    lines = render_github(findings).splitlines()
    assert lines[0] == (
        "::error file=src/x.py,line=3,col=7,"
        "title=lint [assert-stmt]::first line%0Asecond %25 line"
    )
    assert lines[1].startswith("::warning file=src/y.py,line=9,")
    assert lines[-1] == "2 finding(s) annotated"


def test_render_github_reports_parse_errors_and_stale_entries(tmp_path):
    _write_module(tmp_path, "broken.py", "def oops(:\n")
    code, report = run_lint(
        [str(tmp_path)], root=tmp_path, strict=False, output_format="github"
    )
    assert code == 1
    assert report.splitlines()[0].startswith("::error title=lint::")


def test_cli_lint_github_format(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["lint", "--strict", "--format", "github", "src"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "::error" not in out


def test_repo_baseline_has_no_stale_entries():
    """The baseline may only shrink: every entry must still match a
    live finding on today's tree (delete entries whose finding is
    fixed — run ``repro lint --strict`` to see which)."""
    engine = LintEngine(root=REPO_ROOT)
    engine.run(
        [REPO_ROOT / part for part in ("src", "tests", "benchmarks", "examples")]
    )
    assert engine.errors == []
    assert engine.stale_baseline == []


# ----------------------------------------------------------------------
# CLI


def test_cli_lint_strict_clean_repo_exits_zero(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(
        ["lint", "--strict", "src", "tests", "benchmarks", "examples"]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "0 error(s)" in out


def test_cli_lint_json_format(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["lint", "--strict", "--format", "json", "src"])
    out = capsys.readouterr().out
    assert code == 0, out
    payload = json.loads(out)
    assert payload["summary"]["errors"] == 0
    assert payload["summary"]["stale_baseline"] == []


def test_cli_lint_rules_listing(capsys):
    code = main(["lint", "--rules"])
    out = capsys.readouterr().out
    assert code == 0
    assert "assert-stmt" in out
    assert "mergeable-protocol" in out


def test_cli_lint_strict_fails_on_finding(tmp_path, capsys):
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    _write_module(src, "dirty.py", _ASSERT_SNIPPET)
    code = main(
        ["lint", "--strict", "--root", str(tmp_path), str(src / "dirty.py")]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "[assert-stmt]" in out
    # Without --strict the same findings report but do not fail.
    code = main(["lint", "--root", str(tmp_path), str(src / "dirty.py")])
    assert code == 0
