"""Golden fixture tests: every rule, exact rule-ids and line numbers.

Each rule has a ``fixtures/<rule>_bad.py`` whose violations are marked
in-line with ``# EXPECT: <rule-id>`` comments, and a
``fixtures/<rule>_good.py`` that must lint clean.  The tests compare
the *exact* ``(line, rule)`` set against the markers, so a rule that
fires on the wrong line — or stops firing — fails loudly.

The fixtures directory is in the engine's default excludes: the bad
files are deliberate violations and must never reach a real lint run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Set, Tuple

import pytest

from repro.lint import iter_rule_ids, lint_source
from repro.lint.engine import DEFAULT_EXCLUDES

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: dotted module name each rule's fixtures are linted as — this is what
#: routes the snippet into the rule's package scope (hot packages,
#: src-only, sketch substrate, the designated blocking site).
MODULE_FOR_RULE = {
    "broad-except": "repro.service.example",
    "except-pass": "repro.service.example",
    "blocking-get": "repro.runtime.worker",
    "spawn-safety": "repro.runtime.example",
    "unbounded-async-queue": "repro.replica.example",
    "wall-clock": "repro.core.example",
    "unseeded-rng": "repro.streams.example",
    "mergeable-protocol": "repro.sketch.example",
    "metric-name": "repro.obs.example",
    "mutable-default": "repro.service.example",
    "assert-stmt": "repro.core.example",
    "hot-loop-alloc": "repro.sketch.example",
    "missing-slots": "repro.sketch.example",
    "span-unclosed": "repro.service.example",
    # contract families (project-wide rules, run against a one-module
    # project whose module name routes them into the right package)
    "command-protocol": "repro.runtime.example",
    "wire-frames": "repro.replica.example",
    "metric-surface": "repro.obs.example",
    "snapshot-variants": "repro.core.example",
    "surface-drift": "repro.service.example",
}

ALL_RULES = sorted(MODULE_FOR_RULE)


def _expected_markers(source: str) -> Set[Tuple[int, str]]:
    """(line, rule-id) pairs declared by ``# EXPECT:`` comments."""
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        marker = line.partition("# EXPECT:")[2]
        for rule_id in marker.split(","):
            if rule_id.strip():
                expected.add((lineno, rule_id.strip()))
    return expected


def _lint_fixture(name: str, rule_id: str):
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    findings = lint_source(
        source,
        module_name=MODULE_FOR_RULE[rule_id],
        path=f"{name}.py",
        enable=[rule_id],
        root=REPO_ROOT,
    )
    return source, findings


def test_rule_registry_matches_fixture_table():
    assert list(iter_rule_ids()) == ALL_RULES


def test_every_rule_has_fixture_pair():
    for rule_id in ALL_RULES:
        stem = rule_id.replace("-", "_")
        assert (FIXTURES / f"{stem}_bad.py").is_file(), rule_id
        assert (FIXTURES / f"{stem}_good.py").is_file(), rule_id


def test_fixtures_are_excluded_from_default_runs():
    assert any(
        part in str(FIXTURES).replace("\\", "/") for part in DEFAULT_EXCLUDES
    )


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_bad_fixture_findings_match_markers_exactly(rule_id):
    stem = rule_id.replace("-", "_")
    source, findings = _lint_fixture(f"{stem}_bad", rule_id)
    expected = _expected_markers(source)
    assert expected, f"{stem}_bad.py declares no EXPECT markers"
    actual = {(finding.line, finding.rule) for finding in findings}
    assert actual == expected
    assert all(finding.rule == rule_id for finding in findings)


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_good_fixture_is_clean(rule_id):
    stem = rule_id.replace("-", "_")
    source, findings = _lint_fixture(f"{stem}_good", rule_id)
    assert not _expected_markers(source), "good fixtures carry no markers"
    assert findings == []


@pytest.mark.parametrize("rule_id", ALL_RULES)
def test_findings_carry_addressable_positions(rule_id):
    stem = rule_id.replace("-", "_")
    _, findings = _lint_fixture(f"{stem}_bad", rule_id)
    for finding in findings:
        assert finding.line >= 1
        assert finding.symbol
        assert f"[{rule_id}]" in finding.render()
