"""Contract-layer tests: the project index, site extraction, gating.

The golden fixtures pin each family's findings line-by-line; these pin
the machinery underneath — constant resolution across modules, the
send/receive extraction helpers, and the both-sides-present gates that
keep partial lint runs from reporting half a contract as drift.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint.context import ModuleInfo, ProjectContext
from repro.lint.engine import LintEngine
from repro.lint.graph.index import ProjectIndex
from repro.lint.graph.sites import (
    collected_reply_reads,
    compare_literals,
    frame_dicts,
    receiver_text,
    tuple_first_strings,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _module(name: str, source: str) -> ModuleInfo:
    source = textwrap.dedent(source)
    return ModuleInfo(
        path=name.replace(".", "/") + ".py",
        module=name,
        tree=ast.parse(source),
        lines=source.splitlines(),
    )


def _project(*modules: ModuleInfo) -> ProjectContext:
    project = ProjectContext(root=REPO_ROOT)
    for info in modules:
        project.add_module(info)
    return project


def _write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# site extraction


def test_receiver_text_erases_subscripts():
    call = ast.parse("self._command_queues[shard].put(x)").body[0].value
    assert receiver_text(call.func) == "self._command_queues.put"


def test_tuple_first_strings_walks_ifexp_arms():
    node = ast.parse('("a", ctx) if flag else ("b",)').body[0].value
    assert {op for op, _ in tuple_first_strings(node)} == {"a", "b"}


def test_compare_literals_covers_eq_both_sides_and_membership():
    func = ast.parse(
        'def f(op):\n'
        '    if op == "x" or "y" == op or op in ("z", "w"):\n'
        '        pass\n'
    ).body[0]
    assert {v for v, _ in compare_literals(func, "op")} == {"x", "y", "z", "w"}


def test_collected_reads_survive_nested_assignment():
    # Regression: the assignment sits deeper (inside `with`) than the
    # loop that consumes it, so a single breadth-first walk visits the
    # `for` before the binding it depends on.
    func = ast.parse(
        "def flush(self):\n"
        "    with self.profiler.phase('shard'):\n"
        "        payloads = self._collect('end_window')\n"
        "    for payload in payloads:\n"
        "        use(payload['reports'], payload.get('span'))\n"
    ).body[0]
    keys = {k for k, _ in collected_reply_reads(func, ("_collect",))}
    assert keys == {"reports", "span"}


def test_frame_dicts_require_literal_type_tag():
    tree = ast.parse(
        'a = {"type": "delta", "seq": 1}\n'
        'b = {"type": kind}\n'
        'c = {"seq": 2}\n'
    )
    assert [ftype for ftype, _ in frame_dicts(tree)] == ["delta"]


# ----------------------------------------------------------------------
# the project index


def test_index_resolves_strings_through_import_chains():
    a = _module("repro.obs.profile", 'PHASE_METRIC = "pipeline_phase_seconds"\n')
    b = _module(
        "repro.runtime.sharded",
        "from repro.obs.profile import PHASE_METRIC\n",
    )
    index = ProjectIndex.of(_project(a, b))
    name_node = ast.Name(id="PHASE_METRIC", ctx=ast.Load())
    assert (
        index.resolve_string("repro.runtime.sharded", name_node)
        == "pipeline_phase_seconds"
    )
    assert index.resolve_string("repro.runtime.sharded", ast.Name(id="NOPE")) is None


def test_index_is_cached_per_project_and_skips_foreign_modules():
    info = _module("repro.core.thing", "X = 1\n")
    foreign = _module("tests.test_thing", "Y = 2\n")
    project = _project(info, foreign)
    index = ProjectIndex.of(project)
    assert ProjectIndex.of(project) is index
    assert set(index.modules) == {"repro.core.thing"}


# ----------------------------------------------------------------------
# gating: half a contract is never drift


def test_worker_without_coordinator_reports_nothing(tmp_path):
    _write(
        tmp_path,
        "src/repro/runtime/worker.py",
        """
        def shard_worker_main(command_queue, result_queue):
            def reply(payload):
                result_queue.put(payload)
            op = command_queue.get()[0]
            if op == "ingest":
                reply({"survivors": 1})
        """,
    )
    engine = LintEngine(root=tmp_path, enable=["command-protocol"])
    assert engine.run([tmp_path / "src"]) == []


def test_dispatch_without_handler_reports_unknown_op(tmp_path):
    _write(
        tmp_path,
        "src/repro/runtime/worker.py",
        """
        def shard_worker_main(command_queue, result_queue):
            op = command_queue.get()[0]
            if op == "ingest":
                pass
        """,
    )
    _write(
        tmp_path,
        "src/repro/runtime/sharded.py",
        """
        class Coordinator:
            def kick(self):
                self.command_queue.put(("ingest", []))
                self.command_queue.put(("mystery",))
        """,
    )
    engine = LintEngine(root=tmp_path, enable=["command-protocol"])
    findings = engine.run([tmp_path / "src"])
    assert len(findings) == 1
    assert "'mystery'" in findings[0].message
    assert findings[0].path == "src/repro/runtime/sharded.py"


def test_stale_doc_route_anchors_on_the_server_module(tmp_path):
    _write(
        tmp_path,
        "src/repro/service/server.py",
        """
        def handle(path):
            if path == "/reports":
                return "ok"
            return "missing"
        """,
    )
    _write(
        tmp_path,
        "docs/SERVICE.md",
        """
        | Route | Body |
        |---|---|
        | `GET /reports` | the reports |
        | `GET /ghost` | gone since v2 |
        """,
    )
    engine = LintEngine(root=tmp_path, enable=["surface-drift"])
    findings = engine.run([tmp_path / "src"])
    assert len(findings) == 1
    assert findings[0].path == "docs/SERVICE.md"
    assert "/ghost" in findings[0].message
