"""Slotted per-item records; helpers hoisted to module level."""


class _Slotted:
    __slots__ = ("count",)

    def __init__(self, count):
        self.count = count


def _keyed(entry):
    return entry


class Tracker:
    def __init__(self):
        self.entries = {}

    def insert(self, item, count=1):
        entry = _Slotted(count)
        self.entries[item] = _keyed(entry)
