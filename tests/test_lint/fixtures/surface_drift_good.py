"""Routes and span phases matching their documentation."""

PHASE_NAMES = ("flush",)


def handle(path, profiler):
    if path == "/healthz":
        with profiler.phase("flush"):
            return "ok"
    return "missing"
