"""Frame fields and export/import keys out of sync (lint fixture)."""


def publish_delta(seq, reports, span):
    frame = {
        "type": "delta",
        "seq": seq,
        "reports": reports,
        "shadow": None,  # EXPECT: wire-frames
    }
    frame["span"] = span
    return frame


def apply_frame(frame):
    if frame["type"] != "delta":
        return None
    seq = frame["seq"]
    reports = frame["reports"]
    span = frame.get("span")
    window = frame["window"]  # EXPECT: wire-frames
    return seq, reports, span, window


def export_example(state):
    return {
        "version": 1,
        "items": list(state),
        "orphan": 0,  # EXPECT: wire-frames
    }


def import_example(record):
    items = record["items"]
    version = record["version"]
    phantom = record["phantom"]  # EXPECT: wire-frames
    return version, items, phantom
