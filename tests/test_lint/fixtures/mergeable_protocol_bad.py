"""A sketch without merge() (lint fixture, never executed)."""


class UnmergeableSketch:  # EXPECT: mergeable-protocol
    def __init__(self):
        self.counts = {}

    def insert(self, item, count=1):
        self.counts[item] = self.counts.get(item, 0) + count

    def query(self, item):
        return self.counts.get(item, 0)
