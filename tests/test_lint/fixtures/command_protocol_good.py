"""Dispatched ops, handlers and reply keys all matched."""


def shard_worker_main(command_queue, result_queue):
    def reply(payload):
        result_queue.put(("reply", 0, payload))

    while True:
        command = command_queue.get()
        op = command[0]
        if op == "ingest":
            reply({"survivors": 1})
        elif op == "stop":
            break


class ExampleCoordinator:
    def __init__(self, queues):
        self.command_queue = queues

    def _collect(self, kind):
        return []

    def run_window(self, items):
        self.command_queue.put(("ingest", items))
        self.command_queue.put(("stop",))
        payloads = self._collect("ingest")
        total = 0
        for payload in payloads:
            total += payload["survivors"]
        return total
