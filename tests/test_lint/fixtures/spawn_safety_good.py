"""Spawn-safe worker construction: module-level target, context locks."""
import multiprocessing


def run(queue, lock):
    pass


def build(ctx):
    lock = ctx.Lock()
    return multiprocessing.Process(target=run, args=(ctx.Queue(), lock))
