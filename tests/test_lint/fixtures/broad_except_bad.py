"""Deliberate broad-except violations (lint fixture, never executed)."""
import contextlib


def blanket():
    try:
        work()
    except Exception:  # EXPECT: broad-except
        cleanup()


def bare():
    try:
        work()
    except:  # EXPECT: broad-except
        cleanup()


def tupled():
    try:
        work()
    except (ValueError, Exception):  # EXPECT: broad-except
        cleanup()


def smothered():
    with contextlib.suppress(Exception):  # EXPECT: broad-except
        work()
