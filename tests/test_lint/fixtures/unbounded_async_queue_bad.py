"""Deliberate unbounded-async-queue violations (lint fixture, never executed)."""

import asyncio


class Connection:
    def __init__(self):
        self.queue = asyncio.Queue()  # EXPECT: unbounded-async-queue


def build_backlog():
    return asyncio.PriorityQueue()  # EXPECT: unbounded-async-queue


def build_stack():
    return asyncio.LifoQueue()  # EXPECT: unbounded-async-queue
