"""Constant-resolved metric names gone wrong (lint fixture)."""

PHANTOM_METRIC = "example_phantom_total"
BAD_NAME = "0bad-example"


def register_instruments(registry):
    registry.counter(PHANTOM_METRIC, "help text")  # EXPECT: metric-surface
    registry.gauge(BAD_NAME, "help text")  # EXPECT: metric-surface
    registry.counter("example_clash_total", "help text")  # EXPECT: metric-surface
    registry.gauge("example_clash_total", "help text")  # EXPECT: metric-surface
