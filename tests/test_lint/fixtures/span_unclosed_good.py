"""Span lifecycle done right (lint fixture, never executed)."""


def scoped(tracer):
    with tracer.span("window.flush", window=7) as span:
        return span.context


def finally_closed(tracer):
    span = tracer.span("coordinator.end_window")
    try:
        return span.context
    finally:
        span.close()


def pre_timed(tracer, ctx, elapsed):
    # one-shot events with already-measured timing bypass Span entirely
    tracer.emit(
        "shard.end_window",
        trace_id=ctx.trace_id,
        parent_id=ctx.span_id,
        ts=ctx.ts,
        dur=elapsed,
    )
