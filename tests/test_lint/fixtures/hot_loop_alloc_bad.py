"""Un-slotted allocation inside a per-item path (lint fixture)."""


class _Record:
    def __init__(self, count):
        self.count = count


class Tracker:
    def __init__(self):
        self.entries = {}

    def insert(self, item, count=1):
        entry = _Record(count)  # EXPECT: hot-loop-alloc
        keyed = lambda: entry  # EXPECT: hot-loop-alloc
        self.entries[item] = keyed
