"""Bounded or non-asyncio queues that must not be flagged."""

import asyncio
import multiprocessing
import queue


class Connection:
    def __init__(self, capacity):
        self.queue = asyncio.Queue(maxsize=capacity)


def build_backlog():
    return asyncio.PriorityQueue(maxsize=64)


def positional_bound():
    return asyncio.LifoQueue(16)


def other_queues(ctx: multiprocessing.context.BaseContext):
    # Not asyncio: process queues are bounded by the OS pipe, and
    # queue.Queue blocking reads are blocking-get's business.
    return ctx.Queue(), queue.Queue()
