"""Deterministic alternatives: injected RNG, monotonic measurement."""
import random
import time


def measure():
    return time.monotonic()


def elapsed():
    return time.perf_counter()


def draw(rng: random.Random):
    return rng.random()


def stamped(now: float):
    return now + 1.0
