"""A record class without __slots__ in a hot package (lint fixture)."""


class Cell:  # EXPECT: missing-slots
    def __init__(self, count, error):
        self.count = count
        self.error = error
