"""Deliberate unseeded-RNG violations (lint fixture, never executed)."""
import random

import numpy as np


def make_rng():
    return random.Random()  # EXPECT: unseeded-rng


def make_np():
    return np.random.default_rng()  # EXPECT: unseeded-rng


def scramble(items):
    random.shuffle(items)  # EXPECT: unseeded-rng
