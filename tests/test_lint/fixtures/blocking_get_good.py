"""Bounded or designated blocking calls that must not be flagged."""


def drain(result_queue):
    return result_queue.get(timeout=1.0)


def lookup(table, key):
    return table.get(key)


def read(sock):
    return sock.recv(4096)


async def apull(queue):
    return await queue.get()


def shard_worker_main(command_queue):
    # Designated blocking site: the coordinator owns this loop's liveness.
    return command_queue.get()
