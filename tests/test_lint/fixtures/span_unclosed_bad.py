"""Deliberate span-lifecycle violations (lint fixture, never executed)."""


def leak_scoped(tracer):
    span = tracer.span("window.flush")  # EXPECT: span-unclosed
    span.attrs["window"] = 7
    return span


def leak_constructed(tracer, ctx):
    from repro.obs.spans import Span

    return Span(tracer, "merge", ctx.trace_id, ctx.span_id, {})  # EXPECT: span-unclosed


def close_outside_finally(tracer):
    span = tracer.span("coordinator.end_window")  # EXPECT: span-unclosed
    do_work()
    span.close()  # an exception in do_work() skips this close


def do_work():
    raise RuntimeError("boom")
