"""Merge resolved directly, via inheritance, or not required (abstract)."""
import abc


class AbstractSketch(abc.ABC):
    @abc.abstractmethod
    def insert(self, item, count=1):
        ...

    @abc.abstractmethod
    def query(self, item):
        ...


class MergeableSketch(AbstractSketch):
    def insert(self, item, count=1):
        ...

    def query(self, item):
        ...

    def merge(self, other):
        return self


class InheritsMerge(MergeableSketch):
    def insert(self, item, count=2):
        ...
