"""Valid, documented metric registrations."""


def register_metrics(registry):
    registry.counter(
        "xsketch_windows_total",
        "windows closed by the sketch",
    )
    registry.counter(
        "xsketch_stage1_promotions_total",
        "promotions (Potential reached G)",
    )
