"""Deliberate mutable-default violations (lint fixture, never executed)."""


def extend(values, extra=[]):  # EXPECT: mutable-default
    extra.extend(values)
    return extra


def tally(counts={}):  # EXPECT: mutable-default
    return counts


def collect(*, seen=set()):  # EXPECT: mutable-default
    return seen


def chronicle(log=list()):  # EXPECT: mutable-default
    return log
