"""Deliberate wall-clock/global-RNG violations in a hot package."""
import random
import time
from datetime import datetime


def stamp():
    return time.time()  # EXPECT: wall-clock


def when():
    return datetime.now()  # EXPECT: wall-clock


def jitter():
    return random.random()  # EXPECT: wall-clock


def reseed():
    random.seed(0)  # EXPECT: wall-clock
