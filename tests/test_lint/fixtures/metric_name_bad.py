"""Invalid and undocumented metric names (lint fixture, never executed)."""


def register_metrics(registry):
    registry.counter("bad metric name", "spaces violate the grammar")  # EXPECT: metric-name
    registry.gauge("repro_lint_fixture_undocumented_gauge", "absent from the doc")  # EXPECT: metric-name
