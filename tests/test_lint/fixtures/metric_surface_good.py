"""A constant-resolved name that is valid, documented and one-kinded."""

WINDOW_METRIC = "xsketch_windows_total"


def register_instruments(registry):
    registry.counter(WINDOW_METRIC, "windows closed")
