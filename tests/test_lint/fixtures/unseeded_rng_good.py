"""Seeded, injected randomness."""
import random

import numpy as np


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def make_np(seed: int):
    return np.random.default_rng(seed)


def scramble(items, rng: random.Random):
    rng.shuffle(items)
