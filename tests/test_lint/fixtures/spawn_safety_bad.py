"""Deliberate spawn-safety violations (lint fixture, never executed)."""
import multiprocessing
import threading


def run(queue):
    pass


def inline_lambda():
    return multiprocessing.Process(target=lambda: None)  # EXPECT: spawn-safety


def named_lambda():
    worker = lambda: None
    return multiprocessing.Process(target=worker)  # EXPECT: spawn-safety


def inline_lock():
    return multiprocessing.Process(target=run, args=(threading.Lock(),))  # EXPECT: spawn-safety


def closure_target():
    def inner():
        pass

    return multiprocessing.Process(target=inner)  # EXPECT: spawn-safety
