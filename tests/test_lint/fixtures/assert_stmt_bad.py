"""Deliberate assert-as-validation violations (lint fixture)."""


def check(value):
    assert value >= 0, "value must be non-negative"  # EXPECT: assert-stmt
    return value


class Gate:
    def admit(self, token):
        assert token is not None  # EXPECT: assert-stmt
        return token
