"""Runtime validation that survives python -O."""


def check(value):
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return value


class Gate:
    def admit(self, token):
        if token is None:
            raise RuntimeError("token must be set")
        return token
