"""Every published field read, every exported key imported back."""


def publish_delta(seq, reports, span):
    frame = {
        "type": "delta",
        "seq": seq,
        "reports": reports,
    }
    frame["span"] = span
    return frame


def apply_frame(frame):
    if frame["type"] != "delta":
        return None
    seq = frame["seq"]
    reports = frame["reports"]
    span = frame.get("span")
    return seq, reports, span


def export_example(state):
    return {
        "version": 1,
        "items": list(state),
    }


def import_example(record):
    version = record["version"]
    items = record["items"]
    return version, items
