"""Routes and span phases drifting from their docs (lint fixture)."""

PHASE_NAMES = ("flush", "phantom")  # EXPECT: surface-drift


def handle(path, profiler):
    if path == "/healthz":
        with profiler.phase("flush"):
            return "ok"
    if path == "/shadow":  # EXPECT: surface-drift
        profiler.observe("rogue", 1.0)  # EXPECT: surface-drift
        return "shadow"
    return "missing"
