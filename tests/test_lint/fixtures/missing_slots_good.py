"""Slotted records; default-bearing dataclasses are exempt on 3.9."""
from dataclasses import dataclass


class Cell:
    __slots__ = ("count", "error")

    def __init__(self, count, error):
        self.count = count
        self.error = error


@dataclass(frozen=True)
class Geometry:
    width: int = 8
    depth: int = 3
