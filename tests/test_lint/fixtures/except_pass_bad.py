"""Deliberate except-pass violations (lint fixture, never executed)."""


def swallow():
    try:
        work()
    except ValueError:  # EXPECT: except-pass
        pass


def swallow_many():
    try:
        work()
    except (OSError, KeyError):  # EXPECT: except-pass
        pass
        pass
