"""Immutable defaults; mutables constructed inside the body."""


def extend(values, extra=None):
    result = list(extra) if extra is not None else []
    result.extend(values)
    return result


def label(name, suffix=""):
    return name + suffix


def pick(choices=(1, 2, 3)):
    return choices[0]
