"""Engine/variant/manifest loop left open (lint fixture)."""

ENGINE_NAMES = ("alpha", "beta")  # EXPECT: snapshot-variants
VARIANT_TO_ENGINE = {"fast": "alpha", "slow": "ghost"}  # EXPECT: snapshot-variants
_VARIANTS = {"FastSketch": "fast", "SlowSketch": "slow"}


def make_engine(engine, config):
    if engine == "alpha":
        return object()
    if engine == "ghost":  # EXPECT: snapshot-variants
        return object()
    raise ValueError(engine)


def restore_example(variant, record):
    if variant == "fast":
        return record
    if variant == "legacy":  # EXPECT: snapshot-variants
        return record
    raise ValueError(variant)


def save_example(path, state):
    manifest = {"format_version": 1, "orphan_key": 2}  # EXPECT: snapshot-variants
    path.write_text(str(manifest))


def load_example(record):
    manifest = record
    version = manifest["format_version"]
    missing = manifest["missing_key"]  # EXPECT: snapshot-variants
    return version, missing
