"""Broad handlers done right: specific, surfaced, re-raised, or justified."""
import logging

logger = logging.getLogger(__name__)


def specific():
    try:
        work()
    except ValueError:
        cleanup()


def surfaced():
    try:
        work()
    except Exception:
        logger.exception("work failed")


def reraised():
    try:
        work()
    except Exception:
        cleanup()
        raise


def justified():
    try:
        work()
    except Exception:  # pragma: fixture demo of a justified defensive path
        cleanup()
