"""Engines, variants, arms and manifest keys all closed."""

ENGINE_NAMES = ("alpha",)
VARIANT_TO_ENGINE = {"fast": "alpha"}
_VARIANTS = {"FastSketch": "fast"}


def make_engine(engine, config):
    if engine == "alpha":
        return object()
    raise ValueError(engine)


def restore_example(variant, record):
    if variant == "fast":
        return record
    raise ValueError(variant)


def save_example(path, state):
    manifest = {"format_version": 1}
    path.write_text(str(manifest))


def load_example(record):
    manifest = record
    version = manifest["format_version"]
    return version
