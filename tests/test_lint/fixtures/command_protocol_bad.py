"""Command-protocol drift on both queues (lint fixture, never executed)."""


def shard_worker_main(command_queue, result_queue):
    def reply(payload):
        result_queue.put(("reply", 0, payload))

    while True:
        command = command_queue.get()
        op = command[0]
        if op == "ingest":
            reply({"survivors": 1, "evicted": 2})  # EXPECT: command-protocol
        elif op == "compact":  # EXPECT: command-protocol
            reply({"survivors": 0})
        elif op == "stop":
            break


class ExampleCoordinator:
    def __init__(self, queues):
        self.command_queue = queues

    def _collect(self, kind):
        return []

    def run_window(self, items):
        self.command_queue.put(("ingest", items))
        self.command_queue.put(("end_window",))  # EXPECT: command-protocol
        self.command_queue.put(("stop",))
        payloads = self._collect("ingest")
        total = 0
        for payload in payloads:
            total += payload["survivors"] + payload["missing"]  # EXPECT: command-protocol
        return total
