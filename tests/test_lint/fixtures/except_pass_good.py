"""Silent-skip intent made greppable with contextlib.suppress."""
import contextlib


def suppressed():
    with contextlib.suppress(ValueError):
        work()


def handled():
    try:
        work()
    except ValueError:
        recover()
