"""Deliberate blocking-get violations (lint fixture, never executed)."""


def drain(result_queue):
    return result_queue.get()  # EXPECT: blocking-get


def receive(conn):
    return conn.recv()  # EXPECT: blocking-get


class Coordinator:
    def collect(self):
        return self.queue.get()  # EXPECT: blocking-get
