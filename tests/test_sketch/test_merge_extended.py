"""Merge semantics of the remaining mergeable sketches.

``test_merge.py`` covers the counter-array family (CM / Count / CU /
Tower and the windowed wrappers); this module covers the six sketches
whose merges are *not* plain counter addition:

- CSM: counter-wise add with summed ``total_insertions`` (exact);
- ColdFilter: layer-wise saturating add (bounded undercount, at most
  the layer-1 threshold per merged peer);
- LogLogFilter: register-wise max (union rule for rank registers);
- ElasticSketch: per-bucket election with loser spill to the light part
  (monotone — no estimate decreases);
- MVSketch: Boyer-Moore vote combine (one-sided estimates survive);
- SpaceSaving: Agarwal et al. union with min-count floors (the
  ``count - error <= true <= count`` guarantee survives).
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import MergeError
from repro.sketch.cm import CMSketch
from repro.sketch.coldfilter import ColdFilter
from repro.sketch.csm import CSMSketch
from repro.sketch.elastic import ElasticSketch
from repro.sketch.loglogfilter import LogLogFilter
from repro.sketch.mv import MVSketch
from repro.sketch.spacesaving import SpaceSaving

SEED = 77


def _split_stream(n_items=120, n_arrivals=6000, rng_seed=5):
    """A heavy-tailed stream cut in two halves, plus its exact counts."""
    rng = random.Random(rng_seed)
    items = [f"flow-{i}" for i in range(n_items)]
    stream = [
        items[min(rng.randrange(n_items), rng.randrange(n_items))]
        for _ in range(n_arrivals)
    ]
    half = n_arrivals // 2
    return stream[:half], stream[half:], Counter(stream), items


def _fill(sketch, arrivals):
    for item in arrivals:
        sketch.insert(item)
    return sketch


class TestCSMMerge:
    def _make(self):
        return CSMSketch(32768, d=3, seed=SEED)

    def test_merge_adds_counters_and_insertions(self):
        first, second, truth, items = _split_stream()
        part_a = _fill(self._make(), first)
        part_b = _fill(self._make(), second)
        rows_a = [list(array) for array in part_a.arrays]
        rows_b = [list(array) for array in part_b.arrays]
        part_a.merge(part_b)
        for row, (row_a, row_b) in enumerate(zip(rows_a, rows_b)):
            assert list(part_a.arrays[row]) == [
                x + y for x, y in zip(row_a, row_b)
            ]
        assert part_a.total_insertions == len(first) + len(second)

    def test_merged_estimates_track_truth(self):
        # CSM's estimator is unbiased over the random row choices; with
        # this geometry (width 2730, 6000 arrivals) the noise correction
        # is ~2 counts, so merged estimates stay near the exact counts.
        first, second, truth, items = _split_stream()
        merged = _fill(self._make(), first).merge(_fill(self._make(), second))
        for item, count in truth.most_common(10):
            assert abs(merged.query(item) - count) <= max(10, count // 2)

    def test_mismatches_rejected(self):
        with pytest.raises(MergeError):
            self._make().merge(CSMSketch(32768, d=4, seed=SEED))
        with pytest.raises(MergeError):
            self._make().merge(CSMSketch(32768, d=3, seed=SEED + 1))
        with pytest.raises(MergeError):
            self._make().merge(CMSketch(4096, d=3, seed=SEED))


class TestColdFilterMerge:
    def _make(self):
        return ColdFilter(16384, seed=SEED)

    def test_merge_is_monotone_and_bounded_undercount(self):
        first, second, truth, items = _split_stream()
        part_a = _fill(self._make(), first)
        part_b = _fill(self._make(), second)
        before = {
            item: max(part_a.query(item), part_b.query(item)) for item in items
        }
        threshold = part_a.threshold
        part_a.merge(part_b)
        for item in items:
            estimate = part_a.query(item)
            # saturating add never loses a side's own evidence
            assert estimate >= before[item]
            # the documented caveat: an item whose combined layer-1
            # count crosses the threshold only at merge time reads low,
            # by at most the threshold per merged peer
            assert estimate >= truth[item] - threshold

    def test_saturated_counters_stay_saturated(self):
        part_a = self._make()
        part_b = self._make()
        part_a.insert("hot", count=1000)  # far past the layer-1 threshold
        part_b.insert("hot", count=3)
        part_a.merge(part_b)
        assert part_a.query("hot") >= 1000

    def test_mismatches_rejected(self):
        with pytest.raises(MergeError):
            self._make().merge(ColdFilter(16384, seed=SEED + 1))
        with pytest.raises(MergeError):
            self._make().merge(ColdFilter(16384, bits1=8, seed=SEED))
        with pytest.raises(MergeError):
            self._make().merge(CMSketch(4096, d=3, seed=SEED))


class TestLogLogFilterMerge:
    def _make(self):
        return LogLogFilter(8192, seed=SEED)

    def test_merge_takes_register_max(self):
        first, second, truth, items = _split_stream()
        part_a = _fill(self._make(), first)
        part_b = _fill(self._make(), second)
        rows_b = [list(array) for array in part_b.registers]
        before = {
            item: max(part_a.query(item), part_b.query(item)) for item in items
        }
        part_a.merge(part_b)
        for row, row_b in enumerate(rows_b):
            merged_row = list(part_a.registers[row])
            assert all(m >= b for m, b in zip(merged_row, row_b))
        for item in items:
            # rank registers decode to (1 << r) - 1; the max union never
            # reads below either side
            assert part_a.query(item) >= before[item]

    def test_mismatches_rejected(self):
        with pytest.raises(MergeError):
            self._make().merge(LogLogFilter(8192, seed=SEED + 1))
        with pytest.raises(MergeError):
            self._make().merge(LogLogFilter(8192, bits=8, seed=SEED))
        with pytest.raises(MergeError):
            self._make().merge(CMSketch(4096, d=3, seed=SEED))


class TestElasticMerge:
    def _make(self):
        return ElasticSketch(8192, seed=SEED)

    def test_merge_never_decreases_estimates(self):
        # No count is dropped by the bucket elections — losers spill to
        # the light part, exactly like the insert-path eviction — so
        # every estimate is at least what either side reported alone.
        first, second, truth, items = _split_stream()
        part_a = _fill(self._make(), first)
        part_b = _fill(self._make(), second)
        before = {
            item: max(part_a.query(item), part_b.query(item)) for item in items
        }
        part_a.merge(part_b)
        for item in items:
            assert part_a.query(item) >= before[item]

    def test_disjoint_residents_sum_exactly(self):
        part_a = self._make()
        part_b = self._make()
        part_a.insert("hot", count=40)
        part_b.insert("hot", count=60)
        part_a.merge(part_b)
        assert part_a.query("hot") == 100

    def test_mismatches_rejected(self):
        with pytest.raises(MergeError):
            self._make().merge(ElasticSketch(8192, seed=SEED + 1))
        with pytest.raises(MergeError):
            self._make().merge(ElasticSketch(4096, seed=SEED))
        with pytest.raises(MergeError):
            self._make().merge(CMSketch(4096, d=3, seed=SEED))


class TestMVMerge:
    def _make(self):
        return MVSketch(16384, d=3, seed=SEED)

    def test_merged_estimates_stay_one_sided(self):
        first, second, truth, items = _split_stream()
        merged = _fill(self._make(), first).merge(_fill(self._make(), second))
        for item in items:
            assert merged.query(item) >= truth[item]

    def test_majority_item_survives_merge(self):
        # A flow holding a true majority of every bucket it maps to must
        # come out as the candidate of the merged sketch (the Boyer-Moore
        # combine preserves the majority-vote invariant).
        part_a = self._make()
        part_b = self._make()
        part_a.insert("majority", count=300)
        _fill(part_a, [f"bg-{i}" for i in range(100)])
        part_b.insert("majority", count=300)
        _fill(part_b, [f"bg-{i}" for i in range(100, 200)])
        part_a.merge(part_b)
        assert "majority" in part_a.heavy_candidates(threshold=500)

    def test_mismatches_rejected(self):
        with pytest.raises(MergeError):
            self._make().merge(MVSketch(16384, d=4, seed=SEED))
        with pytest.raises(MergeError):
            self._make().merge(MVSketch(16384, d=3, seed=SEED + 1))
        with pytest.raises(MergeError):
            self._make().merge(CMSketch(4096, d=3, seed=SEED))


class TestSpaceSavingMerge:
    def test_under_capacity_merge_is_exact(self):
        first, second, truth, items = _split_stream(n_items=50)
        part_a = _fill(SpaceSaving(200), first)
        part_b = _fill(SpaceSaving(200), second)
        part_a.merge(part_b)
        assert part_a.total == len(first) + len(second)
        for item in items:
            assert part_a.query(item) == truth[item]
            assert part_a.guaranteed(item) == truth[item]

    def test_over_capacity_merge_keeps_guarantees(self):
        first, second, truth, items = _split_stream()
        capacity = 32
        part_a = _fill(SpaceSaving(capacity), first)
        part_b = _fill(SpaceSaving(capacity), second)
        part_a.merge(part_b)
        assert len(part_a) <= capacity
        assert part_a.total == len(first) + len(second)
        tracked = dict(part_a.top())
        for item, estimate in tracked.items():
            # SpaceSaving's two-sided sandwich survives the union
            assert part_a.guaranteed(item) <= truth[item] <= estimate
        # heavy-hitter guarantee: anything above N/capacity stays tracked
        floor = part_a.total / capacity
        for item, count in truth.items():
            if count > floor:
                assert item in tracked

    def test_mismatches_rejected(self):
        with pytest.raises(MergeError):
            SpaceSaving(32).merge(SpaceSaving(64))
        with pytest.raises(MergeError):
            SpaceSaving(32).merge(CMSketch(4096, d=3, seed=SEED))
