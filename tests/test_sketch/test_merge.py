"""Merge semantics of the counter-array sketches (Mergeable protocol).

The contract under test: a sketch merged over a split stream behaves
like a single sketch over the whole stream — exactly for CM / Count
(and TowerSketch under the CM rule), as a bounded overestimate for the
conservative-update variants, and with overflow markers preserved in
saturation cases.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import MergeError
from repro.sketch.cm import CMSketch
from repro.sketch.count import CountSketch
from repro.sketch.counters import CounterArray
from repro.sketch.cu import CUSketch
from repro.sketch.tower import TowerSketch
from repro.sketch.windowed import (
    WindowedCM,
    WindowedCU,
    WindowedColdFilter,
    WindowedLogLog,
    WindowedTower,
)

SEED = 77


def _split_stream(n_items=120, n_arrivals=6000, rng_seed=5):
    """A heavy-tailed stream cut in two halves, plus its exact counts."""
    rng = random.Random(rng_seed)
    items = [f"flow-{i}" for i in range(n_items)]
    stream = [items[min(rng.randrange(n_items), rng.randrange(n_items))] for _ in range(n_arrivals)]
    half = n_arrivals // 2
    return stream[:half], stream[half:], Counter(stream), items


def _fill(sketch, arrivals):
    for item in arrivals:
        sketch.insert(item)
    return sketch


class TestCounterArrayMerge:
    def test_saturating_add(self):
        a = CounterArray(4, bits=4)
        b = CounterArray(4, bits=4)
        for index, (x, y) in enumerate([(3, 4), (10, 10), (15, 1), (0, 0)]):
            a.set(index, x)
            b.set(index, y)
        a.merge(b)
        assert list(a) == [7, 15, 15, 0]

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(MergeError):
            CounterArray(4, bits=4).merge(CounterArray(5, bits=4))
        with pytest.raises(MergeError):
            CounterArray(4, bits=4).merge(CounterArray(4, bits=8))


class TestFlatSketchMerge:
    def test_cm_merge_is_exact(self):
        first, second, truth, items = _split_stream()
        whole = _fill(CMSketch(4096, d=3, seed=SEED), first + second)
        part_a = _fill(CMSketch(4096, d=3, seed=SEED), first)
        part_b = _fill(CMSketch(4096, d=3, seed=SEED), second)
        part_a.merge(part_b)
        for item in items:
            assert part_a.query(item) == whole.query(item)

    def test_count_merge_is_exact(self):
        first, second, truth, items = _split_stream()
        whole = _fill(CountSketch(4096, d=3, seed=SEED), first + second)
        merged = _fill(CountSketch(4096, d=3, seed=SEED), first).merge(
            _fill(CountSketch(4096, d=3, seed=SEED), second)
        )
        for item in items:
            assert merged.query(item) == whole.query(item)

    def test_cu_merge_is_bounded_overestimate(self):
        first, second, truth, items = _split_stream()
        merged = _fill(CUSketch(4096, d=3, seed=SEED), first).merge(
            _fill(CUSketch(4096, d=3, seed=SEED), second)
        )
        cm_merged = _fill(CMSketch(4096, d=3, seed=SEED), first).merge(
            _fill(CMSketch(4096, d=3, seed=SEED), second)
        )
        for item in items:
            estimate = merged.query(item)
            assert estimate >= truth[item]  # still one-sided
            assert estimate <= cm_merged.query(item)  # no worse than CM

    def test_tower_cm_merge_is_exact(self):
        first, second, truth, items = _split_stream()
        whole = _fill(TowerSketch(4096, d=3, update_rule="cm", seed=SEED), first + second)
        merged = _fill(TowerSketch(4096, d=3, update_rule="cm", seed=SEED), first).merge(
            _fill(TowerSketch(4096, d=3, update_rule="cm", seed=SEED), second)
        )
        for item in items:
            assert merged.query(item) == whole.query(item)

    def test_tower_cu_merge_is_bounded(self):
        first, second, truth, items = _split_stream()
        merged = _fill(TowerSketch(4096, d=3, update_rule="cu", seed=SEED), first).merge(
            _fill(TowerSketch(4096, d=3, update_rule="cu", seed=SEED), second)
        )
        for item in items:
            assert merged.query(item) >= truth[item]

    def test_tower_merge_preserves_overflow_markers(self):
        # Saturate the bottom-level counter on one side; after the merge
        # the counter must still read as an overflow marker, not wrap.
        a = TowerSketch(600, d=2, update_rule="cm", level_bits=[4, 32], seed=SEED)
        b = TowerSketch(600, d=2, update_rule="cm", level_bits=[4, 32], seed=SEED)
        a.insert("hot", count=10_000)  # saturates the 4-bit level
        b.insert("hot", count=3)
        a.merge(b)
        level0 = a.levels[0]
        pos0 = a._positions("hot")[0]
        assert level0.is_saturated(pos0)
        # query falls through to the larger level, which tracked the sum
        assert a.query("hot") == 10_003

    def test_seed_mismatch_rejected(self):
        with pytest.raises(MergeError):
            CMSketch(4096, d=3, seed=1).merge(CMSketch(4096, d=3, seed=2))

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(MergeError):
            CMSketch(4096, d=3, seed=SEED).merge(CMSketch(2048, d=3, seed=SEED))
        with pytest.raises(MergeError):
            TowerSketch(4096, d=3, seed=SEED).merge(
                TowerSketch(4096, d=3, update_rule="cu", seed=SEED)
            )


def _windowed_split(s=4, n_arrivals=4000, rng_seed=9):
    """Per-(item, slot) split stream + exact per-slot counts."""
    rng = random.Random(rng_seed)
    items = [f"w-{i}" for i in range(60)]
    arrivals = [
        (items[min(rng.randrange(60), rng.randrange(60))], rng.randrange(s))
        for _ in range(n_arrivals)
    ]
    half = n_arrivals // 2
    truth = Counter(arrivals)
    return arrivals[:half], arrivals[half:], truth, items


def _fill_windowed(filter_, arrivals):
    for item, slot in arrivals:
        filter_.insert(item, slot)
    return filter_


class TestWindowedMerge:
    S = 4

    def _make(self, cls, **kwargs):
        return cls(memory_bytes=6000, s=self.S, seed=SEED, **kwargs)

    @pytest.mark.parametrize("cls", [WindowedTower, WindowedCM])
    def test_cm_rule_merge_is_exact_per_slot(self, cls):
        first, second, truth, items = _windowed_split(s=self.S)
        whole = _fill_windowed(self._make(cls), first + second)
        merged = _fill_windowed(self._make(cls), first).merge(
            _fill_windowed(self._make(cls), second)
        )
        for item in items:
            for slot in range(self.S):
                assert merged.query_slot(item, slot) == whole.query_slot(item, slot)

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (WindowedCU, {}),
            (WindowedTower, {"update_rule": "cu"}),
        ],
    )
    def test_cu_style_merge_is_bounded_per_slot(self, cls, kwargs):
        first, second, truth, items = _windowed_split(s=self.S)
        merged = _fill_windowed(self._make(cls, **kwargs), first).merge(
            _fill_windowed(self._make(cls, **kwargs), second)
        )
        for item in items:
            for slot in range(self.S):
                assert merged.query_slot(item, slot) >= truth[(item, slot)]

    def test_cold_filter_merge_is_bounded_by_layer1_threshold(self):
        # Layer-1 mass absorbed on both sides collapses into one
        # saturating counter: the merged estimate may fall below the
        # truth, but never by more than the layer-1 threshold per peer,
        # and never below either side's own estimate.
        first, second, truth, items = _windowed_split(s=self.S)
        part_a = _fill_windowed(self._make(WindowedColdFilter), first)
        part_b = _fill_windowed(self._make(WindowedColdFilter), second)
        before = {
            (item, slot): max(
                part_a.query_slot(item, slot), part_b.query_slot(item, slot)
            )
            for item in items
            for slot in range(self.S)
        }
        threshold = part_a.threshold
        part_a.merge(part_b)
        for item in items:
            for slot in range(self.S):
                estimate = part_a.query_slot(item, slot)
                assert estimate >= before[(item, slot)]
                assert estimate >= truth[(item, slot)] - threshold

    def test_loglog_merge_takes_register_max(self):
        first, second, truth, items = _windowed_split(s=self.S)
        part_a = _fill_windowed(self._make(WindowedLogLog), first)
        part_b = _fill_windowed(self._make(WindowedLogLog), second)
        before_a = {
            (item, slot): part_a.query_slot(item, slot)
            for item in items
            for slot in range(self.S)
        }
        before_b = {
            (item, slot): part_b.query_slot(item, slot)
            for item in items
            for slot in range(self.S)
        }
        part_a.merge(part_b)
        for key, value in before_a.items():
            item, slot = key
            merged = part_a.query_slot(item, slot)
            assert merged >= value
            assert merged >= before_b[key]

    def test_positivity_never_lost_by_merge(self):
        # The Stage-1 contract: a slot positive on either side must stay
        # positive after the merge (the Preliminary Condition relies on it).
        first, second, truth, items = _windowed_split(s=self.S)
        merged = _fill_windowed(self._make(WindowedTower), first).merge(
            _fill_windowed(self._make(WindowedTower), second)
        )
        for (item, slot), count in truth.items():
            if count > 0:
                assert merged.query_slot(item, slot) > 0

    def test_type_and_s_mismatch_rejected(self):
        with pytest.raises(MergeError):
            self._make(WindowedTower).merge(self._make(WindowedCM))
        with pytest.raises(MergeError):
            self._make(WindowedTower).merge(
                WindowedTower(memory_bytes=6000, s=self.S + 1, seed=SEED)
            )
        with pytest.raises(MergeError):
            self._make(WindowedTower).merge(
                WindowedTower(memory_bytes=6000, s=self.S, seed=SEED + 1)
            )
