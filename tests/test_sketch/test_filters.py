"""Unit tests for Cold Filter and LogLog Filter."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sketch.coldfilter import ColdFilter
from repro.sketch.loglogfilter import LogLogFilter


class TestColdFilter:
    def test_cold_items_stay_in_layer1(self):
        cf = ColdFilter(memory_bytes=8000, seed=1)
        for _ in range(5):
            cf.insert("cold")
        assert cf.query("cold") == 5

    def test_hot_items_spill_to_layer2(self):
        cf = ColdFilter(memory_bytes=8000, seed=1)
        for _ in range(100):
            cf.insert("hot")
        assert cf.query("hot") >= 100

    def test_threshold_is_layer1_cap(self):
        cf = ColdFilter(memory_bytes=8000, bits1=4, seed=1)
        assert cf.threshold == 15

    def test_never_underestimates(self):
        cf = ColdFilter(memory_bytes=2000, seed=3)
        truth = {}
        rng = random.Random(1)
        for _ in range(2000):
            item = rng.randrange(150)
            truth[item] = truth.get(item, 0) + 1
            cf.insert(item)
        for item, count in truth.items():
            assert cf.query(item) >= count

    def test_bulk_insert_matches_repeated(self):
        a = ColdFilter(memory_bytes=8000, seed=5)
        b = ColdFilter(memory_bytes=8000, seed=5)
        a.insert("x", 40)
        for _ in range(40):
            b.insert("x")
        assert a.query("x") == b.query("x")

    def test_clear(self):
        cf = ColdFilter(memory_bytes=2000, seed=1)
        cf.insert("a", 50)
        cf.clear()
        assert cf.query("a") == 0

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            ColdFilter(memory_bytes=2000, layer1_fraction=0.0)


class TestLogLogFilter:
    def test_zero_before_insert(self):
        llf = LogLogFilter(memory_bytes=2000, seed=1)
        assert llf.query("never") == 0

    def test_monotone_nondecreasing_with_inserts(self):
        llf = LogLogFilter(memory_bytes=2000, seed=1, rng=random.Random(0))
        previous = 0
        for _ in range(200):
            llf.insert("x")
            estimate = llf.query("x")
            assert estimate >= previous
            previous = estimate

    def test_log_scale_accuracy(self):
        """The register estimate is within ~4x of the truth for a lone item."""
        llf = LogLogFilter(memory_bytes=8000, seed=2, rng=random.Random(7))
        for _ in range(256):
            llf.insert("only")
        estimate = llf.query("only")
        assert 256 / 4 <= estimate <= 256 * 4

    def test_clear(self):
        llf = LogLogFilter(memory_bytes=2000, seed=1)
        llf.insert("a", 10)
        llf.clear()
        assert llf.query("a") == 0

    def test_too_small_memory(self):
        with pytest.raises(ConfigurationError):
            LogLogFilter(memory_bytes=0)
