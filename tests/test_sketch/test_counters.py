"""Unit tests for CounterArray."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sketch.counters import CounterArray


class TestCounterArrayBasics:
    def test_starts_zeroed(self):
        array = CounterArray(8, bits=4)
        assert list(array) == [0] * 8

    def test_increment_and_get(self):
        array = CounterArray(4, bits=8)
        assert array.increment(2) == 1
        assert array.increment(2, 5) == 6
        assert array.get(2) == 6
        assert array.get(0) == 0

    def test_saturation(self):
        array = CounterArray(2, bits=4)
        array.increment(0, 100)
        assert array.get(0) == 15
        assert array.is_saturated(0)
        array.increment(0)
        assert array.get(0) == 15  # stays pinned

    def test_set_clamps(self):
        array = CounterArray(2, bits=4)
        array.set(1, 99)
        assert array.get(1) == 15

    def test_set_rejects_negative(self):
        array = CounterArray(2, bits=4)
        with pytest.raises(ValueError):
            array.set(0, -1)

    def test_clear(self):
        array = CounterArray(4, bits=8)
        array.increment(1, 3)
        array.clear()
        assert list(array) == [0, 0, 0, 0]

    def test_clear_stride(self):
        array = CounterArray(8, bits=8)
        for i in range(8):
            array.set(i, i + 1)
        array.clear_stride(1, 4)  # zero indices 1 and 5
        assert list(array) == [1, 0, 3, 4, 5, 0, 7, 8]

    def test_memory_bytes_bit_exact(self):
        assert CounterArray(16, bits=4).memory_bytes == 8.0
        assert CounterArray(3, bits=32).memory_bytes == 12.0

    @pytest.mark.parametrize("size, bits", [(0, 8), (-1, 8), (4, 0), (4, 65)])
    def test_invalid_construction(self, size, bits):
        with pytest.raises(ConfigurationError):
            CounterArray(size, bits)


class TestCounterArrayProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=30),
        st.integers(min_value=2, max_value=10),
    )
    def test_increments_never_exceed_max(self, amounts, bits):
        array = CounterArray(1, bits=bits)
        total = 0
        for amount in amounts:
            array.increment(0, amount)
            total += amount
            assert array.get(0) == min(total, array.max_value)

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=6))
    def test_clear_stride_only_touches_its_slot(self, n_logical, stride):
        array = CounterArray(n_logical * stride, bits=16)
        for i in range(len(array)):
            array.set(i, 7)
        array.clear_stride(0, stride)
        values = list(array)
        for i, value in enumerate(values):
            assert value == (0 if i % stride == 0 else 7)
