"""Reference-model property tests for the windowed filters.

A dict keyed by (item, slot) is the exact reference; every windowed
structure must never underestimate it (CM/CU/tower/cold are
conservative by construction; LogLog is probabilistic and excluded),
and bulk inserts must equal repeated single inserts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.windowed import make_windowed_filter

CONSERVATIVE = ["tower", "cm", "cu", "cold"]

STREAMS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=25), st.integers(min_value=0, max_value=3)),
    min_size=1,
    max_size=250,
)


class TestNeverUnderestimate:
    @pytest.mark.parametrize("structure", CONSERVATIVE)
    @settings(max_examples=20, deadline=None)
    @given(STREAMS)
    def test_structure_never_underestimates(self, structure, stream):
        wf = make_windowed_filter(structure, 6000, s=4, seed=9)
        truth = {}
        for item, slot in stream:
            truth[(item, slot)] = truth.get((item, slot), 0) + 1
            wf.insert(item, slot)
        for (item, slot), count in truth.items():
            assert wf.query_slot(item, slot) >= min(count, 65535)


class TestBulkEqualsRepeated:
    @pytest.mark.parametrize("structure", CONSERVATIVE)
    def test_single_item_bulk(self, structure):
        a = make_windowed_filter(structure, 20000, s=3, seed=4)
        b = make_windowed_filter(structure, 20000, s=3, seed=4)
        a.insert_count("x", 1, 23)
        for _ in range(23):
            b.insert("x", 1)
        assert a.query_slot("x", 1) == b.query_slot("x", 1)

    @pytest.mark.parametrize("structure", ["tower", "cm", "cu"])
    @settings(max_examples=15, deadline=None)
    @given(STREAMS)
    def test_interleaved_bulk_never_underestimates(self, structure, stream):
        """Bulk updates interleaved with singles keep the guarantee."""
        wf = make_windowed_filter(structure, 6000, s=4, seed=5)
        truth = {}
        rng = random.Random(7)
        for item, slot in stream:
            count = rng.choice([1, 1, 3, 10])
            truth[(item, slot)] = truth.get((item, slot), 0) + count
            wf.insert_count(item, slot, count)
        for (item, slot), count in truth.items():
            assert wf.query_slot(item, slot) >= min(count, 65535)


class TestClearSlotIsolation:
    @pytest.mark.parametrize("structure", CONSERVATIVE)
    @settings(max_examples=15, deadline=None)
    @given(STREAMS, st.integers(min_value=0, max_value=3))
    def test_clearing_one_slot_preserves_others(self, structure, stream, cleared):
        wf = make_windowed_filter(structure, 6000, s=4, seed=6)
        truth = {}
        for item, slot in stream:
            truth[(item, slot)] = truth.get((item, slot), 0) + 1
            wf.insert(item, slot)
        wf.clear_slot(cleared)
        for (item, slot), count in truth.items():
            if slot == cleared:
                continue
            assert wf.query_slot(item, slot) >= min(count, 65535)
