"""Unit tests for PyramidSketch, MV-Sketch and ElasticSketch."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sketch.elastic import ElasticSketch
from repro.sketch.mv import MVSketch
from repro.sketch.pyramid import PyramidSketch


class TestPyramidSketch:
    def test_small_counts_exact_when_roomy(self):
        sketch = PyramidSketch(memory_bytes=40000, d=3, seed=1)
        for _ in range(7):
            sketch.insert("a")
        assert sketch.query("a") == 7

    def test_carry_preserves_large_counts(self):
        sketch = PyramidSketch(memory_bytes=40000, d=3, seed=1)
        sketch.insert("hot", 1)
        for _ in range(999):
            sketch.insert("hot")
        assert sketch.query("hot") == 1000  # 1000 > 15: multiple carries

    def test_never_underestimates(self):
        sketch = PyramidSketch(memory_bytes=4000, d=2, seed=2)
        truth = {}
        rng = random.Random(0)
        for _ in range(3000):
            item = rng.randrange(150)
            truth[item] = truth.get(item, 0) + 1
            sketch.insert(item)
        for item, count in truth.items():
            assert sketch.query(item) >= count

    def test_clear(self):
        sketch = PyramidSketch(memory_bytes=4000, d=2, seed=1)
        sketch.insert("a", 100)
        sketch.clear()
        assert sketch.query("a") == 0

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            PyramidSketch(memory_bytes=2, d=1)
        with pytest.raises(ConfigurationError):
            PyramidSketch(memory_bytes=4000, n_layers=1)


class TestMVSketch:
    def test_lone_item_exact(self):
        sketch = MVSketch(memory_bytes=12000, d=3, seed=1)
        for _ in range(25):
            sketch.insert("a")
        assert sketch.query("a") == 25

    def test_heavy_flow_becomes_candidate(self):
        sketch = MVSketch(memory_bytes=600, d=2, seed=3)
        rng = random.Random(0)
        for _ in range(2000):
            sketch.insert("elephant")
            sketch.insert(f"mouse-{rng.randrange(200)}")
        heavy = sketch.heavy_candidates(threshold=1000)
        assert "elephant" in heavy

    def test_estimates_reasonable_under_collisions(self):
        sketch = MVSketch(memory_bytes=3000, d=3, seed=5)
        truth = {}
        rng = random.Random(2)
        for _ in range(4000):
            item = rng.randrange(100)
            truth[item] = truth.get(item, 0) + 1
            sketch.insert(item)
        heavy = [i for i, c in truth.items() if c >= 80]
        for item in heavy:
            assert abs(sketch.query(item) - truth[item]) <= truth[item]

    def test_clear(self):
        sketch = MVSketch(memory_bytes=3000, d=2, seed=1)
        sketch.insert("a", 10)
        sketch.clear()
        assert sketch.query("a") == 0
        assert sketch.heavy_candidates(1) == {}

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            MVSketch(memory_bytes=4, d=3)


class TestElasticSketch:
    def test_resident_flow_exact(self):
        sketch = ElasticSketch(memory_bytes=20000, seed=1)
        for _ in range(50):
            sketch.insert("flow")
        assert sketch.query("flow") == 50

    def test_eviction_moves_count_to_light(self):
        sketch = ElasticSketch(memory_bytes=20000, eviction_ratio=2, seed=1)
        sketch.insert("old", 3)
        # find a challenger landing in the same bucket
        bucket = sketch._bucket("old")
        challenger = None
        index = 0
        while challenger is None:
            candidate = f"cand-{index}"
            index += 1
            if sketch._bucket(candidate) is bucket:
                challenger = candidate
        for _ in range(10):
            sketch.insert(challenger)
        # the old flow's count survives in the light part
        assert sketch.query("old") >= 3
        assert sketch.query(challenger) >= 1

    def test_heavy_flows_listing(self):
        sketch = ElasticSketch(memory_bytes=20000, seed=2)
        rng = random.Random(1)
        for _ in range(3000):
            sketch.insert("elephant")
            sketch.insert(f"mouse-{rng.randrange(300)}")
        heavy = sketch.heavy_flows(threshold=1500)
        assert "elephant" in heavy

    def test_never_underestimates(self):
        sketch = ElasticSketch(memory_bytes=6000, seed=3)
        truth = {}
        rng = random.Random(4)
        for _ in range(3000):
            item = rng.randrange(200)
            truth[item] = truth.get(item, 0) + 1
            sketch.insert(item)
        for item, count in truth.items():
            assert sketch.query(item) >= min(count, 255)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ElasticSketch(memory_bytes=20000, heavy_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ElasticSketch(memory_bytes=20000, eviction_ratio=0)

    def test_clear(self):
        sketch = ElasticSketch(memory_bytes=20000, seed=1)
        sketch.insert("a", 40)
        sketch.clear()
        assert sketch.query("a") == 0
