"""Unit tests for TowerSketch (CM and CU update rules, overflow)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sketch.tower import TowerSketch, tower_level_widths


class TestLevelWidths:
    def test_paper_widths(self):
        assert tower_level_widths(3) == [4, 8, 16]
        assert tower_level_widths(1) == [4]

    def test_invalid_d(self):
        with pytest.raises(ConfigurationError):
            tower_level_widths(0)


class TestTowerStructure:
    def test_equal_memory_per_level(self):
        tower = TowerSketch(memory_bytes=3000, d=3, seed=1)
        per_level = [level.memory_bytes for level in tower.levels]
        assert max(per_level) - min(per_level) <= 2  # rounding only

    def test_lower_levels_have_more_counters(self):
        tower = TowerSketch(memory_bytes=3000, d=3, seed=1)
        sizes = [level.size for level in tower.levels]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_invalid_update_rule(self):
        with pytest.raises(ConfigurationError):
            TowerSketch(memory_bytes=3000, d=3, update_rule="median")

    def test_level_bits_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            TowerSketch(memory_bytes=3000, d=3, level_bits=[4, 8])


@pytest.mark.parametrize("rule", ["cm", "cu"])
class TestTowerEstimation:
    def test_never_underestimates(self, rule):
        tower = TowerSketch(memory_bytes=1500, d=3, update_rule=rule, seed=4)
        truth = {}
        rng = random.Random(0)
        for _ in range(3000):
            item = rng.randrange(250)
            truth[item] = truth.get(item, 0) + 1
            tower.insert(item)
        for item, count in truth.items():
            assert tower.query(item) >= min(count, 65535)

    def test_small_counter_overflow_falls_to_higher_level(self, rule):
        tower = TowerSketch(memory_bytes=30000, d=3, update_rule=rule, seed=2)
        for _ in range(100):  # > 15, the 4-bit cap
            tower.insert("heavy")
        assert tower.query("heavy") >= 100

    def test_clear(self, rule):
        tower = TowerSketch(memory_bytes=3000, d=3, update_rule=rule, seed=2)
        tower.insert("a")
        tower.clear()
        assert tower.query("a") == 0


class TestTowerCUvsCM:
    def test_cu_total_error_not_worse(self):
        cm = TowerSketch(memory_bytes=1200, d=3, update_rule="cm", seed=9)
        cu = TowerSketch(memory_bytes=1200, d=3, update_rule="cu", seed=9)
        truth = {}
        rng = random.Random(5)
        for _ in range(2500):
            item = rng.randrange(400)
            truth[item] = truth.get(item, 0) + 1
            cm.insert(item)
            cu.insert(item)
        cm_err = sum(cm.query(i) - min(c, 65535) for i, c in truth.items())
        cu_err = sum(cu.query(i) - min(c, 65535) for i, c in truth.items())
        assert cu_err <= cm_err
