"""Unit tests for the Count and CSM sketches."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sketch.count import CountSketch
from repro.sketch.csm import CSMSketch


class TestCountSketch:
    def test_exact_when_roomy(self):
        sketch = CountSketch(memory_bytes=40000, d=5, seed=1)
        for _ in range(9):
            sketch.insert("a")
        assert sketch.query("a") == 9

    def test_unbiased_sign_cancellation(self):
        """Estimates may go below truth (unlike CM), but stay close on
        average with ample memory."""
        sketch = CountSketch(memory_bytes=8000, d=5, seed=3)
        truth = {}
        rng = random.Random(1)
        for _ in range(4000):
            item = rng.randrange(400)
            truth[item] = truth.get(item, 0) + 1
            sketch.insert(item)
        errors = [sketch.query(i) - c for i, c in truth.items()]
        mean_error = sum(errors) / len(errors)
        assert abs(mean_error) < 2.0

    def test_clear(self):
        sketch = CountSketch(memory_bytes=4000, d=3, seed=1)
        sketch.insert("a", 5)
        sketch.clear()
        assert sketch.query("a") == 0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CountSketch(memory_bytes=4, d=3)
        with pytest.raises(ConfigurationError):
            CountSketch(memory_bytes=4000, d=0)


class TestCSMSketch:
    def test_roughly_unbiased(self):
        sketch = CSMSketch(memory_bytes=8000, d=4, seed=5)
        truth = {}
        rng = random.Random(2)
        for _ in range(5000):
            item = rng.randrange(300)
            truth[item] = truth.get(item, 0) + 1
            sketch.insert(item)
        heavy = [i for i, c in truth.items() if c >= 20]
        assert heavy
        rel_errors = [abs(sketch.query(i) - truth[i]) / truth[i] for i in heavy]
        assert sum(rel_errors) / len(rel_errors) < 0.5

    def test_total_insertions_tracked(self):
        sketch = CSMSketch(memory_bytes=4000, d=3, seed=1)
        sketch.insert("a", 4)
        sketch.insert("b", 2)
        assert sketch.total_insertions == 6

    def test_clear_resets_total(self):
        sketch = CSMSketch(memory_bytes=4000, d=3, seed=1)
        sketch.insert("a", 4)
        sketch.clear()
        assert sketch.total_insertions == 0
        assert sketch.query("a") == 0

    def test_query_never_negative(self):
        sketch = CSMSketch(memory_bytes=400, d=3, seed=1)
        for i in range(500):
            sketch.insert(i)
        assert all(sketch.query(i) >= 0 for i in range(500))
