"""Unit and property tests for SpaceSaving."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sketch.spacesaving import SpaceSaving


class TestSpaceSavingBasics:
    def test_exact_under_capacity(self):
        ss = SpaceSaving(capacity=10)
        for _ in range(5):
            ss.insert("a")
        ss.insert("b", 3)
        assert ss.query("a") == 5
        assert ss.query("b") == 3
        assert ss.guaranteed("a") == 5

    def test_replacement_inherits_error(self):
        ss = SpaceSaving(capacity=1)
        ss.insert("a", 4)
        ss.insert("b")  # evicts a, inherits count 4 as error
        assert ss.query("b") == 5
        assert ss.guaranteed("b") == 1
        assert ss.query("a") == 0

    def test_top_ordering(self):
        ss = SpaceSaving(capacity=8)
        ss.insert("big", 10)
        ss.insert("mid", 5)
        ss.insert("small", 1)
        assert [item for item, _ in ss.top(2)] == ["big", "mid"]

    def test_heavy_hitters(self):
        ss = SpaceSaving(capacity=8)
        ss.insert("elephant", 80)
        ss.insert("mouse", 20)
        heavy = ss.heavy_hitters(phi=0.5)
        assert [item for item, _ in heavy] == ["elephant"]

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(0)
        with pytest.raises(ConfigurationError):
            SpaceSaving(4).heavy_hitters(phi=1.5)


class TestSpaceSavingGuarantees:
    @settings(max_examples=30)
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=400),
        st.integers(min_value=2, max_value=12),
    )
    def test_estimate_brackets_truth(self, stream, capacity):
        """``count - error <= truth <= count`` for every tracked item."""
        ss = SpaceSaving(capacity)
        truth = {}
        for item in stream:
            truth[item] = truth.get(item, 0) + 1
            ss.insert(item)
        for item, _ in ss.top():
            assert ss.guaranteed(item) <= truth.get(item, 0) <= ss.query(item)

    def test_heavy_items_always_tracked(self):
        """Any item above N/capacity must survive (the classic bound)."""
        rng = random.Random(0)
        capacity = 10
        ss = SpaceSaving(capacity)
        stream = ["heavy"] * 400 + [f"m{rng.randrange(200)}" for _ in range(600)]
        rng.shuffle(stream)
        for item in stream:
            ss.insert(item)
        # heavy has 400 > 1000/10 = 100
        assert ss.query("heavy") >= 400
        assert "heavy" in {item for item, _ in ss.top()}
