"""Unit tests for windowed (sub-counter) Stage-1 structures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sketch.windowed import (
    WINDOWED_STRUCTURES,
    WindowedCM,
    WindowedCU,
    WindowedTower,
    make_windowed_filter,
)


@pytest.mark.parametrize("structure", WINDOWED_STRUCTURES)
class TestWindowedCommon:
    def test_slots_are_independent(self, structure):
        wf = make_windowed_filter(structure, 40000, s=4, seed=1)
        for _ in range(6):
            wf.insert("a", 1)
        assert wf.query_slot("a", 0) == 0
        assert wf.query_slot("a", 1) > 0
        assert wf.query_slot("a", 2) == 0

    def test_clear_slot_only_clears_that_slot(self, structure):
        wf = make_windowed_filter(structure, 40000, s=3, seed=1)
        for slot in range(3):
            for _ in range(4):
                wf.insert("a", slot)
        wf.clear_slot(1)
        assert wf.query_slot("a", 1) == 0
        assert wf.query_slot("a", 0) > 0
        assert wf.query_slot("a", 2) > 0

    def test_clear_wipes_everything(self, structure):
        wf = make_windowed_filter(structure, 40000, s=3, seed=1)
        for slot in range(3):
            wf.insert("a", slot)
        wf.clear()
        assert wf.query_slots("a", [0, 1, 2]) == [0, 0, 0]

    def test_query_slots_positive_matches_query_slots(self, structure):
        wf = make_windowed_filter(structure, 40000, s=4, seed=2)
        for slot in range(4):
            for _ in range(3):
                wf.insert("a", slot)
        slots = [0, 1, 2, 3]
        positive = wf.query_slots_positive("a", slots)
        assert positive == wf.query_slots("a", slots)

    def test_query_slots_positive_none_on_gap(self, structure):
        wf = make_windowed_filter(structure, 40000, s=4, seed=2)
        wf.insert("a", 0)
        wf.insert("a", 2)
        assert wf.query_slots_positive("a", [0, 1, 2, 3]) is None

    def test_bad_slot_raises(self, structure):
        wf = make_windowed_filter(structure, 40000, s=4, seed=2)
        with pytest.raises(ConfigurationError):
            wf.insert("a", 4)
        with pytest.raises(ConfigurationError):
            wf.query_slot("a", -1)

    def test_memory_within_budget(self, structure):
        wf = make_windowed_filter(structure, 40000, s=4, seed=2)
        assert wf.memory_bytes <= 40000


class TestWindowedTowerSpecifics:
    def test_sub_counters_scale_memory(self):
        """s sub-counters per counter -> s times fewer logical counters."""
        one = WindowedTower(memory_bytes=48000, s=1, d=3, seed=1)
        four = WindowedTower(memory_bytes=48000, s=4, d=3, seed=1)
        assert four.level_counters[0] * 4 <= one.level_counters[0] + 4

    def test_never_underestimates_cm(self):
        wf = WindowedTower(memory_bytes=3000, s=2, d=3, update_rule="cm", seed=3)
        truth = {}
        rng = random.Random(0)
        for _ in range(2000):
            item = rng.randrange(200)
            slot = rng.randrange(2)
            truth[(item, slot)] = truth.get((item, slot), 0) + 1
            wf.insert(item, slot)
        for (item, slot), count in truth.items():
            assert wf.query_slot(item, slot) >= min(count, 65535)

    def test_never_underestimates_cu(self):
        wf = WindowedTower(memory_bytes=3000, s=2, d=3, update_rule="cu", seed=3)
        truth = {}
        rng = random.Random(0)
        for _ in range(2000):
            item = rng.randrange(200)
            slot = rng.randrange(2)
            truth[(item, slot)] = truth.get((item, slot), 0) + 1
            wf.insert(item, slot)
        for (item, slot), count in truth.items():
            assert wf.query_slot(item, slot) >= min(count, 65535)

    def test_overflow_escalates(self):
        wf = WindowedTower(memory_bytes=60000, s=2, d=3, update_rule="cm", seed=1)
        for _ in range(300):
            wf.insert("heavy", 0)
        assert wf.query_slot("heavy", 0) >= 300

    def test_unknown_structure(self):
        with pytest.raises(ConfigurationError):
            make_windowed_filter("bloom", 1000, s=2)


class TestWindowedCMvsCU:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 2)), min_size=10, max_size=300))
    def test_cu_bounded_by_cm(self, stream):
        cm = WindowedCM(memory_bytes=900, s=3, d=2, seed=6)
        cu = WindowedCU(memory_bytes=900, s=3, d=2, seed=6)
        for item, slot in stream:
            cm.insert(item, slot)
            cu.insert(item, slot)
        for item, slot in set(stream):
            assert cu.query_slot(item, slot) <= cm.query_slot(item, slot)
