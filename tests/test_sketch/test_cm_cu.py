"""Unit tests for the CM and CU sketches."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sketch.cm import CMSketch
from repro.sketch.cu import CUSketch


def _fill(sketch, items):
    for item in items:
        sketch.insert(item)


class TestCMSketch:
    def test_exact_when_no_collisions(self):
        sketch = CMSketch(memory_bytes=40000, d=3, seed=1)
        _fill(sketch, ["a"] * 5 + ["b"] * 2)
        assert sketch.query("a") == 5
        assert sketch.query("b") == 2

    def test_never_underestimates(self):
        sketch = CMSketch(memory_bytes=600, d=3, seed=2)
        truth = {}
        rng = random.Random(0)
        for _ in range(2000):
            item = rng.randrange(200)
            truth[item] = truth.get(item, 0) + 1
            sketch.insert(item)
        for item, count in truth.items():
            assert sketch.query(item) >= count

    def test_unseen_item_can_be_zero(self):
        sketch = CMSketch(memory_bytes=40000, d=3, seed=1)
        assert sketch.query("never") == 0

    def test_insert_with_count(self):
        sketch = CMSketch(memory_bytes=40000, d=3, seed=1)
        sketch.insert("a", 7)
        assert sketch.query("a") == 7

    def test_clear(self):
        sketch = CMSketch(memory_bytes=40000, d=3, seed=1)
        sketch.insert("a", 3)
        sketch.clear()
        assert sketch.query("a") == 0

    def test_memory_accounting(self):
        sketch = CMSketch(memory_bytes=12000, d=3, counter_bits=32)
        assert sketch.memory_bytes <= 12000
        assert sketch.memory_bytes > 12000 * 0.9

    def test_too_small_memory_raises(self):
        with pytest.raises(ConfigurationError):
            CMSketch(memory_bytes=2, d=3)

    def test_invalid_d_raises(self):
        with pytest.raises(ConfigurationError):
            CMSketch(memory_bytes=1000, d=0)


class TestCUSketch:
    def test_never_underestimates(self):
        sketch = CUSketch(memory_bytes=600, d=3, seed=2)
        truth = {}
        rng = random.Random(0)
        for _ in range(2000):
            item = rng.randrange(200)
            truth[item] = truth.get(item, 0) + 1
            sketch.insert(item)
        for item, count in truth.items():
            assert sketch.query(item) >= count

    def test_tighter_than_cm_under_pressure(self):
        """CU's conservative update gives total error <= CM's."""
        cm = CMSketch(memory_bytes=400, d=3, seed=7)
        cu = CUSketch(memory_bytes=400, d=3, seed=7)
        truth = {}
        rng = random.Random(3)
        for _ in range(3000):
            item = rng.randrange(300)
            truth[item] = truth.get(item, 0) + 1
            cm.insert(item)
            cu.insert(item)
        cm_error = sum(cm.query(i) - c for i, c in truth.items())
        cu_error = sum(cu.query(i) - c for i, c in truth.items())
        assert cu_error <= cm_error

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
    def test_upper_bound_property(self, stream):
        sketch = CUSketch(memory_bytes=50000, d=3, seed=11)
        truth = {}
        for item in stream:
            truth[item] = truth.get(item, 0) + 1
            sketch.insert(item)
        for item, count in truth.items():
            assert sketch.query(item) >= count
