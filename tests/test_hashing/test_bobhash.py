"""Unit tests for the Bob Hash (lookup2) port."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.bobhash import bob_hash


class TestBobHashBasics:
    def test_returns_32_bit_unsigned(self):
        assert 0 <= bob_hash(b"hello") <= 0xFFFFFFFF

    def test_deterministic(self):
        assert bob_hash(b"abcdef", 17) == bob_hash(b"abcdef", 17)

    def test_seed_changes_value(self):
        assert bob_hash(b"abcdef", 1) != bob_hash(b"abcdef", 2)

    def test_data_changes_value(self):
        assert bob_hash(b"abcdef", 1) != bob_hash(b"abcdeg", 1)

    def test_empty_input_ok(self):
        assert 0 <= bob_hash(b"", 0) <= 0xFFFFFFFF

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            bob_hash("a string", 0)

    def test_accepts_bytearray_and_memoryview(self):
        data = b"0123456789abc"
        assert bob_hash(bytearray(data), 3) == bob_hash(data, 3)
        assert bob_hash(memoryview(data), 3) == bob_hash(data, 3)

    @pytest.mark.parametrize("length", list(range(0, 26)))
    def test_every_tail_length(self, length):
        """Exercise all 12 tail-switch branches across two blocks."""
        data = bytes(range(length))
        value = bob_hash(data, 99)
        assert 0 <= value <= 0xFFFFFFFF
        # One flipped byte anywhere must change the hash (with very high
        # probability; these fixed vectors are deterministic).
        if length:
            flipped = bytes([data[0] ^ 0xFF]) + data[1:]
            assert bob_hash(flipped, 99) != value


class TestBobHashDistribution:
    def test_low_bits_spread(self):
        """Hashing sequential integers should spread over small tables."""
        buckets = [0] * 16
        for i in range(4096):
            buckets[bob_hash(i.to_bytes(8, "little"), 5) % 16] += 1
        expected = 4096 / 16
        assert all(0.5 * expected < b < 1.5 * expected for b in buckets)

    @given(st.binary(min_size=0, max_size=64), st.integers(min_value=0, max_value=2**32 - 1))
    def test_range_property(self, data, seed):
        assert 0 <= bob_hash(data, seed) <= 0xFFFFFFFF

    @given(st.binary(min_size=1, max_size=40))
    def test_avalanche_on_seed(self, data):
        values = {bob_hash(data, seed) for seed in range(8)}
        assert len(values) >= 7  # collisions across 8 seeds are rare
