"""Hash values must be identical across independent processes.

The sharded runtime routes items and places counters with these hashes
from several worker processes at once; any dependence on process state
(most notably ``PYTHONHASHSEED`` string-hash randomisation) would break
merge compatibility between shards. A child interpreter launched with a
*different* ``PYTHONHASHSEED`` must reproduce the parent's values bit
for bit.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import repro
from repro.hashing.bobhash import bob_hash
from repro.hashing.family import make_family

FAMILIES = ("bob", "murmur", "crc")
ITEMS = ["flow-1", "", "a" * 100, 0, 2**32 - 1, 123456789, b"\x00\xffbytes"]
SEEDS = (0, 1, 20230401)

_CHILD_SCRIPT = """
import json, sys
from repro.hashing.bobhash import bob_hash
from repro.hashing.family import make_family

spec = json.loads(sys.stdin.read())
items = [bytes(i, "latin1") if kind == "bytes" else i
         for kind, i in spec["items"]]
out = {"bob": [bob_hash(i if isinstance(i, bytes) else str(i).encode(), s)
               for i in items for s in spec["seeds"]],
       "derived": [], "hash32": []}
for name in spec["families"]:
    for seed in spec["seeds"]:
        family = make_family(name, seed)
        out["derived"].append([family._derive_seed(j) for j in range(8)])
        out["hash32"].append([family.hash32(i, j) for i in items for j in range(4)])
print(json.dumps(out))
"""


def _encode_items():
    encoded = []
    for item in ITEMS:
        if isinstance(item, bytes):
            encoded.append(["bytes", item.decode("latin1")])
        else:
            encoded.append(["plain", item])
    return encoded


def _expected():
    out = {
        "bob": [
            bob_hash(i if isinstance(i, bytes) else str(i).encode(), s)
            for i in ITEMS
            for s in SEEDS
        ],
        "derived": [],
        "hash32": [],
    }
    for name in FAMILIES:
        for seed in SEEDS:
            family = make_family(name, seed)
            out["derived"].append([family._derive_seed(j) for j in range(8)])
            out["hash32"].append(
                [family.hash32(i, j) for i in ITEMS for j in range(4)]
            )
    return out


def _run_child(extra_env):
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [src_dir, env.get("PYTHONPATH")] if p
    )
    env.update(extra_env)
    spec = json.dumps(
        {"items": _encode_items(), "seeds": list(SEEDS), "families": list(FAMILIES)}
    )
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        input=spec,
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def test_child_process_reproduces_all_hashes():
    assert _run_child({}) == _expected()


def test_hashes_are_independent_of_pythonhashseed():
    # Two children with deliberately different string-hash randomisation.
    first = _run_child({"PYTHONHASHSEED": "1"})
    second = _run_child({"PYTHONHASHSEED": "4242"})
    expected = _expected()
    assert first == expected
    assert second == expected
