"""Unit tests for hash families and item encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.family import (
    HASH_FAMILIES,
    BobHashFamily,
    CrcHashFamily,
    MurmurHashFamily,
    encode_item,
    make_family,
)


class TestEncodeItem:
    def test_bytes_pass_through(self):
        assert encode_item(b"abc") == b"abc"

    def test_str_utf8(self):
        assert encode_item("flow") == b"flow"

    def test_int_eight_bytes(self):
        assert encode_item(5) == (5).to_bytes(8, "little", signed=True)
        assert len(encode_item(-1)) == 8

    def test_negative_int_roundtrip_distinct(self):
        assert encode_item(-1) != encode_item(1)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            encode_item(3.14)


class TestFamilies:
    @pytest.mark.parametrize("name", sorted(HASH_FAMILIES))
    def test_deterministic_and_ranged(self, name):
        family = make_family(name, seed=3)
        a = family.hash_into("item-1", 0, 1000)
        assert a == family.hash_into("item-1", 0, 1000)
        assert 0 <= a < 1000

    @pytest.mark.parametrize("name", sorted(HASH_FAMILIES))
    def test_index_independence(self, name):
        family = make_family(name, seed=3)
        values = {family.hash32("item-1", index) for index in range(6)}
        assert len(values) >= 5

    @pytest.mark.parametrize("cls", [BobHashFamily, MurmurHashFamily, CrcHashFamily])
    def test_seed_changes_mapping(self, cls):
        mapped_a = [cls(seed=1).hash_into(i, 0, 997) for i in range(50)]
        mapped_b = [cls(seed=2).hash_into(i, 0, 997) for i in range(50)]
        assert mapped_a != mapped_b

    def test_unknown_family_raises(self):
        with pytest.raises(ConfigurationError):
            make_family("sha512")

    def test_zero_size_table_raises(self):
        with pytest.raises(ConfigurationError):
            make_family("crc").hash_into("x", 0, 0)

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_crc_handles_any_int(self, value):
        family = CrcHashFamily(seed=0)
        assert 0 <= family.hash32(value, 0) <= 0xFFFFFFFF

    def test_crc_spreads_sequential_ints(self):
        family = CrcHashFamily(seed=9)
        buckets = [0] * 16
        for i in range(4096):
            buckets[family.hash_into(i, 0, 16)] += 1
        expected = 4096 / 16
        assert all(0.5 * expected < b < 1.5 * expected for b in buckets)
