"""Unit tests for the Murmur3-32 port, including reference vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.murmur import murmur3_32


class TestMurmurReferenceVectors:
    """Known-good vectors from the canonical MurmurHash3 implementation."""

    @pytest.mark.parametrize(
        "data, seed, expected",
        [
            (b"", 0, 0),
            (b"", 1, 0x514E28B7),
            (b"", 0xFFFFFFFF, 0x81F16F39),
            (b"a", 0, 0x3C2569B2),
            (b"aaaa", 0x9747B28C, 0x5A97808A),
            (b"Hello, world!", 0x9747B28C, 0x24884CBA),
            (b"The quick brown fox jumps over the lazy dog", 0x9747B28C, 0x2FA826CD),
        ],
    )
    def test_vectors(self, data, seed, expected):
        assert murmur3_32(data, seed) == expected


class TestMurmurBasics:
    def test_deterministic(self):
        assert murmur3_32(b"xyz", 5) == murmur3_32(b"xyz", 5)

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            murmur3_32(12345, 0)

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=2**32 - 1))
    def test_range_property(self, data, seed):
        assert 0 <= murmur3_32(data, seed) <= 0xFFFFFFFF
