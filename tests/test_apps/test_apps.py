"""Integration tests for the four application layers."""

import pytest

from repro.apps.bandwidth import BandwidthAllocator, evaluate_allocation
from repro.apps.cache_prefetch import LRUCache, make_access_trace, run_prefetch_experiment
from repro.apps.ddos_detector import DDoSDetector, evaluate_detector
from repro.apps.periodic_monitor import PeriodicMonitor, make_periodic_trace
from repro.core.oracle import SimplexOracle
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.streams.datasets import make_dataset
from repro.streams.ddos import ddos_stream


class TestLRUCache:
    def test_hits_and_misses(self):
        cache = LRUCache(2)
        assert not cache.access("a")
        assert cache.access("a")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh a; b is now LRU
        cache.access("c")  # evicts b
        assert "a" in cache
        assert "b" not in cache

    def test_prefetch_does_not_count(self):
        cache = LRUCache(2)
        cache.prefetch("a")
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access("a")

    def test_capacity_enforced(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.access(i)
        assert len(cache) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(0)


class TestDDoSDetector:
    def test_detects_most_attackers_with_low_false_alarms(self):
        trace, scenario = ddos_stream(n_windows=45, window_size=1200, n_attackers=8,
                                      onset_window=12, duration=20, seed=2)
        detector = DDoSDetector(memory_kb=40, seed=3)
        alarms = detector.run(trace)
        score = evaluate_detector(alarms, scenario)
        assert score.detection_rate >= 0.75
        assert score.false_alarms <= 5
        # earliest possible alarm needs p windows of attack history
        assert score.mean_latency_windows >= detector.task.p - 1

    def test_alarms_deduplicated_per_flow(self):
        trace, scenario = ddos_stream(n_windows=40, window_size=1000, n_attackers=4,
                                      onset_window=10, duration=22, seed=5)
        detector = DDoSDetector(memory_kb=40, seed=5)
        alarms = detector.run(trace)
        items = [a.item for a in alarms]
        assert len(items) == len(set(items))


class TestPrefetch:
    def test_prefetch_improves_hit_ratio(self):
        trace = make_access_trace(n_windows=30, window_size=1200, seed=5)
        result = run_prefetch_experiment(trace, cache_capacity=192, memory_kb=30, seed=5)
        assert result.prefetched_lines > 0
        assert result.improvement > 0.02


class TestBandwidth:
    def test_allocation_quality(self):
        trace = make_dataset("datacenter", n_windows=30, window_size=1200, seed=6)
        allocator = BandwidthAllocator(memory_kb=40, seed=6)
        plans = allocator.run(trace)
        oracle = SimplexOracle.from_stream(trace.windows(), SimplexTask.paper_default(0))
        score = evaluate_allocation(plans, oracle)
        assert score.flows_planned > 0
        assert score.utilization > 0.5
        assert score.coverage > 0.7

    def test_headroom_inflates_reservations(self):
        trace = make_dataset("datacenter", n_windows=20, window_size=1000, seed=6)
        tight = BandwidthAllocator(memory_kb=40, headroom=1.0, seed=6)
        loose = BandwidthAllocator(memory_kb=40, headroom=1.5, seed=6)
        reserved_tight = sum(p.total_reserved for p in tight.run(trace))
        reserved_loose = sum(p.total_reserved for p in loose.run(trace))
        assert reserved_loose > reserved_tight


class TestPeriodicMonitor:
    def test_detects_node_bursts(self):
        trace = make_periodic_trace(n_windows=50, window_size=1200, n_nodes=4,
                                    period=14, burst_len=9, seed=7)
        monitor = PeriodicMonitor(memory_kb=40, seed=7)
        events = monitor.run(trace)
        burst_nodes = {e.item for e in events if str(e.item).startswith("node-")}
        assert len(burst_nodes) >= 3

    def test_peaks_are_concave(self):
        trace = make_periodic_trace(n_windows=40, window_size=1000, seed=8)
        monitor = PeriodicMonitor(memory_kb=40, seed=8)
        for event in monitor.run(trace):
            assert event.curvature < 0
            assert event.peak_height > 0
