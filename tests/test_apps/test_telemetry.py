"""Unit tests for the telemetry aggregator."""

import pytest

from repro.apps.telemetry import TelemetryAggregator
from repro.config import XSketchConfig
from repro.core.reports import SimplexReport
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.streams.ddos import ddos_stream


def _report(item, slope, window=9):
    return SimplexReport(
        item=item,
        start_window=window - 6,
        report_window=window,
        lasting_time=6,
        coefficients=(4.0, slope),
        mse=0.1,
    )


class TestObserve:
    def test_start_and_end_tracking(self):
        agg = TelemetryAggregator()
        first = agg.observe(0, [_report("a", 2.0), _report("b", -1.5)])
        assert first.started == ("a", "b")
        assert first.ended == ()
        second = agg.observe(1, [_report("a", 2.0)])
        assert second.started == ()
        assert second.ended == ("b",)
        assert agg.total_churn() == 3

    def test_leaderboards_sorted_and_bounded(self):
        agg = TelemetryAggregator(top_n=2)
        summary = agg.observe(
            0,
            [_report("r1", 1.0), _report("r2", 5.0), _report("r3", 3.0),
             _report("f1", -4.0), _report("f2", -1.0)],
        )
        assert [item for item, _ in summary.top_rising] == ["r2", "r3"]
        assert [item for item, _ in summary.top_falling] == ["f1", "f2"]

    def test_latest_requires_history(self):
        with pytest.raises(LookupError):
            _ = TelemetryAggregator().latest

    def test_churn_property(self):
        agg = TelemetryAggregator()
        agg.observe(0, [_report("a", 1.0)])
        summary = agg.observe(1, [_report("b", 1.0)])
        assert summary.churn == 2  # b started, a ended


class TestRunWithSketch:
    def test_ddos_attack_dominates_rising_board(self):
        trace, scenario = ddos_stream(n_windows=40, window_size=1000, n_attackers=6,
                                      onset_window=10, duration=25, seed=8)
        sketch = XSketch(
            XSketchConfig(task=SimplexTask.paper_default(1), memory_kb=40.0), seed=8
        )
        agg = TelemetryAggregator(top_n=3)
        agg.run(sketch, trace)
        during_attack = [s for s in agg.history if s.top_rising]
        assert during_attack, "the ramping attack must appear on the board"
        risers = {item for summary in during_attack for item, _ in summary.top_rising}
        assert risers & set(scenario.attack_items)
