"""Client-side statistics of one load-generation run against the service.

The load generator (:mod:`repro.service.loadgen`) replays a trace over
the wire and measures what a real producer would observe: end-to-end
wall clock (first byte sent to last acknowledgement), per-batch *send
latency* (time for a frame to clear the client's socket buffer — under
server pushback this is where backpressure becomes visible), and the
server's own received/dropped accounting returned in the per-connection
acknowledgement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty).

    ``q`` is in [0, 100].  Nearest-rank keeps the value an actual
    observation, which is what latency reporting wants: the rank is
    ``ceil(q/100 * n)`` (1-based).  ``round()`` would be wrong here —
    banker's rounding pulls half-way ranks down (p50 of 2 samples would
    round 1.0 → rank 0 correctly but p50 of 6 samples rounds 3.0 → 2,
    then ties-to-even makes p25 of 2 samples round 0.5 → 0, i.e. an
    *under*-estimating, sample-size-dependent definition).
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    rank = max(0, min(len(sorted_values) - 1, math.ceil(q / 100.0 * len(sorted_values)) - 1))
    return sorted_values[rank]


@dataclass(frozen=True)
class LatencySummary:
    """Percentiles of one latency sample, in seconds."""

    count: int
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            p50=percentile(ordered, 50),
            p90=percentile(ordered, 90),
            p99=percentile(ordered, 99),
            max=ordered[-1] if ordered else 0.0,
        )

    def render(self) -> str:
        return (
            f"p50={self.p50 * 1e3:.2f}ms p90={self.p90 * 1e3:.2f}ms "
            f"p99={self.p99 * 1e3:.2f}ms max={self.max * 1e3:.2f}ms"
        )


@dataclass(frozen=True)
class ServiceStats:
    """What one load-generation run achieved against a running service.

    Attributes:
        connections: concurrent ingest connections used.
        batches: frames sent (micro-batches on the wire).
        total_items: items sent by the client.
        received_items: items the server acknowledged as enqueued.
        dropped_items: items the server counted as dropped (overload
            policy ``drop``); always 0 under ``pushback``.
        elapsed_seconds: wall clock from first send to last ack.
        send_latency: per-batch send+drain latency percentiles.
    """

    connections: int
    batches: int
    total_items: int
    received_items: int
    dropped_items: int
    elapsed_seconds: float
    send_latency: LatencySummary = field(
        default_factory=lambda: LatencySummary.from_samples(())
    )

    @property
    def mops(self) -> float:
        """Millions of items pushed per second of wall clock (0.0 when empty)."""
        if self.total_items <= 0 or self.elapsed_seconds <= 0:
            return 0.0
        return self.total_items / self.elapsed_seconds / 1e6

    @property
    def delivery_ratio(self) -> float:
        """Acknowledged fraction of sent items (1.0 for an empty run)."""
        if self.total_items <= 0:
            return 1.0
        return self.received_items / self.total_items

    def render(self) -> str:
        """One human-readable summary line."""
        return (
            f"{self.total_items} items / {self.batches} batches over "
            f"{self.connections} connection(s) in {self.elapsed_seconds:.3f}s: "
            f"{self.mops:.4f} Mops, delivered {self.delivery_ratio:.1%} "
            f"(dropped {self.dropped_items}); send latency {self.send_latency.render()}"
        )
