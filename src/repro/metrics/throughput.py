"""Insertion throughput in millions of operations per second (Mops).

The paper's numbers come from C++ on a fixed server; pure Python is
100-1000x slower in absolute terms, so throughput results here are only
meaningful *relative to each other* (XS-CM vs XS-CU vs baseline on the
same machine and stream), which is the comparison Figures 14/19/24 make.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.streams.model import Trace


@dataclass(frozen=True)
class ThroughputResult:
    """Wall-clock insertion throughput of one run."""

    total_items: int
    elapsed_seconds: float

    @property
    def mops(self) -> float:
        """Millions of insert operations per second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.total_items / self.elapsed_seconds / 1e6


def measure_throughput(algorithm, trace: Trace) -> ThroughputResult:
    """Run ``algorithm`` over ``trace`` and time the full processing loop.

    ``algorithm`` follows the stream protocol (``insert`` +
    ``end_window``); window-transition work is included in the measured
    time, as in the paper (insertions dominate either way).
    """
    start = time.perf_counter()
    insert = algorithm.insert
    end_window = algorithm.end_window
    for window in trace.windows():
        for item in window:
            insert(item)
        end_window()
    elapsed = time.perf_counter() - start
    return ThroughputResult(total_items=len(trace), elapsed_seconds=elapsed)
