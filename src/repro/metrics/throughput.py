"""Insertion throughput in millions of operations per second (Mops).

The paper's numbers come from C++ on a fixed server; pure Python is
100-1000x slower in absolute terms, so throughput results here are only
meaningful *relative to each other* (XS-CM vs XS-CU vs baseline on the
same machine and stream), which is the comparison Figures 14/19/24 make.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.streams.model import Trace


@dataclass(frozen=True)
class ThroughputResult:
    """Wall-clock insertion throughput of one run."""

    total_items: int
    elapsed_seconds: float

    @property
    def mops(self) -> float:
        """Millions of insert operations per second.

        Degenerate runs (no items, or a clock too coarse to measure the
        elapsed time) report 0.0 rather than raising or returning inf,
        so aggregation over many runs never blows up on an empty one.
        """
        if self.total_items <= 0 or self.elapsed_seconds <= 0:
            return 0.0
        return self.total_items / self.elapsed_seconds / 1e6


def measure_throughput(algorithm, trace: Trace) -> ThroughputResult:
    """Run ``algorithm`` over ``trace`` and time the full processing loop.

    ``algorithm`` follows the stream protocol (``insert`` +
    ``end_window``); window-transition work is included in the measured
    time, as in the paper (insertions dominate either way).
    """
    start = time.perf_counter()
    insert = algorithm.insert
    end_window = algorithm.end_window
    for window in trace.windows():
        for item in window:
            insert(item)
        end_window()
    elapsed = time.perf_counter() - start
    return ThroughputResult(total_items=len(trace), elapsed_seconds=elapsed)


@dataclass(frozen=True)
class ShardThroughput:
    """One shard's contribution to a sharded-throughput run.

    ``busy_seconds`` counts sketch work inside the worker (insert loops
    + window transitions), so ``sum(busy) > wall`` measures achieved
    parallelism; ``queue_depth`` is the command backlog sampled at the
    end of the run (None when the platform cannot report it).
    """

    shard_id: int
    items: int
    batches: int
    busy_seconds: float
    queue_depth: Optional[int]

    @property
    def mops(self) -> float:
        """Millions of inserts per second of in-worker sketch time.

        0.0 for idle shards (no items or unmeasurably small busy time).
        """
        if self.items <= 0 or self.busy_seconds <= 0:
            return 0.0
        return self.items / self.busy_seconds / 1e6


@dataclass(frozen=True)
class ShardedThroughputResult:
    """Wall-clock + per-shard view of one sharded ingest run."""

    total: ThroughputResult
    per_shard: Tuple[ShardThroughput, ...]

    @property
    def mops(self) -> float:
        """End-to-end Mops (coordinator wall clock, the headline number)."""
        return self.total.mops

    @property
    def parallelism(self) -> float:
        """Achieved parallelism: summed shard busy time over wall time.

        0.0 when the wall clock measured no elapsed time (empty run).
        """
        if self.total.elapsed_seconds <= 0:
            return 0.0
        busy = sum(shard.busy_seconds for shard in self.per_shard)
        return busy / self.total.elapsed_seconds


def measure_sharded_throughput(sharded, trace: Trace) -> ShardedThroughputResult:
    """Run a :class:`repro.runtime.ShardedXSketch` over ``trace``, timed.

    Ingest uses the batch path (one ``ingest_batch`` per window, then
    ``flush_window``), matching how the runtime is meant to be fed;
    wall time includes partitioning, queue transfer and the barrier at
    every window close.
    """
    start = time.perf_counter()
    for window in trace.windows():
        sharded.ingest_batch(window)
        sharded.flush_window()
    elapsed = time.perf_counter() - start
    stats = sharded.stats()
    per_shard = tuple(
        ShardThroughput(
            shard_id=shard.shard_id,
            items=shard.worker.items_ingested,
            batches=shard.worker.batches,
            busy_seconds=shard.worker.busy_seconds,
            queue_depth=shard.queue_depth,
        )
        for shard in stats.shards
    )
    return ShardedThroughputResult(
        total=ThroughputResult(total_items=len(trace), elapsed_seconds=elapsed),
        per_shard=per_shard,
    )
