"""Precision, recall and F1 over reported simplex instances.

An *instance* is an (item, start_window) pair: a report at window ``w``
claims the item was k-simplex over ``w-p+1 .. w``, so its instance is
``(item, w-p+1)``; ground truth is the oracle's instance set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

from repro.core.oracle import Instance
from repro.core.reports import SimplexReport


@dataclass(frozen=True)
class ClassificationScores:
    """PR / RR / F1 plus the raw counts they derive from."""

    true_positives: int
    reported: int
    actual: int

    @property
    def precision(self) -> float:
        """PR: true positives over all reported instances (1.0 when
        nothing was reported, the usual empty-report convention)."""
        return self.true_positives / self.reported if self.reported else 1.0

    @property
    def recall(self) -> float:
        """RR: true positives over all actual instances (1.0 when there
        was nothing to find)."""
        return self.true_positives / self.actual if self.actual else 1.0

    @property
    def f1(self) -> float:
        """F1 = 2 * PR * RR / (PR + RR)."""
        pr, rr = self.precision, self.recall
        return 2 * pr * rr / (pr + rr) if pr + rr > 0 else 0.0


def score_reports(
    reports: Iterable[SimplexReport], truth: Set[Instance]
) -> ClassificationScores:
    """Score a report list against the oracle's instance set.

    Duplicate reports of the same instance are collapsed first (neither
    algorithm re-reports an instance, but the metric should not depend
    on it).
    """
    reported: Set[Tuple] = {report.instance for report in reports}
    return ClassificationScores(
        true_positives=len(reported & truth),
        reported=len(reported),
        actual=len(truth),
    )


def precision_rate(reports: Iterable[SimplexReport], truth: Set[Instance]) -> float:
    return score_reports(reports, truth).precision


def recall_rate(reports: Iterable[SimplexReport], truth: Set[Instance]) -> float:
    return score_reports(reports, truth).recall


def f1_score(reports: Iterable[SimplexReport], truth: Set[Instance]) -> float:
    return score_reports(reports, truth).f1
