"""Average Relative Error of lasting times (Section V-A metric 4).

ARE averages ``|t_j - t̂_j| / t_j`` over reported items, where ``t̂`` is
the algorithm's lasting-time estimate carried in the report and ``t`` is
the true lasting time from the oracle's chain analysis.  Only *matched*
reports (true instances) contribute, mirroring the paper's "reported
items" with defined ground truth; reports of non-instances are precision
errors, already measured by PR.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.oracle import SimplexOracle
from repro.core.reports import SimplexReport


def average_relative_error(true_values: Sequence[float], estimates: Sequence[float]) -> float:
    """Plain ARE between two equal-length sequences (zero truths skipped)."""
    if len(true_values) != len(estimates):
        raise ValueError("sequences must have equal length")
    total = 0.0
    counted = 0
    for truth, estimate in zip(true_values, estimates):
        if truth == 0:
            continue
        total += abs(truth - estimate) / truth
        counted += 1
    return total / counted if counted else 0.0


def lasting_time_are(reports: Iterable[SimplexReport], oracle: SimplexOracle) -> float:
    """ARE of the lasting-time estimates over matched reports.

    For an item reported at several windows along one chain, each report
    contributes (the paper's ARE is over reported items per run; the
    per-report average behaves identically for comparison purposes).
    """
    truths: List[float] = []
    estimates: List[float] = []
    for report in reports:
        true_lasting = oracle.true_lasting(report.item, report.start_window)
        if true_lasting is None or true_lasting == 0:
            continue
        truths.append(float(true_lasting))
        estimates.append(float(report.lasting_time))
    return average_relative_error(truths, estimates)
