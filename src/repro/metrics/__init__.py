"""Evaluation metrics of Section V-A.

PR / RR / F1 over (item, start_window) instances, ARE over lasting
times, and wall-clock throughput in Mops.
"""

from repro.metrics.classification import (
    ClassificationScores,
    f1_score,
    precision_rate,
    recall_rate,
    score_reports,
)
from repro.metrics.error import average_relative_error, lasting_time_are
from repro.metrics.service import LatencySummary, ServiceStats, percentile
from repro.metrics.throughput import (
    ShardThroughput,
    ShardedThroughputResult,
    ThroughputResult,
    measure_sharded_throughput,
    measure_throughput,
)

__all__ = [
    "ClassificationScores",
    "LatencySummary",
    "ServiceStats",
    "ShardThroughput",
    "ShardedThroughputResult",
    "ThroughputResult",
    "average_relative_error",
    "f1_score",
    "lasting_time_are",
    "measure_sharded_throughput",
    "measure_throughput",
    "percentile",
    "precision_rate",
    "recall_rate",
    "score_reports",
]
