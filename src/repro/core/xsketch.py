"""X-Sketch: the full two-stage algorithm (Section III-D).

Usage follows the stream protocol::

    sketch = XSketch(XSketchConfig(task=SimplexTask(k=1)), seed=7)
    for window_items in stream.windows():
        for item in window_items:
            sketch.insert(item)
        reports = sketch.end_window()

``insert`` implements Algorithm 1; ``end_window`` runs the Stage-2
transition procedure (Algorithm 2, which also emits the reports) and the
Stage-1 cleaning policy, then advances the window counter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.compat import FrozenSlots
from repro.config import XSketchConfig
from repro.core.reports import SimplexReport
from repro.core.stage1 import Stage1
from repro.core.stage2 import Stage2
from repro.errors import MergeError
from repro.hashing.family import HashFamily, ItemId, make_family
from repro.obs.recorder import NULL_RECORDER


def report_order(report: SimplexReport):
    """Canonical report ordering: by window, then item (shard-stable).

    Reports of a single sketch arrive in bucket-scan order; when several
    shards' reports are combined, this key makes the merged stream
    independent of shard interleaving.
    """
    return (report.report_window, str(report.item))


@dataclass(frozen=True)
class XSketchStats(FrozenSlots):
    """Operational counters of one X-Sketch run.

    Useful for understanding where traffic goes: how much of it the
    Short-Term Filter absorbed, how selective the Potential gate was,
    and how contended Stage 2's buckets were.
    """

    __slots__ = (
        "windows",
        "stage1_arrivals",
        "stage1_fits",
        "promotions",
        "stage2_tracked",
        "inserts_empty",
        "replacements_won",
        "replacements_lost",
        "evictions_zero",
        "reports",
    )

    windows: int
    stage1_arrivals: int
    stage1_fits: int
    promotions: int
    stage2_tracked: int
    inserts_empty: int
    replacements_won: int
    replacements_lost: int
    evictions_zero: int
    reports: int

    @property
    def promotion_rate(self) -> float:
        """Fraction of Stage-1 arrivals that passed the Potential gate."""
        return self.promotions / self.stage1_arrivals if self.stage1_arrivals else 0.0


class XSketch:
    """The Simplex-Sketch.

    Args:
        config: problem + algorithm parameters; ``config.update_rule``
            selects XS-CM vs XS-CU.
        seed: seeds both the hash family and the replacement RNG.
        family: optionally share a prebuilt hash family.
        rng: optionally inject the randomness source (replacement coin
            flips and the LogLog structure), for deterministic tests.
        recorder: observability recorder shared by both stages
            (``repro.obs.Recorder``); defaults to the no-op recorder,
            which leaves the insert hot path uninstrumented.  The
            decision *counters* are available either way through
            :meth:`metrics_registry`; a live recorder adds the
            Potential / W_min / occupancy histograms and trace events.
    """

    def __init__(
        self,
        config: XSketchConfig,
        seed: int = 0,
        family: HashFamily = None,
        rng: random.Random = None,
        recorder=None,
    ):
        self.config = config
        shared_family = family if family is not None else make_family(config.hash_family, seed)
        shared_rng = rng if rng is not None else random.Random(seed)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.stage1 = Stage1(
            config, family=shared_family, seed=seed, rng=shared_rng,
            recorder=self.recorder,
        )
        self.stage2 = Stage2(
            config, family=shared_family, seed=seed, rng=shared_rng,
            recorder=self.recorder,
        )
        self.window = 0
        self._reports: List[SimplexReport] = []

    def insert(self, item: ItemId) -> None:
        """Process one arrival of ``item`` in the current window (Algorithm 1)."""
        if self.stage2.record_arrival(item, self.window):
            return
        promotion = self.stage1.insert(item, self.window)
        if promotion is not None:
            self.stage2.try_insert(promotion, self.window)

    def ingest_batch(self, items) -> None:
        """Process a batch of arrivals (per-arrival semantics item by item).

        Exists so every engine speaks the batch protocol the runtime and
        service layers dispatch on; for the per-arrival engine it is the
        plain insert loop.
        """
        insert = self.insert
        for item in items:
            insert(item)

    def end_window(self) -> List[SimplexReport]:
        """Close the current window; returns this window's reports."""
        reports = self.stage2.end_window(self.window)
        self.stage1.end_window(self.window)
        self._reports.extend(reports)
        self.window += 1
        return reports

    def run_window(self, items) -> List[SimplexReport]:
        """Convenience: insert a whole window of arrivals, then close it."""
        insert = self.insert
        for item in items:
            insert(item)
        return self.end_window()

    @property
    def reports(self) -> List[SimplexReport]:
        """All reports emitted so far, in emission order."""
        return list(self._reports)

    def merge(self, other: "XSketch") -> "XSketch":
        """Fold another X-Sketch into this one.

        The fallback merge path of the sharded runtime (re-sharding and
        checkpoint compaction).  Requirements: identical configuration,
        identical seed-derived hash family, and both sketches paused at
        the same window boundary.  Stage 1 merges counter-wise; Stage 2
        merges by weight election (see :meth:`Stage2.merge`); the report
        streams interleave in canonical :func:`report_order`.
        """
        if self.config != other.config:
            raise MergeError("cannot merge X-Sketches with different configurations")
        if self.window != other.window:
            raise MergeError(
                f"cannot merge X-Sketches at different windows "
                f"({self.window} vs {other.window}); merge at a window boundary"
            )
        self.stage1.merge(other.stage1)
        self.stage2.merge(other.stage2, self.window)
        self._reports = sorted(self._reports + other._reports, key=report_order)
        return self

    def query_tracked_frequencies(self, item: ItemId) -> Optional[List[int]]:
        """Last-p-window frequencies of a tracked item (exact, Theorem 2)."""
        cell = self.stage2.lookup(item)
        if cell is None:
            return None
        # During a window the freshest complete frequency is the previous
        # window's; the ring is read as of the last closed window.
        return cell.frequencies_ending_at(self.window)

    @property
    def memory_bytes(self) -> float:
        """Accounted memory across both stages."""
        return self.stage1.memory_bytes + self.stage2.memory_bytes

    def metrics_registry(self, registry=None):
        """Canonical metrics view of this sketch (``repro.obs`` catalog).

        Decision counters are synced from the stages' plain-int counters
        at call time (exact, zero hot-path cost); when a live recorder
        is attached its histograms and tower-overflow counters merge in.
        Collecting several sketches into one ``registry`` sums them.
        """
        from repro.obs.collect import collect_xsketch

        return collect_xsketch(self, registry)

    @property
    def stats(self) -> XSketchStats:
        """Operational counters accumulated so far."""
        return XSketchStats(
            windows=self.window,
            stage1_arrivals=self.stage1.arrivals,
            stage1_fits=self.stage1.fits,
            promotions=self.stage1.promotions,
            stage2_tracked=len(self.stage2),
            inserts_empty=self.stage2.inserts_empty,
            replacements_won=self.stage2.replacements_won,
            replacements_lost=self.stage2.replacements_lost,
            evictions_zero=self.stage2.evictions_zero,
            reports=len(self._reports),
        )
