"""Checkpointing: snapshot and restore an X-Sketch's full state.

Long-running stream monitors need to survive process restarts without
losing their window history.  A snapshot captures the configuration,
the window counter, every Stage-1 counter, every Stage-2 cell, the
emitted reports and the replacement RNG state, as a JSON-serializable
dict; :func:`restore_xsketch` rebuilds an equivalent sketch that
continues the stream bit-for-bit.

Only the Stage-1 structures backed by :class:`CounterArray` rings
(tower / cm / cu / cold / loglog -- i.e. all of them) are supported.
The vectorized engine's numpy tower serializes through the same flat
per-level layout: its ``(n_logical, s)`` matrices flatten C-order to
exactly the ``pos * s + slot`` indexing of a :class:`CounterArray`
ring, so vectorized snapshots are geometry-compatible with scalar
tower snapshots of the same configuration.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.config import XSketchConfig
from repro.core.batched import BatchedXSketch
from repro.core.reports import SimplexReport
from repro.core.stage2 import Stage2Cell
from repro.core.vectorized import VectorizedXSketch
from repro.core.xsketch import XSketch
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.sketch.counters import CounterArray
from repro.sketch.windowed import WindowedColdFilter, WindowedLogLog, _WindowedArrays

FORMAT_VERSION = 1

#: snapshot ``variant`` tag per engine class (and back).
_VARIANTS = {
    XSketch: "per-arrival",
    BatchedXSketch: "batched",
    VectorizedXSketch: "vectorized",
}


def _counter_arrays_of(filter_) -> List[CounterArray]:
    """The CounterArray rings of a windowed filter, in a fixed order."""
    if isinstance(filter_, _WindowedArrays):
        return list(filter_.levels)
    if isinstance(filter_, WindowedColdFilter):
        return list(filter_.layer1) + list(filter_.layer2)
    if isinstance(filter_, WindowedLogLog):
        return list(filter_.registers)
    raise ConfigurationError(
        f"cannot snapshot Stage-1 structure {type(filter_).__name__}"
    )


def _stage1_arrays(sketch) -> List[List[int]]:
    """Flat per-level Stage-1 counter lists, engine-independent."""
    if isinstance(sketch, VectorizedXSketch):
        # C-order flatten of (n_logical, s) == CounterArray's pos*s+slot
        return [[int(v) for v in level.reshape(-1)] for level in sketch.tower.levels]
    return [list(array) for array in _counter_arrays_of(sketch.stage1.filter)]


def _load_stage1(sketch, saved: List[List[int]]) -> None:
    """Restore flat per-level counter lists into a rebuilt sketch."""
    if isinstance(sketch, VectorizedXSketch):
        levels = sketch.tower.levels
        if len(levels) != len(saved) or any(
            level.size != len(values) for level, values in zip(levels, saved)
        ):
            raise ConfigurationError("snapshot geometry does not match the rebuilt sketch")
        import numpy as np

        for level, values in zip(levels, saved):
            level[:] = np.asarray(values, dtype=np.int64).reshape(level.shape)
        return
    arrays = _counter_arrays_of(sketch.stage1.filter)
    if len(arrays) != len(saved) or any(
        len(array) != len(values) for array, values in zip(arrays, saved)
    ):
        raise ConfigurationError("snapshot geometry does not match the rebuilt sketch")
    for array, values in zip(arrays, saved):
        for index, value in enumerate(values):
            array.set(index, value)


def snapshot_xsketch(sketch, shard: Dict = None) -> Dict:
    """Capture the complete state of ``sketch`` as a JSON-able dict.

    Accepts every engine -- :class:`XSketch`, :class:`BatchedXSketch`
    and :class:`VectorizedXSketch`.  The buffered engines (batched,
    vectorized) must be snapshotted at a window boundary: a non-empty
    arrival buffer is working state, not sketch state.

    ``shard`` optionally embeds shard metadata (shard id, partitioner
    spec) so a snapshot taken inside the sharded runtime is
    self-describing; :func:`restore_xsketch` ignores the entry, which
    keeps single-shard snapshots restorable on their own.
    """
    if getattr(sketch, "_buffer", None):
        raise ConfigurationError(
            f"snapshot a {type(sketch).__name__} only at a window boundary "
            "(arrival buffer not empty)"
        )
    config = sketch.config
    stage1_arrays = _stage1_arrays(sketch)
    cells = []
    for bucket_index, bucket in enumerate(sketch.stage2.buckets):
        for cell in bucket:
            cells.append(
                {
                    "bucket": bucket_index,
                    "item": cell.item,
                    "w_str": cell.w_str,
                    "counts": list(cell.counts),
                }
            )
    reports = [dataclasses.asdict(report) for report in sketch.reports]
    snapshot = {
        "format_version": FORMAT_VERSION,
        "variant": _VARIANTS.get(type(sketch), "per-arrival"),
        "task": dataclasses.asdict(config.task),
        "config": {
            field.name: getattr(config, field.name)
            for field in dataclasses.fields(config)
            if field.name != "task"
        },
        "seed_state": _encode_state(sketch.stage2._rng.getstate()),
        "window": sketch.window,
        "stage1_arrays": stage1_arrays,
        "stage2_cells": cells,
        "reports": reports,
    }
    if shard is not None:
        snapshot["shard"] = dict(shard)
    return snapshot


def restore_xsketch(snapshot: Dict, seed: int = 0, recorder=None) -> XSketch:
    """Rebuild an X-Sketch from :func:`snapshot_xsketch` output.

    ``seed`` must be the seed the original sketch was built with (the
    hash family derives from it; the replacement RNG state is restored
    exactly from the snapshot).  ``recorder`` optionally attaches an
    observability recorder to the rebuilt sketch (registries are not
    part of snapshots; a restored sketch starts with fresh metrics).
    """
    if snapshot.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot version {snapshot.get('format_version')!r}"
        )
    task = SimplexTask(**snapshot["task"])
    config = XSketchConfig(task=task, **snapshot["config"])
    variant = snapshot.get("variant", "per-arrival")
    if variant == "batched":
        sketch = BatchedXSketch(config, seed=seed, recorder=recorder)
    elif variant == "vectorized":
        sketch = VectorizedXSketch(config, seed=seed, recorder=recorder)
    elif variant == "per-arrival":
        sketch = XSketch(config, seed=seed, recorder=recorder)
    else:
        raise ConfigurationError(f"unknown snapshot variant {variant!r}")
    sketch.window = snapshot["window"]
    sketch.stage2._rng.setstate(_decode_state(snapshot["seed_state"]))

    _load_stage1(sketch, snapshot["stage1_arrays"])

    for record in snapshot["stage2_cells"]:
        cell = Stage2Cell(record["item"], record["w_str"], config.task.p)
        cell.counts = list(record["counts"])
        sketch.stage2.buckets[record["bucket"]].append(cell)
        sketch.stage2._index[record["item"]] = cell

    sketch._reports = [SimplexReport(**_report_kwargs(r)) for r in snapshot["reports"]]
    return sketch


def save_xsketch(sketch: XSketch, path: Union[str, Path]) -> None:
    """Write a snapshot to ``path`` as JSON."""
    Path(path).write_text(json.dumps(snapshot_xsketch(sketch)))


def load_xsketch(path: Union[str, Path], seed: int = 0) -> XSketch:
    """Read a snapshot written by :func:`save_xsketch`."""
    return restore_xsketch(json.loads(Path(path).read_text()), seed=seed)


def _report_kwargs(record: Dict) -> Dict:
    record = dict(record)
    record["coefficients"] = tuple(record["coefficients"])
    return record


def _encode_state(state) -> List:
    """random.Random state -> JSON-able nested lists."""
    return [state[0], list(state[1]), state[2]]


def _decode_state(encoded) -> tuple:
    return (encoded[0], tuple(encoded[1]), encoded[2])
