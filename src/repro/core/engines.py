"""Engine registry: the three ingest representations behind one name.

The runtime and service layers select *how* a shard processes its
stream independently of *what* it computes: the per-arrival
:class:`~repro.core.xsketch.XSketch` (the paper's Algorithm 1), the
dict-batched :class:`~repro.core.batched.BatchedXSketch`, and the
numpy :class:`~repro.core.vectorized.VectorizedXSketch`.  All three
speak the same stream protocol (``insert`` / ``ingest_batch`` /
``end_window`` / ``run_window`` / ``reports`` / ``stats`` / ``merge``
/ snapshot support), so workers, the service ``WindowManager``, the
supervision respawn path and ``merged_sketch()`` compaction work with
any of them.  See docs/RUNTIME.md ("Engine selection") for the
semantics matrix.
"""

from __future__ import annotations

import random

from repro.config import XSketchConfig
from repro.errors import ConfigurationError
from repro.hashing.family import HashFamily

#: Selectable runtime engines, in the order they appear in docs.
ENGINE_NAMES = ("xsketch", "batched", "vectorized")

#: Engine that rebuilds each snapshot ``variant`` tag.
VARIANT_TO_ENGINE = {
    "per-arrival": "xsketch",
    "batched": "batched",
    "vectorized": "vectorized",
}


def validate_engine(engine: str, config: XSketchConfig = None) -> str:
    """Check an engine name (and its config compatibility) early.

    Raises :class:`ConfigurationError` on an unknown name, or when the
    vectorized engine is paired with a non-tower Stage-1 structure --
    the same error the engine constructor would raise, surfaced before
    any worker process is spawned.
    """
    if engine not in ENGINE_NAMES:
        known = ", ".join(ENGINE_NAMES)
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of: {known}"
        )
    if (
        engine == "vectorized"
        and config is not None
        and config.stage1_structure != "tower"
    ):
        raise ConfigurationError(
            "the vectorized engine implements the paper's tower Stage 1 only; "
            f"got stage1_structure={config.stage1_structure!r}"
        )
    return engine


def make_engine(
    config: XSketchConfig,
    seed: int = 0,
    engine: str = "xsketch",
    family: HashFamily = None,
    rng: random.Random = None,
    recorder=None,
):
    """Build one engine instance by name (default: per-arrival)."""
    validate_engine(engine, config)
    if engine == "xsketch":
        from repro.core.xsketch import XSketch

        return XSketch(config, seed=seed, family=family, rng=rng, recorder=recorder)
    if engine == "batched":
        from repro.core.batched import BatchedXSketch

        return BatchedXSketch(config, seed=seed, family=family, rng=rng, recorder=recorder)
    from repro.core.vectorized import VectorizedXSketch

    return VectorizedXSketch(config, seed=seed, family=family, rng=rng, recorder=recorder)
