"""Vectorized X-Sketch: numpy-batched Stage 1 at stream rate.

The third processing engine (after per-arrival :class:`XSketch` and the
dict-batched :class:`BatchedXSketch`).  Semantics are those of batched
mode -- all per-item decisions happen once per window on complete
counts -- but every Stage-1 step is a numpy batch operation over the
window's distinct untracked items:

1. position gather for the whole batch (cached per item),
2. one ``np.add.at`` bulk counter update per level,
3. one fancy-indexed gather for the ``s``-window estimates,
4. one matrix multiply against the cached pseudo-inverse for all fits,
5. one vectorized Potential comparison to select promotions.

Stage 2 is unchanged (it touches only the few tracked/promoted items).

Semantics vs :class:`BatchedXSketch`: the whole window batch is counted
*before* any query, so every item's estimate sees the complete window
even under intra-window counter collisions (batched mode interleaves
per-item insert/query during the flush and earlier items miss later
colliding contributions).  Under no collisions all engines agree, and
the exact-oracle equivalence property holds here too
(``tests/test_core/test_vectorized.py``).  The CU rule uses the tower's
order-independent bulk approximation (see
:meth:`repro.sketch.vectorized_tower.VectorizedTower.bulk_insert`).
"""

from __future__ import annotations

import random
from typing import Dict, List

import numpy as np

from repro.config import XSketchConfig
from repro.core.reports import SimplexReport
from repro.core.stage1 import Promotion
from repro.core.stage2 import Stage2
from repro.core.xsketch import XSketchStats, report_order
from repro.errors import ConfigurationError, MergeError
from repro.fitting.design import pseudo_inverse, residual_projector
from repro.hashing.family import HashFamily, ItemId, make_family
from repro.sketch.vectorized_tower import VectorizedTower


class VectorizedXSketch:
    """Numpy-batched X-Sketch (tower Stage-1 structure only).

    Exposes the same stream protocol as the other engines.
    """

    def __init__(
        self,
        config: XSketchConfig,
        seed: int = 0,
        family: HashFamily = None,
        rng: random.Random = None,
        recorder=None,
    ):
        if config.stage1_structure != "tower":
            raise ConfigurationError(
                "the vectorized engine implements the paper's tower Stage 1 only; "
                f"got stage1_structure={config.stage1_structure!r}"
            )
        self.config = config
        shared_family = family if family is not None else make_family(config.hash_family, seed)
        shared_rng = rng if rng is not None else random.Random(seed)
        from repro.obs.recorder import NULL_RECORDER

        # The numpy hot path runs uninstrumented; the recorder still
        # reaches Stage 2 (the few tracked/promoted items) and keeps the
        # engine drop-in for recorder-carrying construction sites.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.tower = VectorizedTower(
            memory_bytes=config.stage1_bytes,
            s=config.s,
            d=config.d,
            update_rule=config.update_rule,
            family=shared_family,
            seed=seed,
            hash_family=config.hash_family,
        )
        self.stage2 = Stage2(
            config, family=shared_family, seed=seed, rng=shared_rng,
            recorder=self.recorder,
        )
        self.window = 0
        self._reports: List[SimplexReport] = []
        self._buffer: Dict[ItemId, int] = {}
        # cached fitting operators for the s-window short fit
        k = config.task.k
        self._pinv_leading = np.asarray(pseudo_inverse(config.s, k)[k])
        self._projector_t = residual_projector(config.s, k).T
        # stats
        self._stage1_arrivals = 0
        self._stage1_fits = 0
        self._promotions = 0

    def insert(self, item: ItemId) -> None:
        """Buffer one arrival."""
        buffer = self._buffer
        buffer[item] = buffer.get(item, 0) + 1

    def ingest_batch(self, items) -> None:
        """Buffer a batch of arrivals (the runtime/service hot path)."""
        buffer = self._buffer
        for item in items:
            buffer[item] = buffer.get(item, 0) + 1

    def end_window(self) -> List[SimplexReport]:
        """Flush the buffer through the batched Stage-1/Stage-2 pipeline."""
        window = self.window
        config = self.config
        s = config.s
        p = config.task.p
        slot_p = window % p
        stage2 = self.stage2

        untracked_items: List[ItemId] = []
        untracked_counts: List[int] = []
        for item, count in self._buffer.items():
            cell = stage2.lookup(item)
            if cell is not None:
                cell.counts[slot_p] += count
            else:
                untracked_items.append(item)
                untracked_counts.append(count)
        self._buffer = {}

        if untracked_items:
            counts = np.asarray(untracked_counts, dtype=np.int64)
            self._stage1_arrivals += int(counts.sum())
            positions = self.tower.positions(untracked_items)
            self.tower.bulk_insert(positions, counts, window % s)
            if window >= s - 1:
                slots = [(window - s + 1 + j) % s for j in range(s)]
                estimates = self.tower.query_recent(positions, slots)
                positive = (estimates > 0).all(axis=1)
                if positive.any():
                    spans = estimates[positive].astype(np.float64)
                    self._stage1_fits += spans.shape[0]
                    leading = spans @ self._pinv_leading
                    residuals = spans @ self._projector_t
                    mse = np.mean(residuals * residuals, axis=1)
                    lam = np.abs(leading) / (mse + config.delta)
                    chosen = lam >= config.G
                    if chosen.any():
                        candidate_indices = np.nonzero(positive)[0][chosen]
                        lams = lam[chosen]
                        for index, potential_value in zip(candidate_indices, lams):
                            item = untracked_items[int(index)]
                            promotion = Promotion(
                                item=item,
                                frequencies=tuple(int(v) for v in estimates[int(index)]),
                                w_str=window - s + 1,
                                potential=float(potential_value),
                            )
                            self._promotions += 1
                            stage2.try_insert(promotion, window)

        reports = stage2.end_window(window)
        self.tower.clear_slot((window + 1) % s)
        self._reports.extend(reports)
        self.window += 1
        return reports

    def run_window(self, items) -> List[SimplexReport]:
        """Convenience: buffer a whole window of arrivals, then close it."""
        buffer = self._buffer
        for item in items:
            buffer[item] = buffer.get(item, 0) + 1
        return self.end_window()

    @property
    def reports(self) -> List[SimplexReport]:
        return list(self._reports)

    def merge(self, other: "VectorizedXSketch") -> "VectorizedXSketch":
        """Fold another vectorized sketch into this one.

        The sharded runtime's compaction / re-shard path.  Requirements
        mirror :meth:`repro.core.xsketch.XSketch.merge`: identical
        configuration, identical hash seed, both paused at the same
        window boundary (empty arrival buffers).  The tower merges
        counter-wise saturating, Stage 2 by weight election, and the
        report streams interleave in canonical report order.
        """
        if not isinstance(other, VectorizedXSketch):
            raise MergeError(
                f"cannot merge VectorizedXSketch with {type(other).__name__}"
            )
        if self.config != other.config:
            raise MergeError("cannot merge vectorized sketches with different configurations")
        if self.window != other.window:
            raise MergeError(
                f"cannot merge vectorized sketches at different windows "
                f"({self.window} vs {other.window}); merge at a window boundary"
            )
        if self._buffer or other._buffer:
            raise MergeError(
                "merge only at a window boundary (arrival buffer not empty)"
            )
        self.tower.merge(other.tower)
        self.stage2.merge(other.stage2, self.window)
        self._stage1_arrivals += other._stage1_arrivals
        self._stage1_fits += other._stage1_fits
        self._promotions += other._promotions
        self._reports = sorted(self._reports + other._reports, key=report_order)
        return self

    @property
    def memory_bytes(self) -> float:
        return self.tower.memory_bytes + self.stage2.memory_bytes

    def metrics_registry(self, registry=None):
        """Canonical metrics view (same catalog as :class:`XSketch`).

        The vectorized engine runs uninstrumented (no recorder hook on
        its numpy hot path); only the decision counters are exported.
        """
        from repro.obs.collect import collect_xsketch

        return collect_xsketch(self, registry)

    @property
    def stats(self) -> XSketchStats:
        return XSketchStats(
            windows=self.window,
            stage1_arrivals=self._stage1_arrivals,
            stage1_fits=self._stage1_fits,
            promotions=self._promotions,
            stage2_tracked=len(self.stage2),
            inserts_empty=self.stage2.inserts_empty,
            replacements_won=self.stage2.replacements_won,
            replacements_lost=self.stage2.replacements_lost,
            evictions_zero=self.stage2.evictions_zero,
            reports=len(self._reports),
        )
