"""Multi-degree X-Sketch: one pass, all of k = 0, 1, 2.

Section I-B claims X-Sketch "is generic: it only needs one X-Sketch to
find the three types of k-simplex items with k = 0, 1, 2".  The claim
holds because the *structure* is degree-independent -- Stage 1 records
per-window counts, Stage 2 tracks exact counts -- and only the fitting
degree differs.  :class:`MultiKXSketch` makes that concrete: a single
Stage 1 + Stage 2 pass evaluates every requested degree's definition on
the same counters and emits per-degree reports.

Differences from running one :class:`XSketch` per degree:

* **Memory**: one structure instead of three (the bench quantifies it).
* **Promotion**: an item is promoted when its Potential reaches ``G``
  for *any* requested degree (the union of the per-degree gates).
* **Per-degree start windows**: each cell keeps one ``w_str`` per
  degree, because Algorithm 2's slide-on-failed-fit is
  degree-dependent; the replacement weight uses the largest of the
  per-degree weights (the strongest surviving claim).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.config import XSketchConfig
from repro.core.reports import SimplexReport
from repro.core.stage1 import Stage1
from repro.errors import ConfigurationError
from repro.fitting.polyfit import fit_leading_and_mse, fit_polynomial
from repro.fitting.simplex import SimplexTask
from repro.hashing.family import HashFamily, ItemId, make_family


class _MultiCell:
    """Stage-2 cell with one starting window per tracked degree."""

    __slots__ = ("item", "w_strs", "counts")

    def __init__(self, item: ItemId, w_str: int, p: int, n_degrees: int):
        self.item = item
        self.w_strs = [w_str] * n_degrees
        self.counts: List[int] = [0] * p

    def weight(self, window: int) -> int:
        """Largest per-degree weight: the strongest surviving claim."""
        return window - min(self.w_strs)

    def frequencies_ending_at(self, window: int) -> List[int]:
        p = len(self.counts)
        return [self.counts[(window - p + 1 + j) % p] for j in range(p)]


@dataclass(frozen=True)
class MultiKConfig:
    """Configuration of a multi-degree run.

    ``tasks`` must share ``p`` (they share the Stage-2 ring); ``base``
    carries the memory/structure parameters and the Stage-1 geometry.
    """

    tasks: Tuple[SimplexTask, ...]
    base: XSketchConfig = field(default_factory=XSketchConfig)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ConfigurationError("tasks must be non-empty")
        ps = {task.p for task in self.tasks}
        if len(ps) != 1:
            raise ConfigurationError(f"all tasks must share p, got {sorted(ps)}")
        max_k = max(task.k for task in self.tasks)
        if self.base.s < max_k + 1:
            raise ConfigurationError(
                f"s={self.base.s} cannot fit degree {max_k} (need s >= {max_k + 1})"
            )
        if self.base.task.p != self.tasks[0].p:
            raise ConfigurationError(
                "base.task.p must equal the shared p of the tasks "
                f"({self.base.task.p} != {self.tasks[0].p})"
            )

    @staticmethod
    def paper_default(memory_kb: float = 60.0, ks: Sequence[int] = (0, 1, 2)) -> "MultiKConfig":
        tasks = tuple(SimplexTask.paper_default(k) for k in ks)
        base = XSketchConfig(task=tasks[-1], memory_kb=memory_kb)
        return MultiKConfig(tasks=tasks, base=base)


class MultiKXSketch:
    """Single-pass simplex finder for several degrees at once."""

    def __init__(
        self,
        config: MultiKConfig,
        seed: int = 0,
        family: HashFamily = None,
        rng: random.Random = None,
    ):
        self.config = config
        base = config.base
        shared_family = family if family is not None else make_family(base.hash_family, seed)
        self._rng = rng if rng is not None else random.Random(seed ^ 0x5BD1E995)
        # Stage 1 is degree-independent storage; reuse it with the base
        # config (its per-arrival gate is replaced by ours below).
        self.stage1 = Stage1(base, family=shared_family, seed=seed, rng=self._rng)
        self.family = shared_family
        self.p = config.tasks[0].p
        self.m = base.stage2_buckets
        self.u = base.u
        self.buckets: List[List[_MultiCell]] = [[] for _ in range(self.m)]
        self._index: Dict[ItemId, _MultiCell] = {}
        self._bucket_hash_index = base.d
        self.window = 0
        self._reports: Dict[int, List[SimplexReport]] = {task.k: [] for task in config.tasks}

    def _bucket_of(self, item: ItemId) -> List[_MultiCell]:
        return self.buckets[self.family.hash32(item, self._bucket_hash_index) % self.m]

    def insert(self, item: ItemId) -> None:
        """Process one arrival (union-gated Algorithm 1)."""
        window = self.window
        cell = self._index.get(item)
        if cell is not None:
            cell.counts[window % self.p] += 1
            return
        base = self.config.base
        s = base.s
        stage1 = self.stage1
        stage1.arrivals += 1
        stage1.filter.insert(item, window % s)
        if window < s - 1:
            return
        frequencies = stage1.filter.query_slots_positive(item, stage1._recent_slots(window))
        if frequencies is None:
            return
        stage1.fits += 1
        promoted = False
        for task in self.config.tasks:
            leading, mse = fit_leading_and_mse(frequencies, task.k)
            if abs(leading) / (mse + base.delta) >= base.G:
                promoted = True
                break
        if not promoted:
            return
        stage1.promotions += 1
        self._try_insert(item, frequencies, window)

    def _try_insert(self, item: ItemId, frequencies, window: int) -> bool:
        s = self.config.base.s
        bucket = self._bucket_of(item)
        if len(bucket) >= self.u:
            victim = min(bucket, key=lambda c: c.weight(window))
            w_min = victim.weight(window)
            if w_min >= 1 and self._rng.random() >= 1.0 / w_min:
                return False
            bucket.remove(victim)
            del self._index[victim.item]
        cell = _MultiCell(item, window - s + 1, self.p, len(self.config.tasks))
        for j, frequency in enumerate(frequencies):
            cell.counts[(window - s + 1 + j) % self.p] = frequency
        bucket.append(cell)
        self._index[item] = cell
        return True

    def end_window(self) -> Dict[int, List[SimplexReport]]:
        """Algorithm 2 per degree; returns this window's reports by k."""
        window = self.window
        p = self.p
        current_slot = window % p
        next_slot = (window + 1) % p
        new_reports: Dict[int, List[SimplexReport]] = {
            task.k: [] for task in self.config.tasks
        }
        for bucket in self.buckets:
            survivors: List[_MultiCell] = []
            for cell in bucket:
                if cell.counts[current_slot] == 0:
                    del self._index[cell.item]
                    continue
                frequencies = None
                for degree_index, task in enumerate(self.config.tasks):
                    if window - cell.w_strs[degree_index] + 1 < p:
                        continue
                    if frequencies is None:
                        frequencies = cell.frequencies_ending_at(window)
                    fit = fit_polynomial(frequencies, task.k)
                    if task.passes(fit.leading, fit.mse):
                        new_reports[task.k].append(
                            SimplexReport(
                                item=cell.item,
                                start_window=window - p + 1,
                                report_window=window,
                                lasting_time=window - cell.w_strs[degree_index],
                                coefficients=fit.coefficients,
                                mse=fit.mse,
                            )
                        )
                    else:
                        cell.w_strs[degree_index] = window - p + 2
                cell.counts[next_slot] = 0
                survivors.append(cell)
            bucket[:] = survivors
        self.stage1.end_window(window)
        for k, reports in new_reports.items():
            self._reports[k].extend(reports)
        self.window += 1
        return new_reports

    def run_window(self, items) -> Dict[int, List[SimplexReport]]:
        """Convenience: insert a whole window of arrivals, then close it."""
        insert = self.insert
        for item in items:
            insert(item)
        return self.end_window()

    def reports(self, k: int) -> List[SimplexReport]:
        """All reports for degree ``k`` so far."""
        return list(self._reports[k])

    @property
    def memory_bytes(self) -> float:
        """Stage 1 + Stage 2 with the per-degree w_str fields accounted."""
        cell_bytes = 4 + 4 * len(self.config.tasks) + self.p * 4
        return self.stage1.memory_bytes + float(self.m * self.u * cell_bytes)
