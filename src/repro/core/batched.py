"""Window-batched X-Sketch: the stream-rate variant.

The paper's Algorithm 1 runs the Short-Term-Filtering query and the
Potential fit on *every arrival* of an untracked item -- cheap in C++,
dominant in Python (the reproduction band flags exactly this).  The
batched variant buffers one window's arrivals as (item, count) pairs
and does the per-item work once per window at the transition:

* tracked items add their full count to their Stage-2 slot (identical
  to per-arrival counting -- addition commutes);
* untracked items bulk-update Stage 1 and face the positivity /
  Potential check once, on the complete window count.

Semantics vs :class:`~repro.core.xsketch.XSketch`: final counter states
are identical; the only difference is that per-arrival mode evaluates
the Potential gate on *partially accumulated* current-window counts as
well, so it can promote strictly more items (promotions whose full-
window view fails the gate).  Batched mode is therefore at least as
precise, misses nothing whose complete windows pass the gate, and the
no-collision equivalence property to the exact oracle holds for it too
(``tests/test_core/test_batched.py``).  Throughput is several times
higher because the hot loop is a dict increment.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.config import XSketchConfig
from repro.core.reports import SimplexReport
from repro.core.stage1 import Stage1
from repro.core.stage2 import Stage2
from repro.core.xsketch import XSketchStats, report_order
from repro.errors import MergeError
from repro.hashing.family import HashFamily, ItemId, make_family


class BatchedXSketch:
    """Drop-in X-Sketch variant with per-window batch processing.

    Exposes the same stream protocol (``insert`` / ``end_window`` /
    ``run_window`` / ``reports`` / ``stats``) as
    :class:`~repro.core.xsketch.XSketch`.
    """

    def __init__(
        self,
        config: XSketchConfig,
        seed: int = 0,
        family: HashFamily = None,
        rng: random.Random = None,
        recorder=None,
    ):
        self.config = config
        shared_family = family if family is not None else make_family(config.hash_family, seed)
        shared_rng = rng if rng is not None else random.Random(seed)
        from repro.obs.recorder import NULL_RECORDER

        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.stage1 = Stage1(
            config, family=shared_family, seed=seed, rng=shared_rng,
            recorder=self.recorder,
        )
        self.stage2 = Stage2(
            config, family=shared_family, seed=seed, rng=shared_rng,
            recorder=self.recorder,
        )
        self.window = 0
        self._reports: List[SimplexReport] = []
        self._buffer: Dict[ItemId, int] = {}

    def insert(self, item: ItemId) -> None:
        """Buffer one arrival (all per-item work happens at end_window)."""
        buffer = self._buffer
        buffer[item] = buffer.get(item, 0) + 1

    def ingest_batch(self, items) -> None:
        """Buffer a batch of arrivals (the runtime/service hot path)."""
        buffer = self._buffer
        for item in items:
            buffer[item] = buffer.get(item, 0) + 1

    def end_window(self) -> List[SimplexReport]:
        """Flush the window buffer, then run the Stage-2 transition."""
        window = self.window
        p = self.config.task.p
        slot = window % p
        stage1 = self.stage1
        stage2 = self.stage2
        for item, count in self._buffer.items():
            cell = stage2.lookup(item)
            if cell is not None:
                cell.counts[slot] += count
                continue
            promotion = stage1.insert_batch(item, window, count)
            if promotion is not None:
                stage2.try_insert(promotion, window)
        self._buffer = {}
        reports = stage2.end_window(window)
        stage1.end_window(window)
        self._reports.extend(reports)
        self.window += 1
        return reports

    def run_window(self, items) -> List[SimplexReport]:
        """Convenience: buffer a whole window of arrivals, then close it."""
        buffer = self._buffer
        for item in items:
            buffer[item] = buffer.get(item, 0) + 1
        return self.end_window()

    @property
    def reports(self) -> List[SimplexReport]:
        """All reports emitted so far, in emission order."""
        return list(self._reports)

    def merge(self, other: "BatchedXSketch") -> "BatchedXSketch":
        """Fold another batched sketch into this one.

        The sharded runtime's compaction / re-shard path; requirements
        mirror :meth:`repro.core.xsketch.XSketch.merge` plus the batched
        invariant that both peers sit at a window boundary (empty
        arrival buffers -- a buffer is working state and has no merge
        semantics).
        """
        if not isinstance(other, BatchedXSketch):
            raise MergeError(
                f"cannot merge BatchedXSketch with {type(other).__name__}"
            )
        if self.config != other.config:
            raise MergeError("cannot merge batched sketches with different configurations")
        if self.window != other.window:
            raise MergeError(
                f"cannot merge batched sketches at different windows "
                f"({self.window} vs {other.window}); merge at a window boundary"
            )
        if self._buffer or other._buffer:
            raise MergeError(
                "merge only at a window boundary (arrival buffer not empty)"
            )
        self.stage1.merge(other.stage1)
        self.stage2.merge(other.stage2, self.window)
        self._reports = sorted(self._reports + other._reports, key=report_order)
        return self

    @property
    def memory_bytes(self) -> float:
        """Accounted memory across both stages (the window buffer is
        working storage, not sketch state)."""
        return self.stage1.memory_bytes + self.stage2.memory_bytes

    def metrics_registry(self, registry=None):
        """Canonical metrics view (same catalog as :class:`XSketch`)."""
        from repro.obs.collect import collect_xsketch

        return collect_xsketch(self, registry)

    @property
    def stats(self) -> XSketchStats:
        """Operational counters (same schema as :class:`XSketch`)."""
        return XSketchStats(
            windows=self.window,
            stage1_arrivals=self.stage1.arrivals,
            stage1_fits=self.stage1.fits,
            promotions=self.stage1.promotions,
            stage2_tracked=len(self.stage2),
            inserts_empty=self.stage2.inserts_empty,
            replacements_won=self.stage2.replacements_won,
            replacements_lost=self.stage2.replacements_lost,
            evictions_zero=self.stage2.evictions_zero,
            reports=len(self._reports),
        )
