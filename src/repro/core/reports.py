"""Report records emitted by simplex-finding algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.compat import FrozenSlots
from repro.hashing.family import ItemId


@dataclass(frozen=True)
class SimplexReport(FrozenSlots):
    """One reported k-simplex instance.

    A report at window ``w`` claims the item satisfied the k-simplex
    definition over windows ``start_window .. w`` (a span of ``p``
    windows), following the paper's ``report (e, w - p + 1)``.

    Attributes:
        item: the reported item ID.
        start_window: first window of the satisfying span (``w - p + 1``).
        report_window: the window at whose end the report was emitted.
        lasting_time: the algorithm's estimate of the item's lasting time
            ``t = w - w_str`` (Equation 7); ARE is measured on this.
        coefficients: fitted polynomial coefficients ``(a_0, ..., a_k)``.
        mse: MSE of the fit over the reported span.
    """

    __slots__ = (
        "item",
        "start_window",
        "report_window",
        "lasting_time",
        "coefficients",
        "mse",
    )

    item: ItemId
    start_window: int
    report_window: int
    lasting_time: int
    coefficients: Tuple[float, ...]
    mse: float

    @property
    def instance(self) -> Tuple[ItemId, int]:
        """The (item, start_window) pair used for truth matching."""
        return (self.item, self.start_window)
