"""The baseline solution of Section III-A.

``p`` CM sketches arranged as a ring over windows (selected by ``w % p``),
a per-window candidate set holding IDs of items observed to be continuous,
and a hash table recording lasting times of reported simplex items.  On
each arrival the item is counted in the current window's sketch and its
continuity over the previous ``p - 1`` windows is checked by querying the
other sketches; continuous items enter the candidate set.  At the end of
each window every candidate's ``p`` estimated frequencies are fitted and
reports are emitted for those satisfying the k-simplex definition.

Implementation notes (the paper leaves these to the implementer; all are
recorded in DESIGN.md):

* The ring of ``p`` CM sketches shares one set of hash functions -- the
  common way to implement a sketch ring -- realized as a single windowed
  CM structure with ``p`` sub-counters per counter.
* The candidate set and the hash table are capacity-limited by their
  memory shares (4 bytes per set entry; 12 bytes per table entry), which
  is what degrades the baseline at small memory budgets.
* The memory budget splits ``sketch_fraction`` to the sketches and the
  rest between set and table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.config import ID_BYTES
from repro.errors import ConfigurationError
from repro.core.reports import SimplexReport
from repro.fitting.polyfit import fit_polynomial
from repro.fitting.simplex import SimplexTask
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.windowed import WindowedCM

#: Bytes per lasting-time table entry: ID + chain start + last report window.
TABLE_ENTRY_BYTES = 12


@dataclass(frozen=True)
class BaselineConfig:
    """Parameters of the baseline solution.

    Attributes:
        task: the k-simplex problem definition (shares ``p`` with the ring).
        memory_kb: total budget across sketches, set and table.
        d: arrays per CM sketch.
        sketch_fraction: share of memory given to the ``p`` sketches.
        set_fraction: share given to the candidate set; the table gets
            the remainder.
    """

    task: SimplexTask = field(default_factory=SimplexTask)
    memory_kb: float = 200.0
    d: int = 3
    sketch_fraction: float = 0.7
    set_fraction: float = 0.1
    hash_family: str = "crc"

    def __post_init__(self) -> None:
        if self.memory_kb <= 0:
            raise ConfigurationError(f"memory_kb must be positive, got {self.memory_kb}")
        if not 0.0 < self.sketch_fraction < 1.0:
            raise ConfigurationError(
                f"sketch_fraction must be in (0, 1), got {self.sketch_fraction}"
            )
        if not 0.0 < self.set_fraction < 1.0 - self.sketch_fraction:
            raise ConfigurationError(
                "set_fraction must leave room for the lasting-time table; "
                f"got set_fraction={self.set_fraction}, sketch_fraction={self.sketch_fraction}"
            )

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_kb * 1024)

    @property
    def sketch_bytes(self) -> int:
        return int(self.memory_bytes * self.sketch_fraction)

    @property
    def set_capacity(self) -> int:
        return max(1, int(self.memory_bytes * self.set_fraction) // ID_BYTES)

    @property
    def table_capacity(self) -> int:
        table_bytes = self.memory_bytes - self.sketch_bytes - int(
            self.memory_bytes * self.set_fraction
        )
        return max(1, table_bytes // TABLE_ENTRY_BYTES)


class _ChainEntry:
    """Lasting-time table entry: start of the current reporting chain."""

    __slots__ = ("chain_start", "last_report")

    def __init__(self, chain_start: int, last_report: int):
        self.chain_start = chain_start
        self.last_report = last_report


class BaselineSolution:
    """The multi-CM-sketch baseline (Section III-A)."""

    def __init__(self, config: BaselineConfig, seed: int = 0, family: HashFamily = None):
        self.config = config
        p = config.task.p
        self.ring = WindowedCM(
            memory_bytes=config.sketch_bytes,
            s=p,
            d=config.d,
            family=family,
            seed=seed,
            hash_family=config.hash_family,
        )
        self.window = 0
        self._candidates: Set[ItemId] = set()
        self._table: Dict[ItemId, _ChainEntry] = {}
        self._reports: List[SimplexReport] = []

    def insert(self, item: ItemId) -> None:
        """Count one arrival and run the continuity check."""
        p = self.config.task.p
        window = self.window
        self.ring.insert(item, window % p)
        if item in self._candidates:
            return
        if window < p - 1:
            return
        # Continuity over the p-1 previous windows: any zero interrupts it.
        for back in range(1, p):
            if self.ring.query_slot(item, (window - back) % p) == 0:
                return
        if len(self._candidates) < self.config.set_capacity:
            self._candidates.add(item)

    def end_window(self) -> List[SimplexReport]:
        """Traverse the candidate set, fit, report; then rotate the ring."""
        task = self.config.task
        p = task.p
        window = self.window
        reports: List[SimplexReport] = []
        for item in self._candidates:
            frequencies = self.ring.query_slots(
                item, [(window - p + 1 + j) % p for j in range(p)]
            )
            if any(f == 0 for f in frequencies):
                continue
            fit = fit_polynomial(frequencies, task.k)
            if not task.passes(fit.leading, fit.mse):
                continue
            entry = self._table.get(item)
            if entry is not None and entry.last_report == window - 1:
                entry.last_report = window
            else:
                entry = _ChainEntry(chain_start=window - p + 1, last_report=window)
                if item in self._table or len(self._table) < self.config.table_capacity:
                    self._table[item] = entry
            reports.append(
                SimplexReport(
                    item=item,
                    start_window=window - p + 1,
                    report_window=window,
                    lasting_time=window - entry.chain_start,
                    coefficients=fit.coefficients,
                    mse=fit.mse,
                )
            )
        # Periodic cleaning: the set is per-window; dead chains leave the
        # table; the oldest sketch is cleared to take the next window.
        self._candidates.clear()
        dead = [item for item, entry in self._table.items() if entry.last_report < window]
        for item in dead:
            del self._table[item]
        self.ring.clear_slot((window + 1) % p)
        self._reports.extend(reports)
        self.window += 1
        return reports

    def run_window(self, items) -> List[SimplexReport]:
        """Convenience: insert a whole window of arrivals, then close it."""
        insert = self.insert
        for item in items:
            insert(item)
        return self.end_window()

    @property
    def reports(self) -> List[SimplexReport]:
        return list(self._reports)

    @property
    def memory_bytes(self) -> float:
        return (
            self.ring.memory_bytes
            + self.config.set_capacity * ID_BYTES
            + self.config.table_capacity * TABLE_ENTRY_BYTES
        )
