"""Exact ground truth for k-simplex items.

The oracle keeps exact per-window counts for every item (unbounded
memory), then enumerates every *instance* -- an (item, start_window) pair
satisfying the k-simplex definition over windows ``start .. start+p-1``.
PR/RR/F1 match reported instances against this set; ARE compares each
matched report's estimated lasting time with the true lasting time.

True lasting time mirrors Equation 7: instances of one item at
consecutive start windows form a *chain* (the sketch's ``w_str`` stays put
while fits keep succeeding), and the true lasting time at report window
``w = start + p - 1`` is ``w - chain_start``.

The per-item sweep is vectorized: all start windows of a presence run are
fitted at once with the cached pseudo-inverse / residual projector, which
keeps exact ground truth affordable even for full-size streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.reports import SimplexReport
from repro.errors import StreamError
from repro.fitting.design import pseudo_inverse, residual_projector
from repro.fitting.simplex import SimplexTask
from repro.hashing.family import ItemId

Instance = Tuple[ItemId, int]


class SimplexOracle:
    """Exact simplex-item finder (the evaluation's ground truth).

    Drive it with the same protocol as the sketches (``insert`` +
    ``end_window``), or build it in one call with :meth:`from_stream`.
    Call :meth:`finalize` (idempotent) before reading results.
    """

    __slots__ = ("task", "window", "_counts", "_instances", "_chain_start")

    def __init__(self, task: SimplexTask):
        self.task = task
        self.window = 0
        self._counts: Dict[ItemId, Dict[int, int]] = {}
        self._instances: Optional[Set[Instance]] = None
        self._chain_start: Dict[Instance, int] = {}

    @classmethod
    def from_stream(cls, windows: Iterable[Iterable[ItemId]], task: SimplexTask) -> "SimplexOracle":
        """Consume an iterable of windows of arrivals and finalize."""
        oracle = cls(task)
        for window_items in windows:
            for item in window_items:
                oracle.insert(item)
            oracle.end_window()
        oracle.finalize()
        return oracle

    def insert(self, item: ItemId) -> None:
        """Count one arrival in the current window."""
        per_window = self._counts.get(item)
        if per_window is None:
            per_window = {}
            self._counts[item] = per_window
        per_window[self.window] = per_window.get(self.window, 0) + 1
        self._instances = None

    def end_window(self) -> None:
        self.window += 1
        self._instances = None

    def frequency(self, item: ItemId, window: int) -> int:
        """Exact frequency of ``item`` in ``window``."""
        return self._counts.get(item, {}).get(window, 0)

    def frequency_vector(self, item: ItemId, start: int, length: int) -> List[int]:
        """Exact frequencies over ``length`` windows from ``start``."""
        per_window = self._counts.get(item, {})
        return [per_window.get(start + j, 0) for j in range(length)]

    def items(self) -> List[ItemId]:
        """All distinct items observed."""
        return list(self._counts)

    def finalize(self) -> None:
        """Enumerate all instances and their chains (idempotent)."""
        if self._instances is not None:
            return
        task = self.task
        p = task.p
        k = task.k
        pinv_leading = np.asarray(pseudo_inverse(p, k)[k])
        projector = residual_projector(p, k)
        instances: Set[Instance] = set()
        chain_start: Dict[Instance, int] = {}

        for item, per_window in self._counts.items():
            starts = self._instance_starts(per_window, p, pinv_leading, projector, task)
            previous = None
            for start in starts:
                instances.add((item, start))
                if previous is not None and previous == start - 1:
                    chain_start[(item, start)] = chain_start[(item, previous)]
                else:
                    chain_start[(item, start)] = start
                previous = start
        self._instances = instances
        self._chain_start = chain_start

    @staticmethod
    def _instance_starts(
        per_window: Dict[int, int],
        p: int,
        pinv_leading: np.ndarray,
        projector: np.ndarray,
        task: SimplexTask,
    ) -> List[int]:
        """Sorted start windows of all satisfying spans of one item."""
        if len(per_window) < p:
            return []
        windows = sorted(per_window)
        starts: List[int] = []
        # Split presence into maximal runs of consecutive windows; only
        # runs of at least p windows can host instances.
        run_begin = 0
        for i in range(1, len(windows) + 1):
            if i == len(windows) or windows[i] != windows[i - 1] + 1:
                run = windows[run_begin:i]
                run_begin = i
                if len(run) < p:
                    continue
                values = np.array([per_window[w] for w in run], dtype=np.float64)
                spans = np.lib.stride_tricks.sliding_window_view(values, p)
                leading = spans @ pinv_leading
                residuals = spans @ projector.T
                mse = np.mean(residuals * residuals, axis=1)
                mask = (mse <= task.T + 1e-9) & (np.abs(leading) >= task.L - 1e-9)
                starts.extend(int(run[j]) for j in np.nonzero(mask)[0])
        starts.sort()
        return starts

    @property
    def instances(self) -> Set[Instance]:
        """All true (item, start_window) instances."""
        if self._instances is None:
            raise StreamError("call finalize() before reading oracle results")
        return self._instances

    def is_instance(self, item: ItemId, start_window: int) -> bool:
        return (item, start_window) in self.instances

    def true_lasting(self, item: ItemId, start_window: int) -> Optional[int]:
        """True lasting time at the report window of instance ``(item,
        start_window)``: ``(start_window + p - 1) - chain_start``."""
        if (item, start_window) not in self.instances:
            return None
        report_window = start_window + self.task.p - 1
        return report_window - self._chain_start[(item, start_window)]

    def reports(self) -> List[SimplexReport]:
        """Ground-truth reports (one per instance) with exact fits."""
        self.finalize()
        p = self.task.p
        k = self.task.k
        out: List[SimplexReport] = []
        for item, start in sorted(self.instances, key=lambda x: (x[1], str(x[0]))):
            values = self.frequency_vector(item, start, p)
            from repro.fitting.polyfit import fit_polynomial

            fit = fit_polynomial(values, k)
            out.append(
                SimplexReport(
                    item=item,
                    start_window=start,
                    report_window=start + p - 1,
                    lasting_time=self.true_lasting(item, start),
                    coefficients=fit.coefficients,
                    mse=fit.mse,
                )
            )
        return out
