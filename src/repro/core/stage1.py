"""Stage 1: Short-Term Filtering and the Potential gate.

Stage 1 records per-window frequencies of the latest ``s < p`` windows in
a windowed TowerSketch (or an alternative structure for the Figure-9
comparison).  An arrival whose item is not tracked by Stage 2 is counted
here, then checked against the *Preliminary Condition*: all of the latest
``s`` window frequencies positive.  If so, the short span is
polynomial-fitted and the Potential ``Λ = |a_k| / (ε + Δ)`` (Equation 6)
is compared with the threshold ``G``; items reaching it are promoted to
Stage 2 with their ``s`` estimated frequencies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.compat import FrozenSlots
from repro.config import XSketchConfig
from repro.fitting.polyfit import fit_leading_and_mse
from repro.hashing.family import HashFamily, ItemId
from repro.obs.collect import POTENTIAL_BUCKETS
from repro.obs.recorder import NULL_RECORDER
from repro.sketch.windowed import WindowedFilter, make_windowed_filter


@dataclass(frozen=True)
class Promotion(FrozenSlots):
    """A potential simplex item handed from Stage 1 to Stage 2.

    ``frequencies`` are Stage 1's estimates for the latest ``s`` windows
    (oldest first); ``w_str`` is the logical starting window ``w - s + 1``.

    ``__slots__`` because promotions are minted on the per-item insert
    path (hot-loop-alloc); explicit tuple since ``slots=True`` needs
    Python 3.10 and this repo supports 3.9.
    """

    __slots__ = ("item", "frequencies", "w_str", "potential")

    item: ItemId
    frequencies: Tuple[int, ...]
    w_str: int
    potential: float


class Stage1:
    """Short-Term Filtering stage of X-Sketch.

    Args:
        config: the full X-Sketch configuration (uses ``stage1_bytes``,
            ``s``, ``d``, ``update_rule``, ``stage1_structure``, ``G``,
            ``delta`` and the task's ``k``).
        family: hash family shared with the rest of the sketch.
        rng: random source (only used by the LogLog structure).
        recorder: observability recorder; the default no-op recorder
            leaves the per-arrival path untouched, a live one gets the
            Potential histogram and promotion trace events (at fit
            frequency, never per arrival).
    """

    def __init__(
        self,
        config: XSketchConfig,
        family: HashFamily = None,
        seed: int = 0,
        rng: random.Random = None,
        recorder=None,
    ):
        self.config = config
        recorder = recorder if recorder is not None else NULL_RECORDER
        self.filter: WindowedFilter = make_windowed_filter(
            structure=config.stage1_structure,
            memory_bytes=config.stage1_bytes,
            s=config.s,
            d=config.d,
            update_rule=config.update_rule,
            family=family,
            seed=seed,
            hash_family=config.hash_family,
            rng=rng,
            recorder=recorder,
        )
        self._k = config.task.k
        self._s = config.s
        self._g = config.G
        self._delta = config.delta
        self._cached_window = -1
        self._cached_slots: List[int] = []
        #: arrivals routed through Stage 1 (item not tracked by Stage 2)
        self.arrivals = 0
        #: short-term fits performed (positivity held over s windows)
        self.fits = 0
        #: promotions emitted (Potential reached G)
        self.promotions = 0
        self._obs = recorder if recorder.enabled else None
        self._h_potential = recorder.histogram(
            "xsketch_stage1_potential",
            "Potential Λ = |a_k| / (ε + Δ) at each short-term fit",
            buckets=POTENTIAL_BUCKETS,
        )

    def _recent_slots(self, window: int) -> List[int]:
        """Slots of windows ``window - s + 1 .. window``, oldest first.

        Cached per window: the list is identical for every arrival of a
        window, and this runs on the hot path.
        """
        if window != self._cached_window:
            s = self._s
            self._cached_window = window
            self._cached_slots = [(window - s + 1 + j) % s for j in range(s)]
        return self._cached_slots

    def insert(self, item: ItemId, window: int) -> Optional[Promotion]:
        """Count one arrival; return a :class:`Promotion` if the item now
        passes Short-Term Filtering and the Potential gate (Algorithm 1,
        lines 6-14)."""
        s = self._s
        self.arrivals += 1
        self.filter.insert(item, window % s)
        if window < s - 1:
            # The stream has not yet produced s windows; the span cannot be
            # fully positive, matching the all-zero initial sub-counters.
            return None
        frequencies = self.filter.query_slots_positive(item, self._recent_slots(window))
        if frequencies is None:
            return None
        self.fits += 1
        leading, mse = fit_leading_and_mse(frequencies, self._k)
        lam = abs(leading) / (mse + self._delta)
        obs = self._obs
        if obs is not None:
            self._h_potential.observe(lam)
        if lam < self._g:
            return None
        self.promotions += 1
        if obs is not None:
            obs.event(
                "stage1_promotion", item=str(item), window=window,
                potential=round(lam, 6),
            )
        return Promotion(
            item=item,
            frequencies=tuple(frequencies),
            w_str=window - s + 1,
            potential=lam,
        )

    def insert_batch(self, item: ItemId, window: int, count: int) -> Optional[Promotion]:
        """Batched variant of :meth:`insert`: ``count`` arrivals at once.

        Used by :class:`repro.core.batched.BatchedXSketch`, which runs
        the Preliminary-Condition / Potential check once per (item,
        window) on the complete window count instead of per arrival.
        """
        s = self._s
        self.arrivals += count
        self.filter.insert_count(item, window % s, count)
        if window < s - 1:
            return None
        frequencies = self.filter.query_slots_positive(item, self._recent_slots(window))
        if frequencies is None:
            return None
        self.fits += 1
        leading, mse = fit_leading_and_mse(frequencies, self._k)
        lam = abs(leading) / (mse + self._delta)
        obs = self._obs
        if obs is not None:
            self._h_potential.observe(lam)
        if lam < self._g:
            return None
        self.promotions += 1
        if obs is not None:
            obs.event(
                "stage1_promotion", item=str(item), window=window,
                potential=round(lam, 6),
            )
        return Promotion(
            item=item,
            frequencies=tuple(frequencies),
            w_str=window - s + 1,
            potential=lam,
        )

    def end_window(self, window: int) -> None:
        """Window transition: free the sub-counter slot the next window
        will use (the paper's Stage-1 cleaning policy)."""
        self.filter.clear_slot((window + 1) % self._s)

    def merge(self, other: "Stage1") -> "Stage1":
        """Fold another Stage 1 into this one (filter + counters).

        Both stages must have been built from the same configuration and
        hash seed (the underlying filter enforces geometry and seed).
        Used by the sharded runtime's re-shard / compaction path; in
        normal sharded operation each key lives on exactly one shard, so
        merged sub-counters combine disjoint key populations.
        """
        self.filter.merge(other.filter)
        self.arrivals += other.arrivals
        self.fits += other.fits
        self.promotions += other.promotions
        # Invalidate the per-window slot cache; the peers may have
        # stopped at different cached windows.
        self._cached_window = -1
        return self

    @property
    def memory_bytes(self) -> float:
        return self.filter.memory_bytes
