"""X-Sketch and its reference points.

* :class:`XSketch` -- the paper's contribution (Section III-D): Stage 1
  (Short-Term Filtering + Potential) feeding Stage 2 (Weight Election).
* :class:`BaselineSolution` -- Section III-A's combination of ``p`` CM
  sketches, a candidate set and a lasting-time hash table.
* :class:`SimplexOracle` -- exact ground truth computed from true
  per-window counts, used for PR/RR/F1/ARE evaluation.
"""

from repro.core.reports import SimplexReport
from repro.core.batched import BatchedXSketch
from repro.core.multik import MultiKConfig, MultiKXSketch
from repro.core.vectorized import VectorizedXSketch
from repro.core.stage1 import Promotion, Stage1
from repro.core.stage2 import Stage2, Stage2Cell
from repro.core.xsketch import XSketch
from repro.core.baseline import BaselineConfig, BaselineSolution
from repro.core.oracle import SimplexOracle
from repro.core.serialize import (
    load_xsketch,
    restore_xsketch,
    save_xsketch,
    snapshot_xsketch,
)

__all__ = [
    "BaselineConfig",
    "BaselineSolution",
    "BatchedXSketch",
    "MultiKConfig",
    "MultiKXSketch",
    "Promotion",
    "SimplexOracle",
    "SimplexReport",
    "Stage1",
    "Stage2",
    "Stage2Cell",
    "VectorizedXSketch",
    "XSketch",
    "load_xsketch",
    "restore_xsketch",
    "save_xsketch",
    "snapshot_xsketch",
]
