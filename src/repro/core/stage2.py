"""Stage 2: exact tracking with Weight Election.

A hash table of ``m`` buckets x ``u`` cells; each cell holds an item ID,
its starting window ``w_str`` and ``p`` per-window counters (a ring
indexed by ``w % p``).  Tracked items are counted exactly (Theorem 2: no
estimation error while resident).  When a promoted item lands in a full
bucket it replaces the minimum-weight resident with probability
``1 / W_min`` where ``W = w - w_str`` (Equations 7 and the replacement
strategy of Section III-D2), so long-lasting simplex items are protected.

The window-transition procedure (Algorithm 2) evicts items silent in the
closing window, reports cells whose last ``p`` windows satisfy the
k-simplex definition, slides ``w_str`` forward on failed fits, and clears
the ring slot the next window will use.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.config import XSketchConfig
from repro.core.reports import SimplexReport
from repro.core.stage1 import Promotion
from repro.errors import MergeError
from repro.fitting.polyfit import fit_polynomial
from repro.hashing.family import HashFamily, ItemId, make_family
from repro.obs.collect import OCCUPANCY_BUCKETS, WMIN_BUCKETS
from repro.obs.recorder import NULL_RECORDER


class Stage2Cell:
    """One Stage-2 cell: ⟨ID, Count (p ring counters), w_str⟩."""

    __slots__ = ("item", "w_str", "counts")

    def __init__(self, item: ItemId, w_str: int, p: int):
        self.item = item
        self.w_str = w_str
        self.counts: List[int] = [0] * p

    def weight(self, window: int) -> int:
        """Weight ``W = w - w_str`` (Equation 7): the lasting time."""
        return window - self.w_str

    def frequencies_ending_at(self, window: int) -> List[int]:
        """The last ``p`` window frequencies ``f_{w-p+1} .. f_w``."""
        p = len(self.counts)
        return [self.counts[(window - p + 1 + j) % p] for j in range(p)]


class Stage2:
    """Weight-Election stage of X-Sketch.

    The hash function picking the bucket is drawn from the shared family
    at an index disjoint from Stage 1's (index ``d``), mirroring the
    paper's independent ``h(.)``.
    """

    def __init__(
        self,
        config: XSketchConfig,
        family: HashFamily = None,
        seed: int = 0,
        rng: random.Random = None,
        recorder=None,
    ):
        self.config = config
        self.family = family if family is not None else make_family(config.hash_family, seed)
        self._rng = rng if rng is not None else random.Random(seed ^ 0x5BD1E995)
        self.m = config.stage2_buckets
        self.u = config.u
        self.p = config.task.p
        self.buckets: List[List[Stage2Cell]] = [[] for _ in range(self.m)]
        # Direct item -> cell index, a simulation accelerator for the
        # "is e in Stage 2?" test of Algorithm 1 line 2.  Semantics are
        # identical to scanning bucket B[h(e)]: the index only ever holds
        # items resident in their home bucket.
        self._index: Dict[ItemId, Stage2Cell] = {}
        self._bucket_hash_index = config.d
        #: promoted items placed in empty cells
        self.inserts_empty = 0
        #: replacement contests won / lost (full-bucket insertions)
        self.replacements_won = 0
        self.replacements_lost = 0
        #: evictions of items silent in the closing window
        self.evictions_zero = 0
        #: merge() calls absorbed into this table
        self.merges = 0
        #: incoming cells dropped by weight election during merges
        self.merge_dropped = 0
        recorder = recorder if recorder is not None else NULL_RECORDER
        self._obs = recorder if recorder.enabled else None
        self._h_wmin = recorder.histogram(
            "xsketch_stage2_wmin",
            "W_min of the victim at each full-bucket weight election",
            buckets=WMIN_BUCKETS,
        )
        self._h_occupancy = recorder.histogram(
            "xsketch_stage2_bucket_occupancy",
            "cells used per Stage-2 bucket, sampled at each window close",
            buckets=OCCUPANCY_BUCKETS,
        )

    def _bucket_of(self, item: ItemId) -> List[Stage2Cell]:
        return self.buckets[self.family.hash32(item, self._bucket_hash_index) % self.m]

    def lookup(self, item: ItemId) -> Optional[Stage2Cell]:
        """The cell tracking ``item``, or None."""
        return self._index.get(item)

    def record_arrival(self, item: ItemId, window: int) -> bool:
        """Case 1 of Algorithm 1: if tracked, count the arrival exactly."""
        cell = self._index.get(item)
        if cell is None:
            return False
        cell.counts[window % self.p] += 1
        return True

    def try_insert(self, promotion: Promotion, window: int) -> bool:
        """Insert a promoted item (Algorithm 1 lines 15-18).

        Returns True when the item ended up in the table, either in an
        empty cell or by winning the probabilistic replacement against the
        minimum-weight resident.
        """
        bucket = self._bucket_of(promotion.item)
        if len(bucket) < self.u:
            cell = self._make_cell(promotion, window)
            bucket.append(cell)
            self._index[promotion.item] = cell
            self.inserts_empty += 1
            return True
        victim = min(bucket, key=lambda c: c.weight(window))
        obs = self._obs
        if obs is not None:
            self._h_wmin.observe(victim.weight(window))
        policy = self.config.replacement
        if policy == "never":
            self.replacements_lost += 1
            if obs is not None:
                obs.event(
                    "stage2_election", item=str(promotion.item), window=window,
                    accepted=False, w_min=victim.weight(window),
                )
            return False
        if policy == "probabilistic":
            w_min = victim.weight(window)
            if w_min >= 1 and self._rng.random() >= 1.0 / w_min:
                self.replacements_lost += 1
                if obs is not None:
                    obs.event(
                        "stage2_election", item=str(promotion.item),
                        window=window, accepted=False, w_min=w_min,
                    )
                return False
        bucket.remove(victim)
        del self._index[victim.item]
        cell = self._make_cell(promotion, window)
        bucket.append(cell)
        self._index[promotion.item] = cell
        self.replacements_won += 1
        if obs is not None:
            obs.event(
                "stage2_election", item=str(promotion.item), window=window,
                accepted=True, victim=str(victim.item),
                w_min=victim.weight(window),
            )
        return True

    def _make_cell(self, promotion: Promotion, window: int) -> Stage2Cell:
        """Cell seeded with Stage 1's s frequency estimates, zero elsewhere."""
        cell = Stage2Cell(promotion.item, promotion.w_str, self.p)
        s = len(promotion.frequencies)
        for j, frequency in enumerate(promotion.frequencies):
            cell.counts[(window - s + 1 + j) % self.p] = frequency
        return cell

    def end_window(self, window: int) -> List[SimplexReport]:
        """Algorithm 2: evict, fit, report, slide, and open the next slot."""
        task = self.config.task
        p = self.p
        current_slot = window % p
        next_slot = (window + 1) % p
        reports: List[SimplexReport] = []
        obs = self._obs
        for bucket in self.buckets:
            survivors: List[Stage2Cell] = []
            for cell in bucket:
                if cell.counts[current_slot] == 0:
                    del self._index[cell.item]
                    self.evictions_zero += 1
                    if obs is not None:
                        obs.event(
                            "stage2_evict", item=str(cell.item), window=window,
                            w_str=cell.w_str,
                        )
                    continue
                if window - cell.w_str + 1 >= p:
                    frequencies = cell.frequencies_ending_at(window)
                    fit = fit_polynomial(frequencies, task.k)
                    if task.passes(fit.leading, fit.mse):
                        reports.append(
                            SimplexReport(
                                item=cell.item,
                                start_window=window - p + 1,
                                report_window=window,
                                lasting_time=cell.weight(window),
                                coefficients=fit.coefficients,
                                mse=fit.mse,
                            )
                        )
                        if obs is not None:
                            obs.event(
                                "stage2_report", item=str(cell.item),
                                window=window, lasting=cell.weight(window),
                                mse=round(fit.mse, 6),
                            )
                    else:
                        cell.w_str = window - p + 2
                        if obs is not None:
                            obs.event(
                                "stage2_slide", item=str(cell.item),
                                window=window, mse=round(fit.mse, 6),
                            )
                cell.counts[next_slot] = 0
                survivors.append(cell)
            bucket[:] = survivors
            if obs is not None:
                self._h_occupancy.observe(len(bucket))
        return reports

    def merge(self, other: "Stage2", window: int) -> "Stage2":
        """Fold another Stage-2 table into this one (Weight Election).

        Both tables must share geometry (``m``, ``u``, ``p``) and hash
        seed, so every incoming cell lands in the same home bucket it
        occupied on the other side.  Collisions resolve by *weight
        election*, the deterministic analogue of the insertion-time
        replacement rule:

        * the same item tracked on both sides (possible only on the
          re-shard path, never under hash partitioning): rings add
          element-wise and ``w_str`` keeps the earlier start;
        * a full bucket elects by weight ``W = window - w_str`` — the
          incoming cell replaces the minimum-weight resident only if its
          own weight is strictly larger, mirroring how ``P = 1/W_min``
          protects long-lasting residents (dropped cells are counted in
          ``merge_dropped``).
        """
        if self.m != other.m or self.u != other.u or self.p != other.p:
            raise MergeError(
                f"Stage-2 geometries differ: (m={self.m}, u={self.u}, p={self.p}) "
                f"vs (m={other.m}, u={other.u}, p={other.p})"
            )
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "bucket assignments would not align"
            )
        self.merges += 1
        for bucket_index, other_bucket in enumerate(other.buckets):
            bucket = self.buckets[bucket_index]
            for incoming in other_bucket:
                resident = self._index.get(incoming.item)
                if resident is not None:
                    counts = resident.counts
                    for j, value in enumerate(incoming.counts):
                        counts[j] += value
                    resident.w_str = min(resident.w_str, incoming.w_str)
                    continue
                clone = Stage2Cell(incoming.item, incoming.w_str, self.p)
                clone.counts = list(incoming.counts)
                if len(bucket) < self.u:
                    bucket.append(clone)
                    self._index[clone.item] = clone
                    continue
                victim = min(bucket, key=lambda c: c.weight(window))
                if clone.weight(window) > victim.weight(window):
                    bucket.remove(victim)
                    del self._index[victim.item]
                    bucket.append(clone)
                    self._index[clone.item] = clone
                    self.merge_dropped += 1
                else:
                    self.merge_dropped += 1
        self.inserts_empty += other.inserts_empty
        self.replacements_won += other.replacements_won
        self.replacements_lost += other.replacements_lost
        self.evictions_zero += other.evictions_zero
        self.merges += other.merges
        self.merge_dropped += other.merge_dropped
        return self

    def __len__(self) -> int:
        """Number of items currently tracked."""
        return len(self._index)

    @property
    def memory_bytes(self) -> float:
        """Accounted memory: the full m x u cell capacity."""
        return float(self.m * self.u * self.config.stage2_cell_bytes)
