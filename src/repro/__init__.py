"""Reproduction of "Finding Simplex Items in Data Streams" (ICDE 2023).

The package implements X-Sketch -- a two-stage sketch for finding k-simplex
items (items whose per-window frequencies follow a degree-k polynomial,
k = 0, 1, 2) -- together with every substrate the paper builds on or
compares against: the frequency-estimation sketches (CM, CU, Count, CSM,
TowerSketch, Cold Filter, LogLog Filter), the polynomial-fitting machinery,
synthetic stream generators standing in for the paper's traces, the exact
ground-truth oracle, the baseline solution, evaluation metrics, and the
Section-VI machine-learning case study.

Quickstart::

    from repro import XSketch, XSketchConfig, SimplexTask
    from repro.streams import ip_trace_stream

    task = SimplexTask(k=1, p=7, T=2.0, L=1.0)
    sketch = XSketch(XSketchConfig(task=task, memory_kb=200), seed=7)
    stream = ip_trace_stream(n_windows=60, window_size=2000, seed=7)
    for window in stream.windows():
        for item in window:
            sketch.insert(item)
        reports = sketch.end_window()
"""

from repro.version import __version__
from repro.config import StreamGeometry, XSketchConfig
from repro.fitting import PolynomialFit, SimplexTask, fit_polynomial
from repro.core import (
    BaselineConfig,
    BaselineSolution,
    SimplexOracle,
    SimplexReport,
    XSketch,
)
from repro.runtime import KeyPartitioner, ShardedXSketch

__all__ = [
    "__version__",
    "BaselineConfig",
    "BaselineSolution",
    "KeyPartitioner",
    "PolynomialFit",
    "ShardedXSketch",
    "SimplexOracle",
    "SimplexReport",
    "SimplexTask",
    "StreamGeometry",
    "XSketch",
    "XSketchConfig",
    "fit_polynomial",
]
