"""Package version, kept separate so nothing heavy is imported to read it."""

__version__ = "1.0.0"
