"""Streaming telemetry built on simplex reports.

The network-management use cases of Section I-A all reduce to the same
operational question: *what is trending right now?*  This aggregator
consumes one window's reports (any engine, any k) and maintains a
rolling operational picture: how many patterns are active, which items
ramp fastest up/down, and pattern churn (starts / continuations /
endings) -- the data a monitoring dashboard would poll each window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.reports import SimplexReport
from repro.hashing.family import ItemId


@dataclass(frozen=True)
class WindowSummary:
    """Telemetry for one closed window."""

    window: int
    active: int
    started: Tuple[ItemId, ...]
    ended: Tuple[ItemId, ...]
    top_rising: Tuple[Tuple[ItemId, float], ...]
    top_falling: Tuple[Tuple[ItemId, float], ...]

    @property
    def churn(self) -> int:
        """Pattern turnover this window (starts + endings)."""
        return len(self.started) + len(self.ended)


@dataclass
class TelemetryAggregator:
    """Rolling aggregation of per-window simplex reports.

    Feed every window via :meth:`observe`; read the latest
    :class:`WindowSummary` or the full history.  ``top_n`` bounds the
    rising/falling leaderboards.
    """

    top_n: int = 5
    history: List[WindowSummary] = field(default_factory=list)
    _previous_active: Set[ItemId] = field(default_factory=set)

    def observe(self, window: int, reports: Iterable[SimplexReport]) -> WindowSummary:
        """Aggregate one window's reports into a summary."""
        slopes: Dict[ItemId, float] = {}
        active: Set[ItemId] = set()
        for report in reports:
            active.add(report.item)
            if len(report.coefficients) >= 2:
                slopes[report.item] = float(report.coefficients[1])
        started = tuple(sorted(active - self._previous_active, key=str))
        ended = tuple(sorted(self._previous_active - active, key=str))
        rising = sorted(
            ((item, slope) for item, slope in slopes.items() if slope > 0),
            key=lambda pair: -pair[1],
        )[: self.top_n]
        falling = sorted(
            ((item, slope) for item, slope in slopes.items() if slope < 0),
            key=lambda pair: pair[1],
        )[: self.top_n]
        summary = WindowSummary(
            window=window,
            active=len(active),
            started=started,
            ended=ended,
            top_rising=tuple(rising),
            top_falling=tuple(falling),
        )
        self._previous_active = active
        self.history.append(summary)
        return summary

    @property
    def latest(self) -> WindowSummary:
        if not self.history:
            raise LookupError("no windows observed yet")
        return self.history[-1]

    def total_churn(self) -> int:
        """Total pattern turnover across all observed windows."""
        return sum(summary.churn for summary in self.history)

    def run(self, sketch, trace) -> List[WindowSummary]:
        """Drive a sketch over a trace, aggregating every window."""
        for window_items in trace.windows():
            for item in window_items:
                sketch.insert(item)
            self.observe(sketch.window, sketch.end_window())
        return list(self.history)
