"""Cache prefetching from 0-simplex items (Section I-A, k=0 use case).

"If we consider a cache line as an item, then 0-simplex items mean that
these stable cache lines will be fetched in the near future.  Therefore,
we can apply 0-simplex items to prefetch the upcoming cache line,
thereby improving the cache hit ratio."

The experiment: an access stream hits an LRU cache; with prefetching on,
every window's 0-simplex reports are prefetched into the cache before
the next window.  Stable-but-not-recently-used lines (which plain LRU
evicts under scan pressure) then hit instead of missing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import StreamGeometry, XSketchConfig
from repro.core.xsketch import XSketch
from repro.errors import ConfigurationError
from repro.fitting.simplex import SimplexTask
from repro.hashing.family import ItemId
from repro.streams.model import Trace
from repro.streams.planted import BackgroundTraffic, PlantedItem, PlantedWorkload, constant_pattern


class LRUCache:
    """A counting LRU cache of cache-line IDs."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lines: "OrderedDict[ItemId, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, line: ItemId) -> bool:
        """Reference a line; returns True on hit.  Misses insert it."""
        if line in self._lines:
            self._lines.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        self._insert(line)
        return False

    def prefetch(self, line: ItemId) -> None:
        """Bring a line in (or refresh it) without counting a reference."""
        if line in self._lines:
            self._lines.move_to_end(line)
            return
        self._insert(line)

    def _insert(self, line: ItemId) -> None:
        self._lines[line] = None
        if len(self._lines) > self.capacity:
            self._lines.popitem(last=False)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, line: ItemId) -> bool:
        return line in self._lines

    def __len__(self) -> int:
        return len(self._lines)


@dataclass(frozen=True)
class PrefetchResult:
    """Hit ratios with and without simplex-guided prefetching."""

    baseline_hit_ratio: float
    prefetch_hit_ratio: float
    prefetched_lines: int

    @property
    def improvement(self) -> float:
        """Absolute hit-ratio gain from prefetching."""
        return self.prefetch_hit_ratio - self.baseline_hit_ratio


def make_access_trace(
    n_windows: int = 40,
    window_size: int = 2000,
    n_stable_lines: int = 150,
    seed: int = 0,
) -> Trace:
    """Cache-line access stream: stable hot lines + heavy scan noise.

    Stable lines are touched a constant handful of times per window
    (0-simplex); the scan noise is a large rotating pool that evicts
    them from a small LRU between touches.
    """
    geometry = StreamGeometry(n_windows=n_windows, window_size=window_size)
    rng = np.random.default_rng(seed)
    plants: List[PlantedItem] = []
    for index in range(n_stable_lines):
        level = float(rng.uniform(2, 5))
        plants.append(
            PlantedItem(
                item=f"line-{index}",
                start_window=0,
                duration=n_windows,
                pattern=constant_pattern(level),
                noise=0.4,
            )
        )
    background = BackgroundTraffic(
        n_flows=max(2000, 8 * window_size),
        skew=0.4,  # nearly-uniform scan: maximal LRU pressure
        n_stable=0,
        rotation_period=2,
        prefix="scan",
    )
    return PlantedWorkload(
        name="cache-lines", geometry=geometry, background=background, planted=plants
    ).build(seed=seed + 1)


def run_prefetch_experiment(
    trace: Trace,
    cache_capacity: int = 256,
    memory_kb: float = 40.0,
    task: Optional[SimplexTask] = None,
    seed: int = 0,
    pinned_fraction: float = 0.5,
) -> PrefetchResult:
    """Compare LRU hit ratio with and without 0-simplex prefetching.

    Both configurations get ``cache_capacity`` lines in total.  The
    guided configuration spends ``pinned_fraction`` of them on a
    *prefetch buffer*: at every window boundary the buffer is refilled
    with the sketch's reported stable lines (the "upcoming fetches" the
    paper predicts), where scan traffic cannot evict them; the remaining
    capacity stays a plain LRU.  This is the standard pinned-prefetch
    design -- without pinning, a scan-heavy window flushes the prefetched
    lines before their first touch.
    """
    task = task if task is not None else SimplexTask.paper_default(0)

    plain = LRUCache(cache_capacity)
    for window in trace.windows():
        for line in window:
            plain.access(line)

    buffer_capacity = max(1, int(cache_capacity * pinned_fraction))
    guided = LRUCache(cache_capacity - buffer_capacity)
    pinned: "OrderedDict[ItemId, None]" = OrderedDict()
    sketch = XSketch(XSketchConfig(task=task, memory_kb=memory_kb), seed=seed)
    prefetched = 0
    hits = 0
    misses = 0
    for window in trace.windows():
        for line in window:
            if line in pinned:
                hits += 1
            elif guided.access(line):
                hits += 1
            else:
                misses += 1
            sketch.insert(line)
        # Refill the prefetch buffer with this window's stable lines;
        # the freshest reports win when the buffer overflows.
        pinned.clear()
        for report in sketch.end_window():
            if len(pinned) < buffer_capacity:
                pinned[report.item] = None
                prefetched += 1

    total = hits + misses
    return PrefetchResult(
        baseline_hit_ratio=plain.hit_ratio,
        prefetch_hit_ratio=hits / total if total else 0.0,
        prefetched_lines=prefetched,
    )
