"""DDoS detection from 1-simplex items (Section I-A, k=1 use case).

A flow whose per-window packet count ramps linearly with slope >= the
alarm threshold is flagged.  The detector is a thin policy layer over a
k=1 X-Sketch: every window's simplex reports with positive slope above
``min_slope`` raise an alarm for that flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.config import XSketchConfig
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.hashing.family import ItemId
from repro.streams.ddos import DDoSScenario
from repro.streams.model import Trace


@dataclass(frozen=True)
class DDoSAlarm:
    """One raised alarm: the flow, when, and the observed ramp slope."""

    item: ItemId
    window: int
    slope: float


class DDoSDetector:
    """Streaming DDoS detector built on a k=1 X-Sketch.

    Args:
        memory_kb: sketch budget.
        min_slope: minimum positive slope (packets/window^2) to alarm;
            must be >= the task's ``L`` to have any effect.
        task: override the k-simplex task (default: paper's k=1 setup).
    """

    def __init__(
        self,
        memory_kb: float = 60.0,
        min_slope: float = 1.5,
        task: SimplexTask = None,
        seed: int = 0,
    ):
        self.task = task if task is not None else SimplexTask.paper_default(1)
        self.min_slope = min_slope
        self.sketch = XSketch(XSketchConfig(task=self.task, memory_kb=memory_kb), seed=seed)
        self.alarms: List[DDoSAlarm] = []
        self._alarmed: Set[ItemId] = set()

    def insert(self, item: ItemId) -> None:
        """Feed one packet's flow ID."""
        self.sketch.insert(item)

    def end_window(self) -> List[DDoSAlarm]:
        """Close the window; returns alarms newly raised in this window."""
        new_alarms: List[DDoSAlarm] = []
        for report in self.sketch.end_window():
            slope = report.coefficients[-1]
            if slope >= self.min_slope and report.item not in self._alarmed:
                alarm = DDoSAlarm(item=report.item, window=report.report_window, slope=slope)
                self._alarmed.add(report.item)
                new_alarms.append(alarm)
        self.alarms.extend(new_alarms)
        return new_alarms

    def run(self, trace: Trace) -> List[DDoSAlarm]:
        """Process a whole trace; returns all alarms raised."""
        for window in trace.windows():
            for item in window:
                self.insert(item)
            self.end_window()
        return list(self.alarms)


@dataclass(frozen=True)
class DetectorScore:
    """Detection quality against a known attack scenario."""

    detected: int
    n_attackers: int
    false_alarms: int
    mean_latency_windows: float

    @property
    def detection_rate(self) -> float:
        return self.detected / self.n_attackers if self.n_attackers else 1.0


def evaluate_detector(alarms: List[DDoSAlarm], scenario: DDoSScenario) -> DetectorScore:
    """Score alarms: coverage of attack flows, false alarms, latency.

    Latency counts windows from the earliest possible report (the attack
    needs ``p`` windows of history before any algorithm could satisfy the
    definition) to the alarm.
    """
    first_alarm: Dict[ItemId, int] = {}
    false_alarms = 0
    attack_set = set(scenario.attack_items)
    for alarm in alarms:
        if alarm.item in attack_set:
            first_alarm.setdefault(alarm.item, alarm.window)
        else:
            false_alarms += 1
    latencies = [window - scenario.onset_window for window in first_alarm.values()]
    return DetectorScore(
        detected=len(first_alarm),
        n_attackers=len(scenario.attack_items),
        false_alarms=false_alarms,
        mean_latency_windows=sum(latencies) / len(latencies) if latencies else float("nan"),
    )
