"""Periodic-burst monitoring from 2-simplex items (Section I-A, k=2).

"Periodic 2-simplex items are considered to be the main traffic patterns
generated in some wireless networks (e.g., adopting IEEE 802.15.4 MAC
protocol), so we can dynamically monitor such traffic to judge the
performance of the corresponding networks."

The monitor tracks parabolic bursts: a 2-simplex report with negative
curvature is a burst peaking mid-span; consecutive reports of one item
are merged into a single :class:`BurstEvent` whose peak window and
height come from the fitted parabola.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import StreamGeometry, XSketchConfig
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.hashing.family import ItemId
from repro.streams.model import Trace

import numpy as np

from repro.streams.planted import BackgroundTraffic, PlantedItem, PlantedWorkload, quadratic_pattern


@dataclass
class BurstEvent:
    """A detected parabolic burst of one node's traffic."""

    item: ItemId
    first_report: int
    last_report: int
    peak_window: float
    peak_height: float
    curvature: float


class PeriodicMonitor:
    """Streaming monitor for parabolic (2-simplex) traffic bursts."""

    def __init__(self, memory_kb: float = 60.0, task: SimplexTask = None, seed: int = 0):
        self.task = task if task is not None else SimplexTask.paper_default(2)
        self.sketch = XSketch(XSketchConfig(task=self.task, memory_kb=memory_kb), seed=seed)
        self.events: List[BurstEvent] = []
        self._open: Dict[ItemId, BurstEvent] = {}

    def insert(self, item: ItemId) -> None:
        self.sketch.insert(item)

    def end_window(self) -> List[BurstEvent]:
        """Close the window; returns bursts that completed this window."""
        reported_now = set()
        for report in self.sketch.end_window():
            a0, a1, a2 = report.coefficients
            if a2 >= 0:
                continue  # only concave bursts (rise-and-fall) are events
            # Vertex of the parabola, in absolute window coordinates.
            vertex_offset = -a1 / (2 * a2)
            peak_window = report.start_window + vertex_offset
            peak_height = a0 + a1 * vertex_offset + a2 * vertex_offset * vertex_offset
            reported_now.add(report.item)
            event = self._open.get(report.item)
            if event is None:
                self._open[report.item] = BurstEvent(
                    item=report.item,
                    first_report=report.report_window,
                    last_report=report.report_window,
                    peak_window=peak_window,
                    peak_height=peak_height,
                    curvature=a2,
                )
            else:
                event.last_report = report.report_window
                event.peak_window = peak_window
                event.peak_height = max(event.peak_height, peak_height)
        finished = [
            event for item, event in self._open.items() if item not in reported_now
        ]
        for event in finished:
            del self._open[event.item]
            self.events.append(event)
        return finished

    def run(self, trace: Trace) -> List[BurstEvent]:
        """Process a trace; returns all completed bursts (open ones close)."""
        for window in trace.windows():
            for item in window:
                self.insert(item)
            self.end_window()
        self.events.extend(self._open.values())
        self._open.clear()
        return list(self.events)


def make_periodic_trace(
    n_windows: int = 60,
    window_size: int = 2000,
    n_nodes: int = 6,
    period: int = 16,
    burst_len: int = 9,
    seed: int = 0,
) -> Trace:
    """802.15.4-style traffic: nodes emit parabolic bursts periodically."""
    geometry = StreamGeometry(n_windows=n_windows, window_size=window_size)
    rng = np.random.default_rng(seed)
    plants: List[PlantedItem] = []
    for node in range(n_nodes):
        phase = int(rng.integers(0, period))
        a2 = -float(rng.uniform(1.3, 2.2))
        vertex = burst_len / 2.0
        peak = abs(a2) * vertex * vertex + float(rng.uniform(4, 10))
        pattern = quadratic_pattern(peak + a2 * vertex * vertex, -2 * a2 * vertex, a2)
        start = phase
        while start + burst_len <= n_windows:
            plants.append(
                PlantedItem(
                    item=f"node-{node}",
                    start_window=start,
                    duration=burst_len,
                    pattern=pattern,
                    noise=0.3,
                )
            )
            start += period
    background = BackgroundTraffic(
        n_flows=max(1000, 3 * window_size), skew=1.0, n_stable=50, rotation_period=4,
        prefix="wsn-bg",
    )
    return PlantedWorkload(
        name="periodic-wsn", geometry=geometry, background=background, planted=plants
    ).build(seed=seed + 1)
