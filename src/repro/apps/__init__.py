"""Applications of k-simplex detection (Section I-A use cases).

* :mod:`~repro.apps.ddos_detector` -- k=1: flows with linear traffic
  ramps flag DDoS onsets in real time.
* :mod:`~repro.apps.cache_prefetch` -- k=0: stable cache lines found by
  the sketch are prefetched, raising the hit ratio of an LRU cache.
* :mod:`~repro.apps.bandwidth` -- k=0: per-flow bandwidth pre-allocation
  from predicted next-window frequencies.
* :mod:`~repro.apps.periodic_monitor` -- k=2: parabolic traffic bursts
  (802.15.4-style periodic wireless traffic) are tracked as 2-simplex
  items.
"""

from repro.apps.ddos_detector import DDoSAlarm, DDoSDetector, evaluate_detector
from repro.apps.cache_prefetch import LRUCache, PrefetchResult, run_prefetch_experiment
from repro.apps.bandwidth import AllocationPlan, BandwidthAllocator, evaluate_allocation
from repro.apps.periodic_monitor import BurstEvent, PeriodicMonitor
from repro.apps.telemetry import TelemetryAggregator, WindowSummary

__all__ = [
    "AllocationPlan",
    "BandwidthAllocator",
    "BurstEvent",
    "DDoSAlarm",
    "DDoSDetector",
    "LRUCache",
    "PeriodicMonitor",
    "PrefetchResult",
    "TelemetryAggregator",
    "WindowSummary",
    "evaluate_allocation",
    "evaluate_detector",
    "run_prefetch_experiment",
]
