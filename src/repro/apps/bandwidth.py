"""Bandwidth pre-allocation from 0-simplex flows (Section I-A, k=0).

"If we consider a network flow as an item, we can precisely pre-allocate
bandwidth for such stable flows in the next time period."

At each window boundary the allocator reserves, for every reported
stable flow, its fitted constant level (plus headroom) for the next
window.  :func:`evaluate_allocation` scores the plan against the next
window's true demand: how much of the reserved capacity was used
(utilization) and how much stable demand was covered (coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import XSketchConfig
from repro.core.oracle import SimplexOracle
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.hashing.family import ItemId
from repro.streams.model import Trace


@dataclass(frozen=True)
class AllocationPlan:
    """Per-flow reservations for one upcoming window."""

    window: int
    reservations: Dict[ItemId, float] = field(default_factory=dict)

    @property
    def total_reserved(self) -> float:
        return sum(self.reservations.values())


class BandwidthAllocator:
    """Streaming allocator: reserve for stable flows one window ahead.

    Args:
        memory_kb: sketch budget.
        headroom: multiplicative cushion on the predicted level (1.1
            reserves 10% above the fit).
    """

    def __init__(
        self,
        memory_kb: float = 60.0,
        headroom: float = 1.1,
        task: SimplexTask = None,
        seed: int = 0,
    ):
        self.task = task if task is not None else SimplexTask.paper_default(0)
        self.headroom = headroom
        self.sketch = XSketch(XSketchConfig(task=self.task, memory_kb=memory_kb), seed=seed)
        self.plans: List[AllocationPlan] = []

    def insert(self, item: ItemId) -> None:
        self.sketch.insert(item)

    def end_window(self) -> AllocationPlan:
        """Close the window and emit the plan for the next one."""
        reservations: Dict[ItemId, float] = {}
        for report in self.sketch.end_window():
            # The constant fit's level is the a_0 coefficient for k=0.
            level = report.coefficients[0]
            reservations[report.item] = level * self.headroom
        plan = AllocationPlan(window=self.sketch.window, reservations=reservations)
        self.plans.append(plan)
        return plan

    def run(self, trace: Trace) -> List[AllocationPlan]:
        for window in trace.windows():
            for item in window:
                self.insert(item)
            self.end_window()
        return list(self.plans)


@dataclass(frozen=True)
class AllocationScore:
    """Aggregate quality of a sequence of allocation plans."""

    total_reserved: float
    total_used: float
    total_shortfall: float
    flows_planned: int

    @property
    def utilization(self) -> float:
        """Used share of reserved capacity (1.0 = nothing wasted)."""
        return self.total_used / self.total_reserved if self.total_reserved else 1.0

    @property
    def coverage(self) -> float:
        """Share of planned flows' demand met by their reservations."""
        demand = self.total_used + self.total_shortfall
        return self.total_used / demand if demand else 1.0


def evaluate_allocation(plans: List[AllocationPlan], oracle: SimplexOracle) -> AllocationScore:
    """Score plans against the next window's exact demand."""
    total_reserved = 0.0
    total_used = 0.0
    total_shortfall = 0.0
    flows = 0
    for plan in plans:
        for item, reserved in plan.reservations.items():
            demand = oracle.frequency(item, plan.window)
            used = min(demand, reserved)
            total_reserved += reserved
            total_used += used
            total_shortfall += max(0.0, demand - reserved)
            flows += 1
    return AllocationScore(
        total_reserved=total_reserved,
        total_used=total_used,
        total_shortfall=total_shortfall,
        flows_planned=flows,
    )
