"""Exception hierarchy for the repro package.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can guard a whole pipeline with a single
``except ReproError`` without swallowing genuine bugs (TypeError etc.).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration value is out of its documented domain."""


class CapacityError(ReproError):
    """A structure was asked to hold more than its memory budget allows."""


class FittingError(ReproError):
    """Polynomial fitting was asked for an ill-posed problem."""


class StreamError(ReproError):
    """A stream or trace is malformed or used out of protocol."""


class MergeError(ReproError):
    """Two sketches are not merge-compatible (geometry, seed or type)."""


class RuntimeShardError(ReproError):
    """The sharded runtime was used out of protocol or a worker failed."""


class ServiceError(ReproError):
    """The streaming service received malformed traffic or was misused."""
