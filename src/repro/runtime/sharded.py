"""``ShardedXSketch``: N X-Sketch shards behind one stream interface.

The coordinator hash-partitions every batch with a
:class:`repro.runtime.partition.KeyPartitioner` and fans the per-shard
sub-batches out to worker processes (``backend="process"``, the
default) or to in-process sketches (``backend="inline"``, used for
deterministic tests and as a zero-dependency fallback).  Both backends
run byte-identical sketch code, so they produce identical reports.

Sharding model
    Each shard owns a full :class:`XSketchConfig` worth of memory and a
    disjoint slice of the key space.  Per-key counters therefore never
    need cross-shard reconciliation: a window's reports are simply the
    union of the shards' reports, interleaved in canonical
    :func:`repro.core.xsketch.report_order`.

Protocol
    ``ingest_batch(items)`` routes a batch into the current window;
    ``flush_window()`` closes the window on every shard and returns the
    merged reports (aliased as ``end_window`` / ``run_window`` so the
    coordinator quacks like every other engine); ``report()`` returns
    all reports so far; ``checkpoint(directory)`` writes a shard-aware
    snapshot; ``merged_sketch()`` compacts all shards into one
    single-process :class:`XSketch` via the mergeable fallback path.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import XSketchConfig
from repro.core.reports import SimplexReport
from repro.core.serialize import restore_xsketch, snapshot_xsketch
from repro.core.xsketch import XSketch, report_order
from repro.errors import ConfigurationError, RuntimeShardError
from repro.hashing.family import ItemId
from repro.runtime.partition import KeyPartitioner
from repro.runtime.worker import WorkerReport, shard_worker_main

#: insert()-path buffering: a shard's buffer is flushed to its queue
#: once it holds this many items (ingest_batch sends immediately).
DEFAULT_BATCH_SIZE = 2048

#: Seconds the coordinator waits for a worker reply before declaring
#: the shard dead.
DEFAULT_REPLY_TIMEOUT = 300.0


@dataclass(frozen=True)
class ShardStats:
    """Coordinator- plus worker-side counters of one shard."""

    shard_id: int
    #: arrivals the partitioner routed to this shard
    items_routed: int
    #: ingest commands sent to this shard
    batches_sent: int
    #: command-queue backlog at sampling time (None when the platform
    #: does not support qsize, e.g. macOS sem_getvalue)
    queue_depth: Optional[int]
    #: the worker's own counters (ingested items, busy time, sketch stats)
    worker: WorkerReport


@dataclass(frozen=True)
class ShardedStats:
    """A point-in-time view of the whole sharded runtime."""

    n_shards: int
    window: int
    items_routed: int
    reports: int
    #: X-Sketch merge() calls performed by compaction so far
    merge_count: int
    shards: Tuple[ShardStats, ...]

    @property
    def total_busy_seconds(self) -> float:
        """Summed sketch time across shards (> wall time when parallel)."""
        return sum(shard.worker.busy_seconds for shard in self.shards)


class ShardedXSketch:
    """Coordinator over ``n_shards`` X-Sketch workers.

    Args:
        config: per-shard X-Sketch configuration.  Every shard gets the
            full budget, so total memory is ``n_shards x config`` —
            sharding buys throughput and tracking capacity, not memory.
        n_shards: number of shards (>= 1).
        seed: base seed; shared by all shards so their hash families
            are identical, which keeps shard states merge-compatible
            for the compaction path.  Key routing uses a salted seed
            and is independent of the sketch hashes.
        backend: ``"process"`` (worker processes, spawn-safe) or
            ``"inline"`` (in-process shards; deterministic, no IPC).
        mp_context: multiprocessing start method for the process
            backend (``"spawn"`` by default — safe everywhere).
        batch_size: insert()-path buffer size per shard.
        reply_timeout: seconds to wait for worker replies.
        snapshots: per-shard snapshot dicts to restore from (used by
            :func:`repro.runtime.checkpoint.load_sharded_checkpoint`).
        observability: attach a live ``repro.obs.Recorder`` (registry +
            trace ring) to every shard sketch.  Off by default — the
            canonical decision counters are available either way through
            :meth:`metrics_registry`; turning this on adds the
            algorithm histograms and the per-shard trace rings read by
            :meth:`trace_events`.
    """

    def __init__(
        self,
        config: XSketchConfig,
        n_shards: int,
        seed: int = 0,
        backend: str = "process",
        mp_context: str = "spawn",
        batch_size: int = DEFAULT_BATCH_SIZE,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
        snapshots: Optional[Sequence[Dict]] = None,
        observability: bool = False,
    ):
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        if backend not in ("process", "inline"):
            raise ConfigurationError(
                f"backend must be 'process' or 'inline', got {backend!r}"
            )
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if snapshots is not None and len(snapshots) != n_shards:
            raise ConfigurationError(
                f"got {len(snapshots)} snapshots for {n_shards} shards"
            )
        self.config = config
        self.n_shards = n_shards
        self.seed = seed
        self.backend = backend
        self.batch_size = batch_size
        self.reply_timeout = reply_timeout
        self.partitioner = KeyPartitioner(
            n_shards, seed=seed, hash_family=config.hash_family
        )
        self.window = 0
        self._reports: List[SimplexReport] = []
        self._closed = False
        #: coordinator-side per-shard counters
        self.items_routed = [0] * n_shards
        self.batches_sent = [0] * n_shards
        #: X-Sketch merges performed by merged_sketch() so far
        self.merge_count = 0
        self._buffers: List[List[ItemId]] = [[] for _ in range(n_shards)]
        self._memory_bytes: Optional[float] = None
        self.observability = observability
        if backend == "inline":
            self._locals = []
            for i in range(n_shards):
                recorder = self._make_recorder() if observability else None
                if snapshots:
                    sketch = restore_xsketch(snapshots[i], seed=seed, recorder=recorder)
                else:
                    sketch = XSketch(config, seed=seed, recorder=recorder)
                self._locals.append(sketch)
            self._inline_busy = [0.0] * n_shards
            if snapshots:
                self.window = self._locals[0].window
        else:
            self._spawn_workers(mp_context, snapshots)
            if snapshots:
                self.window = snapshots[0]["window"]

    @staticmethod
    def _make_recorder():
        from repro.obs.recorder import Recorder
        from repro.obs.registry import MetricsRegistry
        from repro.obs.trace import TraceRing

        return Recorder(MetricsRegistry(), trace=TraceRing())

    # ------------------------------------------------------------------
    # process-backend plumbing

    def _spawn_workers(self, mp_context: str, snapshots) -> None:
        ctx = multiprocessing.get_context(mp_context)
        self._result_queue = ctx.Queue()
        self._command_queues = []
        self._workers = []
        for shard_id in range(self.n_shards):
            command_queue = ctx.Queue()
            worker = ctx.Process(
                target=shard_worker_main,
                args=(
                    shard_id,
                    self.config,
                    self.seed,
                    command_queue,
                    self._result_queue,
                    snapshots[shard_id] if snapshots else None,
                    self.observability,
                ),
                daemon=True,
                name=f"xsketch-shard-{shard_id}",
            )
            worker.start()
            self._command_queues.append(command_queue)
            self._workers.append(worker)

    def _collect(self, kind: str) -> List:
        """Gather one ``kind`` reply from every shard, in shard order.

        Polls in short intervals so a worker that died without replying
        (e.g. killed, or crashed before the protocol loop) surfaces as
        a :class:`RuntimeShardError` immediately instead of after the
        full reply timeout.
        """
        payloads: List = [None] * self.n_shards
        seen = 0
        deadline = time.monotonic() + self.reply_timeout
        while seen < self.n_shards:
            try:
                reply_kind, shard_id, payload = self._result_queue.get(timeout=0.25)
            except Exception as exc:  # queue.Empty
                dead = [
                    shard
                    for shard, worker in enumerate(self._workers)
                    if payloads[shard] is None and not worker.is_alive()
                ]
                if dead and self._result_queue.empty():
                    raise RuntimeShardError(
                        f"shard(s) {dead} exited without replying to {kind!r}"
                    ) from exc
                if time.monotonic() > deadline:
                    raise RuntimeShardError(
                        f"no reply from workers within {self.reply_timeout}s "
                        f"while waiting for {kind!r}"
                    ) from exc
                continue
            if reply_kind == "error":
                raise RuntimeShardError(f"shard {shard_id} failed:\n{payload}")
            if reply_kind != kind:
                raise RuntimeShardError(
                    f"protocol violation: expected {kind!r}, got {reply_kind!r}"
                )
            payloads[shard_id] = payload
            seen += 1
        return payloads

    # ------------------------------------------------------------------
    # stream protocol

    def insert(self, item: ItemId) -> None:
        """Route one arrival (buffered; flushed by size or at flush_window)."""
        shard = self.partitioner.shard_of(item)
        buffer = self._buffers[shard]
        buffer.append(item)
        if len(buffer) >= self.batch_size:
            self._dispatch(shard, buffer)
            self._buffers[shard] = []

    def ingest_batch(self, items: Sequence[ItemId]) -> None:
        """Route a batch of arrivals into the current window."""
        for shard, part in enumerate(self.partitioner.split(items)):
            if part:
                self._dispatch(shard, part)

    def _dispatch(self, shard: int, items: List[ItemId]) -> None:
        if self._closed:
            raise RuntimeShardError("ShardedXSketch is closed")
        self.items_routed[shard] += len(items)
        self.batches_sent[shard] += 1
        if self.backend == "inline":
            start = time.perf_counter()
            insert = self._locals[shard].insert
            for item in items:
                insert(item)
            self._inline_busy[shard] += time.perf_counter() - start
        else:
            self._command_queues[shard].put(("ingest", items))

    def _flush_buffers(self) -> None:
        for shard, buffer in enumerate(self._buffers):
            if buffer:
                self._dispatch(shard, buffer)
                self._buffers[shard] = []

    def flush_window(self) -> List[SimplexReport]:
        """Close the current window on every shard; merged reports back."""
        self._flush_buffers()
        if self.backend == "inline":
            merged: List[SimplexReport] = []
            for shard, sketch in enumerate(self._locals):
                start = time.perf_counter()
                merged.extend(sketch.end_window())
                self._inline_busy[shard] += time.perf_counter() - start
        else:
            for queue in self._command_queues:
                queue.put(("end_window",))
            merged = [
                report
                for reports in self._collect("end_window")
                for report in reports
            ]
        merged.sort(key=report_order)
        self._reports.extend(merged)
        self.window += 1
        return merged

    #: alias so the coordinator matches the engine protocol
    end_window = flush_window

    def run_window(self, items: Sequence[ItemId]) -> List[SimplexReport]:
        """Convenience: ingest a whole window of arrivals, then close it."""
        self.ingest_batch(items)
        return self.flush_window()

    def report(self) -> List[SimplexReport]:
        """All reports emitted so far, in canonical order."""
        return list(self._reports)

    @property
    def reports(self) -> List[SimplexReport]:
        """Alias of :meth:`report` (engine protocol)."""
        return self.report()

    # ------------------------------------------------------------------
    # observability

    def queue_depths(self) -> List[Optional[int]]:
        """Approximate command-queue backlog per shard (None if unknown)."""
        if self.backend == "inline":
            return [0] * self.n_shards
        depths: List[Optional[int]] = []
        for queue in self._command_queues:
            try:
                depths.append(queue.qsize())
            except NotImplementedError:  # pragma: no cover - macOS
                depths.append(None)
        return depths

    def stats(self) -> ShardedStats:
        """Coordinator and worker counters for every shard."""
        if self.backend == "inline":
            worker_reports = [
                WorkerReport(
                    shard_id=shard,
                    items_ingested=self.items_routed[shard],
                    batches=self.batches_sent[shard],
                    windows=sketch.window,
                    busy_seconds=self._inline_busy[shard],
                    stats=sketch.stats,
                )
                for shard, sketch in enumerate(self._locals)
            ]
        else:
            for queue in self._command_queues:
                queue.put(("stats",))
            worker_reports = self._collect("stats")
        depths = self.queue_depths()
        shards = tuple(
            ShardStats(
                shard_id=shard,
                items_routed=self.items_routed[shard],
                batches_sent=self.batches_sent[shard],
                queue_depth=depths[shard],
                worker=worker_reports[shard],
            )
            for shard in range(self.n_shards)
        )
        return ShardedStats(
            n_shards=self.n_shards,
            window=self.window,
            items_routed=sum(self.items_routed),
            reports=len(self._reports),
            merge_count=self.merge_count,
            shards=shards,
        )

    def metrics_registry(self, registry=None):
        """Aggregated metrics of the whole runtime, as one registry.

        Walks the same reduction path as report merging: each shard
        contributes its sketch's canonical registry (counters synced
        from the plain-int decision counters, plus any live-recorder
        histograms), serialized as a snapshot on the process backend and
        collected directly on the inline one; the coordinator folds the
        per-shard views together (counters/gauges add, histograms add
        bucket-wise) and stamps its own routing counters on top.
        """
        from repro.obs.collect import collect_sharded
        from repro.obs.registry import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        if self.backend == "inline":
            for sketch in self._locals:
                sketch.metrics_registry(registry)
        else:
            for queue in self._command_queues:
                queue.put(("metrics",))
            for snapshot in self._collect("metrics"):
                registry.merge_snapshot(snapshot)
        return collect_sharded(self, registry)

    def trace_events(self) -> List[Dict]:
        """All shards' trace-ring events, ordered by timestamp.

        Empty unless the runtime was built with ``observability=True``.
        Each event is a JSON-safe dict carrying at least ``ts``,
        ``kind`` and ``shard``.
        """
        events: List[Dict] = []
        if self.backend == "inline":
            per_shard = [
                sketch.recorder.trace.events()
                if getattr(sketch.recorder, "trace", None) is not None
                else []
                for sketch in self._locals
            ]
        else:
            for queue in self._command_queues:
                queue.put(("trace",))
            per_shard = self._collect("trace")
        for shard, shard_events in enumerate(per_shard):
            for event in shard_events:
                stamped = dict(event)
                stamped["shard"] = shard
                events.append(stamped)
        events.sort(key=lambda e: e.get("ts", 0.0))
        return events

    @property
    def memory_bytes(self) -> float:
        """Accounted memory across all shards (n_shards x one sketch)."""
        if self._memory_bytes is None:
            if self.backend == "inline":
                self._memory_bytes = sum(s.memory_bytes for s in self._locals)
            else:
                probe = XSketch(self.config, seed=self.seed)
                self._memory_bytes = self.n_shards * probe.memory_bytes
        return self._memory_bytes

    # ------------------------------------------------------------------
    # checkpoint / compaction

    def _collect_snapshots(self) -> List[Dict]:
        """Per-shard snapshots at the current window boundary."""
        if any(self._buffers[shard] for shard in range(self.n_shards)):
            raise RuntimeShardError(
                "snapshot only at a window boundary (insert buffers not empty); "
                "call flush_window() first"
            )
        if self.backend == "inline":
            return [snapshot_xsketch(sketch) for sketch in self._locals]
        for queue in self._command_queues:
            queue.put(("checkpoint",))
        return self._collect("checkpoint")

    def checkpoint(self, directory) -> None:
        """Write a shard-aware checkpoint directory (manifest + shards)."""
        from repro.runtime.checkpoint import save_sharded_checkpoint

        save_sharded_checkpoint(self, directory)

    @classmethod
    def restore(cls, directory, backend: str = "process", **kwargs) -> "ShardedXSketch":
        """Rebuild a sharded runtime from :meth:`checkpoint` output."""
        from repro.runtime.checkpoint import load_sharded_checkpoint

        return load_sharded_checkpoint(directory, backend=backend, **kwargs)

    def merged_sketch(self) -> XSketch:
        """Compact all shards into one single-process :class:`XSketch`.

        The documented fallback merge path: per-shard states are
        snapshotted at the current window boundary, rebuilt locally and
        folded together (Stage 1 counter-wise, Stage 2 by weight
        election).  The running shards are not disturbed.  Note the
        merged sketch holds one ``config`` worth of memory, so Stage-2
        buckets may overflow and elect by weight; with ample memory the
        merged report stream matches the sharded one.
        """
        snapshots = self._collect_snapshots()
        merged = restore_xsketch(snapshots[0], seed=self.seed)
        for snapshot in snapshots[1:]:
            merged.merge(restore_xsketch(snapshot, seed=self.seed))
            self.merge_count += 1
        merged._reports = sorted(self._reports, key=report_order)
        return merged

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        """Stop all workers; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.backend == "inline":
            return
        try:
            for queue in self._command_queues:
                queue.put(("stop",))
            self._collect("stopped")
        except RuntimeShardError:
            pass
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=10)
        for queue in self._command_queues:
            queue.close()
        self._result_queue.close()

    def __enter__(self) -> "ShardedXSketch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass
