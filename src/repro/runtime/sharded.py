"""``ShardedXSketch``: N X-Sketch shards behind one stream interface.

The coordinator hash-partitions every batch with a
:class:`repro.runtime.partition.KeyPartitioner` and fans the per-shard
sub-batches out to worker processes (``backend="process"``, the
default) or to in-process sketches (``backend="inline"``, used for
deterministic tests and as a zero-dependency fallback).  Both backends
run byte-identical sketch code, so they produce identical reports.

Sharding model
    Each shard owns a full :class:`XSketchConfig` worth of memory and a
    disjoint slice of the key space.  Per-key counters therefore never
    need cross-shard reconciliation: a window's reports are simply the
    union of the shards' reports, interleaved in canonical
    :func:`repro.core.xsketch.report_order`.

Protocol
    ``ingest_batch(items)`` routes a batch into the current window;
    ``flush_window()`` closes the window on every shard and returns the
    merged reports (aliased as ``end_window`` / ``run_window`` so the
    coordinator quacks like every other engine); ``report()`` returns
    all reports so far; ``checkpoint(directory)`` writes a shard-aware
    snapshot; ``merged_sketch()`` compacts all shards into one
    single-process :class:`XSketch` via the mergeable fallback path.

Supervision (``supervised=True``, the default on the process backend)
    The coordinator holds an in-memory checkpoint of every shard, taken
    at window boundaries every ``auto_checkpoint_interval`` windows.
    When a worker exits without replying, or misses the reply deadline
    (wedged), the coordinator respawns it on fresh queues, restores the
    last checkpoint, fast-forwards it to the current window, replays
    the batches still sitting in the dead incarnation's command queue
    (nothing else — data the dead process had already consumed is
    gone), resends the in-flight command, and carries on.  The loss is
    recorded honestly: ``shard_restarts``, ``items_lost_estimate`` and
    ``command_retries`` feed the ``runtime_*`` metrics in
    :func:`repro.obs.collect.collect_sharded`, and :meth:`health`
    exposes the live view the service layer serves on ``/healthz``.
    Worker ``error`` replies (exceptions in sketch code) are *not*
    recovered — deterministic bugs would crash-loop; they still raise
    :class:`RuntimeShardError`.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import pickle
import time
import warnings
from dataclasses import dataclass
from queue import Empty
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import XSketchConfig
from repro.core.engines import make_engine, validate_engine
from repro.core.reports import SimplexReport
from repro.core.serialize import restore_xsketch, snapshot_xsketch
from repro.core.xsketch import XSketch, report_order
from repro.errors import ConfigurationError, RuntimeShardError
from repro.hashing.family import ItemId
from repro.obs.profile import PhaseProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import new_span_id
from repro.runtime.faults import Fault
from repro.runtime.partition import KeyPartitioner
from repro.runtime.worker import WorkerReport, shard_worker_main

#: insert()-path buffering: a shard's buffer is flushed to its queue
#: once it holds this many items (ingest_batch sends immediately).
DEFAULT_BATCH_SIZE = 2048

#: Seconds the coordinator waits for a worker reply before declaring
#: the shard wedged (dead workers are detected much faster via
#: ``is_alive`` polling).
DEFAULT_REPLY_TIMEOUT = 300.0

#: Default cap on supervised restarts across the runtime's lifetime —
#: a crash-looping deployment must eventually surface as an error.
DEFAULT_MAX_RESTARTS = 5

#: Seconds between reply polls while collecting (also the dead-worker
#: detection latency per shard).
_POLL_INTERVAL = 0.05

#: Command to resend after a restart, keyed by the reply kind the
#: coordinator was collecting when the shard died.
_RESEND_COMMANDS = {
    "end_window": ("end_window",),
    "stats": ("stats",),
    "metrics": ("metrics",),
    "trace": ("trace",),
    "checkpoint": ("checkpoint",),
    "stopped": ("stop",),
}


@dataclass(frozen=True)
class ShardStats:
    """Coordinator- plus worker-side counters of one shard."""

    shard_id: int
    #: arrivals the partitioner routed to this shard
    items_routed: int
    #: ingest commands sent to this shard
    batches_sent: int
    #: command-queue backlog at sampling time (None when the platform
    #: does not support qsize, e.g. macOS sem_getvalue)
    queue_depth: Optional[int]
    #: the worker's own counters (ingested items, busy time, sketch stats)
    worker: WorkerReport


@dataclass(frozen=True)
class ShardedStats:
    """A point-in-time view of the whole sharded runtime."""

    n_shards: int
    window: int
    items_routed: int
    reports: int
    #: X-Sketch merge() calls performed by compaction so far
    merge_count: int
    shards: Tuple[ShardStats, ...]

    @property
    def total_busy_seconds(self) -> float:
        """Summed sketch time across shards (> wall time when parallel)."""
        return sum(shard.worker.busy_seconds for shard in self.shards)


class ShardedXSketch:
    """Coordinator over ``n_shards`` X-Sketch workers.

    Args:
        config: per-shard X-Sketch configuration.  Every shard gets the
            full budget, so total memory is ``n_shards x config`` —
            sharding buys throughput and tracking capacity, not memory.
        n_shards: number of shards (>= 1).
        seed: base seed; shared by all shards so their hash families
            are identical, which keeps shard states merge-compatible
            for the compaction path.  Key routing uses a salted seed
            and is independent of the sketch hashes.
        backend: ``"process"`` (worker processes, spawn-safe) or
            ``"inline"`` (in-process shards; deterministic, no IPC).
        mp_context: multiprocessing start method for the process
            backend (``"spawn"`` by default — safe everywhere).
        batch_size: insert()-path buffer size per shard.
        reply_timeout: seconds to wait for worker replies before a
            non-replying but alive worker counts as wedged.
        snapshots: per-shard snapshot dicts to restore from (used by
            :func:`repro.runtime.checkpoint.load_sharded_checkpoint`).
        observability: attach a live ``repro.obs.Recorder`` (registry +
            trace ring) to every shard sketch.  Off by default — the
            canonical decision counters are available either way through
            :meth:`metrics_registry`; turning this on adds the
            algorithm histograms and the per-shard trace rings read by
            :meth:`trace_events`.
        supervised: self-heal dead or wedged workers from the last
            auto-checkpoint instead of raising (process backend only;
            see the module docstring).  Worker exceptions still raise.
        auto_checkpoint_interval: take an in-memory checkpoint of every
            shard at each ``interval``-th window boundary (0 disables —
            a restart then restores a blank shard).  Only meaningful
            with ``supervised=True`` on the process backend.
        max_restarts: total supervised restarts allowed across the
            runtime's lifetime before giving up with
            :class:`RuntimeShardError`.
        faults: deterministic fault plan (:mod:`repro.runtime.faults`)
            handed to the initial worker processes; replacements are
            always spawned fault-free.  Process backend only.
        engine: ingest representation per shard (``"xsketch"``,
            ``"batched"`` or ``"vectorized"``; see
            :mod:`repro.core.engines` and the engine-selection matrix in
            docs/RUNTIME.md).  All shards run the same engine; restarts
            restore the engine recorded in the shard snapshot.
        temporal: a :class:`repro.temporal.store.TemporalStore` to feed
            with the window lifecycle: every dispatched arrival goes to
            its open-window frequency sketch, and each
            :meth:`flush_window` seals the closed window into its
            retention ladder (reports plus, inside the store's fidelity
            horizon, a full merged-sketch snapshot).  ``None`` disables
            history retention.
    """

    def __init__(
        self,
        config: XSketchConfig,
        n_shards: int,
        seed: int = 0,
        backend: str = "process",
        mp_context: str = "spawn",
        batch_size: int = DEFAULT_BATCH_SIZE,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
        snapshots: Optional[Sequence[Dict]] = None,
        observability: bool = False,
        supervised: bool = True,
        auto_checkpoint_interval: int = 1,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        faults: Optional[Sequence[Fault]] = None,
        temporal=None,
        engine: str = "xsketch",
    ):
        validate_engine(engine, config)
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        if backend not in ("process", "inline"):
            raise ConfigurationError(
                f"backend must be 'process' or 'inline', got {backend!r}"
            )
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if snapshots is not None and len(snapshots) != n_shards:
            raise ConfigurationError(
                f"got {len(snapshots)} snapshots for {n_shards} shards"
            )
        if auto_checkpoint_interval < 0:
            raise ConfigurationError(
                f"auto_checkpoint_interval must be >= 0, got {auto_checkpoint_interval}"
            )
        if max_restarts < 0:
            raise ConfigurationError(f"max_restarts must be >= 0, got {max_restarts}")
        if faults:
            if backend != "process":
                raise ConfigurationError(
                    "fault injection requires the process backend"
                )
            for fault in faults:
                if fault.shard >= n_shards:
                    raise ConfigurationError(
                        f"fault targets shard {fault.shard}, runtime has {n_shards}"
                    )
        self.config = config
        self.n_shards = n_shards
        self.seed = seed
        self.engine = engine
        self.backend = backend
        self.batch_size = batch_size
        self.reply_timeout = reply_timeout
        self.supervised = supervised
        self.auto_checkpoint_interval = auto_checkpoint_interval
        self.max_restarts = max_restarts
        self.faults = list(faults) if faults else []
        self.partitioner = KeyPartitioner(
            n_shards, seed=seed, hash_family=config.hash_family
        )
        self.window = 0
        self._reports: List[SimplexReport] = []
        self._closed = False
        #: coordinator-side per-shard counters
        self.items_routed = [0] * n_shards
        self.batches_sent = [0] * n_shards
        #: X-Sketch merges performed by merged_sketch() so far
        self.merge_count = 0
        #: supervision counters (honest loss accounting; see health())
        self.shard_restarts = [0] * n_shards
        self.items_lost_estimate = 0
        self.command_retries = 0
        self.reports_discarded = 0
        #: errors swallowed by the shutdown path, surfaced as warnings
        #: and counted by the obs collector instead of silently dropped
        self.close_errors: List[str] = []
        self._recovering = False
        self._buffers: List[List[ItemId]] = [[] for _ in range(n_shards)]
        self._memory_bytes: Optional[float] = None
        self.observability = observability
        self.temporal = temporal
        #: live span tracer (assigned by the service layer when tracing
        #: is on; coordinator spans and adopted worker spans share its
        #: sink, so /trace sees one tree per window boundary)
        self.tracer = None
        #: always-on coordinator-phase timings (window granularity only:
        #: dispatch / shard / merge / temporal / checkpoint), folded
        #: into :meth:`metrics_registry` by the sharded collector
        self.coordinator_metrics = MetricsRegistry()
        self.profiler = PhaseProfiler(self.coordinator_metrics)
        #: merged_sketch() memo: (window id, sketch); new data or a
        #: window boundary invalidates it
        self._merged_cache: Optional[Tuple[int, XSketch]] = None
        #: memo effectiveness (runtime_merged_cache_* in /metrics)
        self.merged_cache_hits = 0
        self.merged_cache_misses = 0
        #: last auto-checkpoint per shard (restart restore point)
        self._shard_snapshots: List[Optional[Dict]] = (
            [dict(s) for s in snapshots] if snapshots else [None] * n_shards
        )
        self._snapshot_window = snapshots[0]["window"] if snapshots else 0
        self._items_since_snapshot = [0] * n_shards
        if backend == "inline":
            self._locals = []
            for i in range(n_shards):
                recorder = self._make_recorder() if observability else None
                if snapshots:
                    sketch = restore_xsketch(snapshots[i], seed=seed, recorder=recorder)
                else:
                    sketch = make_engine(
                        config, seed=seed, engine=engine, recorder=recorder
                    )
                self._locals.append(sketch)
            self._inline_busy = [0.0] * n_shards
            if snapshots:
                self.window = self._locals[0].window
        else:
            self._spawn_workers(mp_context, snapshots)
            if snapshots:
                self.window = snapshots[0]["window"]

    @staticmethod
    def _make_recorder():
        from repro.obs.recorder import Recorder
        from repro.obs.registry import MetricsRegistry
        from repro.obs.trace import TraceRing

        return Recorder(MetricsRegistry(), trace=TraceRing())

    # ------------------------------------------------------------------
    # process-backend plumbing

    def _spawn_workers(self, mp_context: str, snapshots) -> None:
        self._ctx = multiprocessing.get_context(mp_context)
        self._command_queues = []
        self._result_queues = []
        self._workers = []
        for shard_id in range(self.n_shards):
            command_queue = self._ctx.Queue()
            result_queue = self._ctx.Queue()
            worker = self._ctx.Process(
                target=shard_worker_main,
                args=(
                    shard_id,
                    self.config,
                    self.seed,
                    command_queue,
                    result_queue,
                    snapshots[shard_id] if snapshots else None,
                    self.observability,
                    self.faults or None,
                    self.engine,
                ),
                daemon=True,
                name=f"xsketch-shard-{shard_id}",
            )
            worker.start()
            self._command_queues.append(command_queue)
            self._result_queues.append(result_queue)
            self._workers.append(worker)

    def _broadcast(self, command: Tuple) -> None:
        for queue in self._command_queues:
            queue.put(command)

    def _collect(
        self,
        kind: str,
        supervised: Optional[bool] = None,
        timeout: Optional[float] = None,
    ) -> List:
        """Gather one ``kind`` reply from every shard, in shard order.

        Polls each shard's private result queue in short intervals so a
        worker that died without replying (e.g. killed, or crashed
        before the protocol loop) surfaces immediately instead of after
        the full reply deadline.  With supervision on, a dead or
        deadline-expired shard is restarted in place and the command is
        resent; otherwise (or once the restart budget is exhausted) a
        :class:`RuntimeShardError` is raised.
        """
        if supervised is None:
            supervised = self.supervised
        deadline_seconds = self.reply_timeout if timeout is None else timeout
        payloads: List = [None] * self.n_shards
        # A shard has replied iff it is in this set.  (Payloads may
        # legitimately be None — e.g. ``stopped`` — so ``payloads[shard]
        # is None`` must never be used as the replied test.)
        replied = set()
        deadline = time.monotonic() + deadline_seconds
        while len(replied) < self.n_shards:
            for shard in range(self.n_shards):
                if shard in replied:
                    continue
                try:
                    reply = self._result_queues[shard].get(timeout=_POLL_INTERVAL)
                except Empty:
                    # Only a timeout means "no reply yet"; queue plumbing
                    # or unpickling failures must propagate as what they
                    # are rather than masquerade as a silent shard.
                    worker = self._workers[shard]
                    if not worker.is_alive() and self._result_queues[shard].empty():
                        self._recover_shard(
                            shard, kind, f"shard {shard} exited without replying",
                            supervised,
                        )
                        deadline = time.monotonic() + deadline_seconds
                    continue
                reply_kind, reply_shard, payload = reply
                if reply_kind == "error":
                    raise RuntimeShardError(f"shard {reply_shard} failed:\n{payload}")
                if reply_kind != kind or reply_shard != shard:
                    raise RuntimeShardError(
                        f"protocol violation: expected {kind!r} from shard "
                        f"{shard}, got {reply_kind!r} from shard {reply_shard}"
                    )
                payloads[shard] = payload
                replied.add(shard)
            if len(replied) < self.n_shards and time.monotonic() > deadline:
                wedged = [s for s in range(self.n_shards) if s not in replied]
                for shard in wedged:
                    self._recover_shard(
                        shard, kind,
                        f"shard {shard} sent no reply within {deadline_seconds}s "
                        f"while waiting for {kind!r}",
                        supervised,
                    )
                deadline = time.monotonic() + deadline_seconds
        return payloads

    def _recover_shard(
        self, shard: int, resend_kind: str, reason: str, supervised: bool
    ) -> None:
        """Restart ``shard`` in place, or raise when supervision can't."""
        if not supervised or self._recovering:
            raise RuntimeShardError(reason)
        if sum(self.shard_restarts) >= self.max_restarts:
            raise RuntimeShardError(
                f"{reason}; restart budget exhausted "
                f"({self.max_restarts} restarts used, "
                f"items_lost_estimate={self.items_lost_estimate})"
            )
        self._restart_shard(shard, resend_kind, reason)

    def _restart_shard(self, shard: int, resend_kind: str, reason: str) -> None:
        """Respawn one worker from its last checkpoint and resync it.

        Sequence: retire the old process and queues, salvage the ingest
        batches still sitting in the dead incarnation's command queue,
        spawn a fault-free replacement on fresh queues restoring the
        last auto-checkpoint, fast-forward it to the coordinator's
        window (discarding catch-up reports the merged stream already
        has), replay the salvaged batches, and resend the command whose
        reply we were waiting for.
        """
        self._recovering = True
        try:
            restarts = self.shard_restarts[shard] + 1
            old = self._workers[shard]
            if old.is_alive():
                old.terminate()
                old.join(timeout=10)
                if old.is_alive():  # pragma: no cover - defensive
                    old.kill()
                    old.join(timeout=10)
            else:
                old.join(timeout=10)
            salvaged = self._drain_salvageable(shard)
            self._retire_queue(self._command_queues[shard])
            self._retire_queue(self._result_queues[shard])
            command_queue = self._ctx.Queue()
            result_queue = self._ctx.Queue()
            worker = self._ctx.Process(
                target=shard_worker_main,
                args=(
                    shard,
                    self.config,
                    self.seed,
                    command_queue,
                    result_queue,
                    self._shard_snapshots[shard],
                    self.observability,
                    None,  # replacements run fault-free
                    self.engine,
                ),
                daemon=True,
                name=f"xsketch-shard-{shard}-r{restarts}",
            )
            worker.start()
            self._command_queues[shard] = command_queue
            self._result_queues[shard] = result_queue
            self._workers[shard] = worker
            self.shard_restarts[shard] = restarts
            # Fast-forward from the snapshot boundary to the current
            # window before replaying anything.
            command_queue.put(("advance", self.window))
            advance = self._collect_from(shard, "advance")
            self.reports_discarded += advance["reports_discarded"]
            salvaged_items = sum(len(batch) for batch in salvaged)
            lost = max(0, self._items_since_snapshot[shard] - salvaged_items)
            self.items_lost_estimate += lost
            self._items_since_snapshot[shard] = salvaged_items
            for batch in salvaged:
                command_queue.put(("ingest", batch))
            if resend_kind in _RESEND_COMMANDS:
                command_queue.put(_RESEND_COMMANDS[resend_kind])
                self.command_retries += 1
            warnings.warn(
                f"ShardedXSketch: restarted shard {shard} ({reason}); "
                f"restored window {self._snapshot_window}, advanced "
                f"{advance['closed']} windows, salvaged {salvaged_items} "
                f"queued items, ~{lost} items lost",
                RuntimeWarning,
                stacklevel=4,
            )
        finally:
            self._recovering = False

    def _drain_salvageable(self, shard: int) -> List[List[ItemId]]:
        """Ingest batches still queued for a dead worker (best effort).

        The dead incarnation never consumed these, so the replacement
        can legitimately replay them.  Control commands are dropped (the
        collect loop resends the one in flight).

        The cooperative ``get()`` path cannot be used here: a worker
        SIGKILLed while blocked in ``get()`` dies *holding the queue's
        shared reader lock*, so ``get(timeout=...)`` would report
        ``Empty`` with every batch still sitting in the pipe.  The dead
        worker was the only other reader, so the coordinator bypasses
        the lock and reads the raw pipe directly; each ``poll`` wait
        also gives its own feeder thread time to finish flushing
        buffered ``put``\\s.  (``Queue.close()`` must NOT be called
        first — it closes the calling process's *read* end.)  Broad
        exception catch is deliberate: a reader killed mid-recv can
        leave a truncated message, and anything unreadable past it is
        simply counted as lost.
        """
        salvaged: List[List[ItemId]] = []
        reader = getattr(self._command_queues[shard], "_reader", None)
        if reader is None:  # pragma: no cover - defensive
            return salvaged
        while True:
            try:
                if not reader.poll(_POLL_INTERVAL):
                    break
                command = pickle.loads(reader.recv_bytes())
            except Exception:  # pragma: anything unreadable past a truncated message is counted as lost
                break
            if command[0] == "ingest":
                salvaged.append(command[1])
        return salvaged

    @staticmethod
    def _retire_queue(queue) -> None:
        """Abandon a dead incarnation's queue without blocking on it."""
        with contextlib.suppress(OSError, ValueError):
            queue.cancel_join_thread()
            queue.close()

    def _collect_from(self, shard: int, kind: str):
        """One reply from one (freshly restarted) shard; never recovers."""
        deadline = time.monotonic() + self.reply_timeout
        while True:
            try:
                reply = self._result_queues[shard].get(timeout=_POLL_INTERVAL)
            except Empty:
                worker = self._workers[shard]
                if not worker.is_alive() and self._result_queues[shard].empty():
                    raise RuntimeShardError(
                        f"replacement for shard {shard} exited before "
                        f"replying to {kind!r}"
                    )
                if time.monotonic() > deadline:
                    raise RuntimeShardError(
                        f"no {kind!r} reply from restarted shard {shard} "
                        f"within {self.reply_timeout}s"
                    )
                continue
            reply_kind, reply_shard, payload = reply
            if reply_kind == "error":
                raise RuntimeShardError(f"shard {reply_shard} failed:\n{payload}")
            if reply_kind != kind or reply_shard != shard:
                raise RuntimeShardError(
                    f"protocol violation: expected {kind!r} from shard {shard}, "
                    f"got {reply_kind!r} from shard {reply_shard}"
                )
            return payload

    def _auto_checkpoint(self) -> None:
        """Refresh the in-memory restore point at a window boundary."""
        self._broadcast(("checkpoint",))
        snapshots = self._collect("checkpoint")
        self._shard_snapshots = snapshots
        self._snapshot_window = self.window
        self._items_since_snapshot = [0] * self.n_shards

    # ------------------------------------------------------------------
    # stream protocol

    def insert(self, item: ItemId) -> None:
        """Route one arrival (buffered; flushed by size or at flush_window)."""
        shard = self.partitioner.shard_of(item)
        buffer = self._buffers[shard]
        buffer.append(item)
        if len(buffer) >= self.batch_size:
            self._dispatch(shard, buffer)
            self._buffers[shard] = []

    def ingest_batch(self, items: Sequence[ItemId]) -> None:
        """Route a batch of arrivals into the current window."""
        for shard, part in enumerate(self.partitioner.split(items)):
            if part:
                self._dispatch(shard, part)

    def _dispatch(self, shard: int, items: List[ItemId]) -> None:
        if self._closed:
            raise RuntimeShardError("ShardedXSketch is closed")
        self.items_routed[shard] += len(items)
        self.batches_sent[shard] += 1
        self._merged_cache = None
        if self.temporal is not None:
            self.temporal.observe_items(items)
        if self.backend == "inline":
            start = time.perf_counter()
            self._locals[shard].ingest_batch(items)
            self._inline_busy[shard] += time.perf_counter() - start
        else:
            self._items_since_snapshot[shard] += len(items)
            self._command_queues[shard].put(("ingest", items))

    def _flush_buffers(self) -> None:
        for shard, buffer in enumerate(self._buffers):
            if buffer:
                self._dispatch(shard, buffer)
                self._buffers[shard] = []

    def flush_window(self, span_ctx=None) -> List[SimplexReport]:
        """Close the current window on every shard; merged reports back.

        ``span_ctx`` is the parent :class:`~repro.obs.spans.SpanContext`
        (the service's ``window.flush`` span) — with a live ``tracer``
        attached, the coordinator wraps the close in its own span,
        ships that context to every worker inside the ``end_window``
        command, and adopts the per-shard spans the workers return, so
        the whole fan-out lands in one tree.  Without either, the close
        runs exactly as before (the NULL_TRACER gate).
        """
        self._flush_buffers()
        tracer = self.tracer
        if tracer is None or not tracer.enabled or span_ctx is None:
            tracer = None
        if tracer is not None:
            with tracer.span(
                "coordinator.end_window", parent=span_ctx,
                window=self.window, shards=self.n_shards,
            ) as coordinator_span:
                merged = self._close_shards(tracer, coordinator_span.context)
        else:
            merged = self._close_shards(None, None)
        with self.profiler.phase("merge"):
            merged.sort(key=report_order)
        self._reports.extend(merged)
        closed_window = self.window
        self.window += 1
        self._merged_cache = None
        if (
            self.backend == "process"
            and self.supervised
            and self.auto_checkpoint_interval
            and self.window % self.auto_checkpoint_interval == 0
        ):
            with self.profiler.phase("checkpoint"):
                self._auto_checkpoint()
        if self.temporal is not None:
            # The snapshot thunk rides the merged_sketch() memo (and the
            # auto-checkpoint just taken, when there was one), so deep
            # time-travel fidelity costs at most one compaction per
            # boundary — and nothing once the store stops asking.
            with self.profiler.phase("temporal"):
                self.temporal.on_window(
                    closed_window,
                    merged,
                    snapshot_fn=lambda: snapshot_xsketch(self.merged_sketch()),
                )
        return merged

    def _close_shards(self, tracer, ctx) -> List[SimplexReport]:
        """End the window on every shard; unsorted union of reports.

        With a tracer, each shard's close is timed where it runs: the
        inline backend emits the span directly, the process backend
        sends ``ctx`` on the wire and adopts the span dict each worker
        returns alongside its reports.  A freshly restarted shard
        answers the bare resent command with bare reports (no span) —
        its close simply goes untimed for that window.
        """
        if self.backend == "inline":
            merged: List[SimplexReport] = []
            with self.profiler.phase("shard"):
                for shard, sketch in enumerate(self._locals):
                    start = time.perf_counter()
                    reports = sketch.end_window()
                    elapsed = time.perf_counter() - start
                    self._inline_busy[shard] += elapsed
                    if tracer is not None:
                        tracer.emit(
                            "shard.end_window",
                            trace_id=ctx.trace_id,
                            span_id=new_span_id(),
                            parent_id=ctx.span_id,
                            ts=tracer.timestamp() - elapsed,
                            dur=elapsed,
                            shard=shard,
                        )
                    merged.extend(reports)
            return merged
        command = (
            ("end_window", ctx.to_wire()) if tracer is not None
            else ("end_window",)
        )
        with self.profiler.phase("dispatch"):
            self._broadcast(command)
        with self.profiler.phase("shard"):
            payloads = self._collect("end_window")
        merged = []
        for payload in payloads:
            if isinstance(payload, dict):
                if tracer is not None and payload.get("span") is not None:
                    tracer.adopt([payload["span"]])
                merged.extend(payload["reports"])
            else:
                merged.extend(payload)
        return merged

    #: alias so the coordinator matches the engine protocol
    end_window = flush_window

    def run_window(self, items: Sequence[ItemId]) -> List[SimplexReport]:
        """Convenience: ingest a whole window of arrivals, then close it."""
        self.ingest_batch(items)
        return self.flush_window()

    def report(self) -> List[SimplexReport]:
        """All reports emitted so far, in canonical order."""
        return list(self._reports)

    @property
    def reports(self) -> List[SimplexReport]:
        """Alias of :meth:`report` (engine protocol)."""
        return self.report()

    # ------------------------------------------------------------------
    # observability

    def queue_depths(self) -> List[Optional[int]]:
        """Approximate command-queue backlog per shard (None if unknown)."""
        if self.backend == "inline":
            return [0] * self.n_shards
        depths: List[Optional[int]] = []
        for queue in self._command_queues:
            try:
                depths.append(queue.qsize())
            except NotImplementedError:  # pragma: no cover - macOS
                depths.append(None)
        return depths

    def health(self) -> Dict:
        """Non-blocking liveness view (no worker IPC; safe cross-thread).

        ``status`` is ``"degraded"`` while any worker process is dead
        and not yet restarted, or while a restart is in progress;
        ``"ok"`` otherwise.  The service layer serves this from
        ``/healthz`` so a recovering runtime is visible without tearing
        anything down.
        """
        dead: List[int] = []
        pids: List[Optional[int]] = []
        if self.backend == "process" and not self._closed:
            for shard, worker in enumerate(self._workers):
                pids.append(worker.pid)
                if not worker.is_alive():
                    dead.append(shard)
        recovering = self._recovering
        return {
            "status": "degraded" if (dead or recovering) else "ok",
            "backend": self.backend,
            "n_shards": self.n_shards,
            "window": self.window,
            "supervised": self.supervised,
            "recovering": recovering,
            "dead_shards": dead,
            "worker_pids": pids,
            "restarts": list(self.shard_restarts),
            "restarts_total": sum(self.shard_restarts),
            "items_lost_estimate": self.items_lost_estimate,
            "command_retries": self.command_retries,
        }

    def stats(self) -> ShardedStats:
        """Coordinator and worker counters for every shard."""
        if self.backend == "inline":
            worker_reports = [
                WorkerReport(
                    shard_id=shard,
                    items_ingested=self.items_routed[shard],
                    batches=self.batches_sent[shard],
                    windows=sketch.window,
                    busy_seconds=self._inline_busy[shard],
                    stats=sketch.stats,
                )
                for shard, sketch in enumerate(self._locals)
            ]
        else:
            self._broadcast(("stats",))
            worker_reports = self._collect("stats")
        depths = self.queue_depths()
        shards = tuple(
            ShardStats(
                shard_id=shard,
                items_routed=self.items_routed[shard],
                batches_sent=self.batches_sent[shard],
                queue_depth=depths[shard],
                worker=worker_reports[shard],
            )
            for shard in range(self.n_shards)
        )
        return ShardedStats(
            n_shards=self.n_shards,
            window=self.window,
            items_routed=sum(self.items_routed),
            reports=len(self._reports),
            merge_count=self.merge_count,
            shards=shards,
        )

    def metrics_registry(self, registry=None):
        """Aggregated metrics of the whole runtime, as one registry.

        Walks the same reduction path as report merging: each shard
        contributes its sketch's canonical registry (counters synced
        from the plain-int decision counters, plus any live-recorder
        histograms), serialized as a snapshot on the process backend and
        collected directly on the inline one; the coordinator folds the
        per-shard views together (counters/gauges add, histograms add
        bucket-wise) and stamps its own routing and supervision
        counters on top.
        """
        from repro.obs.collect import collect_sharded
        from repro.obs.registry import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        if self.backend == "inline":
            for sketch in self._locals:
                sketch.metrics_registry(registry)
        else:
            self._broadcast(("metrics",))
            for snapshot in self._collect("metrics"):
                registry.merge_snapshot(snapshot)
        return collect_sharded(self, registry)

    def trace_events(self) -> List[Dict]:
        """All shards' trace-ring events, ordered by timestamp.

        Empty unless the runtime was built with ``observability=True``.
        Each event is a JSON-safe dict carrying at least ``ts``,
        ``kind`` and ``shard``.  A restarted shard's ring restarts with
        it — flight-recorder contents do not survive a crash.
        """
        events: List[Dict] = []
        if self.backend == "inline":
            per_shard = [
                sketch.recorder.trace.events()
                if getattr(sketch.recorder, "trace", None) is not None
                else []
                for sketch in self._locals
            ]
        else:
            self._broadcast(("trace",))
            per_shard = self._collect("trace")
        for shard, shard_events in enumerate(per_shard):
            for event in shard_events:
                stamped = dict(event)
                stamped["shard"] = shard
                events.append(stamped)
        events.sort(key=lambda e: e.get("ts", 0.0))
        return events

    @property
    def memory_bytes(self) -> float:
        """Accounted memory across all shards (n_shards x one sketch)."""
        if self._memory_bytes is None:
            if self.backend == "inline":
                self._memory_bytes = sum(s.memory_bytes for s in self._locals)
            else:
                probe = make_engine(self.config, seed=self.seed, engine=self.engine)
                self._memory_bytes = self.n_shards * probe.memory_bytes
        return self._memory_bytes

    # ------------------------------------------------------------------
    # checkpoint / compaction

    def _collect_snapshots(self) -> List[Dict]:
        """Per-shard snapshots at the current window boundary."""
        if any(self._buffers[shard] for shard in range(self.n_shards)):
            raise RuntimeShardError(
                "snapshot only at a window boundary (insert buffers not empty); "
                "call flush_window() first"
            )
        if self.backend == "inline":
            return [snapshot_xsketch(sketch) for sketch in self._locals]
        self._broadcast(("checkpoint",))
        return self._collect("checkpoint")

    def checkpoint(self, directory) -> None:
        """Write a shard-aware checkpoint directory (manifest + shards)."""
        from repro.runtime.checkpoint import save_sharded_checkpoint

        save_sharded_checkpoint(self, directory)

    @classmethod
    def restore(cls, directory, backend: str = "process", **kwargs) -> "ShardedXSketch":
        """Rebuild a sharded runtime from :meth:`checkpoint` output."""
        from repro.runtime.checkpoint import load_sharded_checkpoint

        return load_sharded_checkpoint(directory, backend=backend, **kwargs)

    def merged_sketch(self) -> XSketch:
        """Compact all shards into one single-process sketch.

        The result's class matches the runtime's ``engine`` (an
        :class:`XSketch`, :class:`~repro.core.batched.BatchedXSketch`
        or :class:`~repro.core.vectorized.VectorizedXSketch` -- each
        implements the same ``merge()`` protocol).

        The documented fallback merge path: per-shard states are
        snapshotted at the current window boundary, rebuilt locally and
        folded together (Stage 1 counter-wise, Stage 2 by weight
        election).  The running shards are not disturbed.  Note the
        merged sketch holds one ``config`` worth of memory, so Stage-2
        buckets may overflow and elect by weight; with ample memory the
        merged report stream matches the sharded one.

        The result is memoized per window: repeated calls between
        window boundaries return the same compacted sketch without
        touching the workers.  Any new dispatched data or a
        ``flush_window`` invalidates the memo, and when the supervision
        auto-checkpoint already holds fresh per-shard snapshots at this
        boundary they are reused instead of a second snapshot round-trip.
        """
        if any(self._buffers):
            raise RuntimeShardError(
                "snapshot only at a window boundary (insert buffers not empty); "
                "call flush_window() first"
            )
        if self._merged_cache is not None and self._merged_cache[0] == self.window:
            self.merged_cache_hits += 1
            merged = self._merged_cache[1]
            merged._reports = sorted(self._reports, key=report_order)
            return merged
        self.merged_cache_misses += 1
        snapshots = self._cached_shard_snapshots()
        if snapshots is None:
            snapshots = self._collect_snapshots()
        merged = restore_xsketch(snapshots[0], seed=self.seed)
        for snapshot in snapshots[1:]:
            merged.merge(restore_xsketch(snapshot, seed=self.seed))
            self.merge_count += 1
        merged._reports = sorted(self._reports, key=report_order)
        self._merged_cache = (self.window, merged)
        return merged

    def slim_summary(self) -> Dict:
        """The slim read-side summary of the merged sketch.

        See :func:`repro.runtime.slim.slim_summary`; rides the
        ``merged_sketch()`` memo, so between boundaries repeated
        summaries cost one dict build, not a shard round-trip.
        """
        from repro.runtime.slim import slim_summary

        return slim_summary(self.merged_sketch())

    def _cached_shard_snapshots(self) -> Optional[List[Dict]]:
        """The auto-checkpoint's snapshots, when still at this boundary."""
        if (
            self._snapshot_window == self.window
            and all(s is not None for s in self._shard_snapshots)
            and not any(self._items_since_snapshot)
        ):
            return self._shard_snapshots
        return None

    # ------------------------------------------------------------------
    # lifecycle

    def _note_close_error(self, message: str) -> None:
        """Record an error swallowed on the shutdown path, visibly."""
        self.close_errors.append(message)
        warnings.warn(
            f"ShardedXSketch.close: {message}", RuntimeWarning, stacklevel=3
        )

    def close(self) -> None:
        """Stop all workers; idempotent.

        The shutdown path never raises, but neither does it hide
        trouble: every swallowed error is appended to ``close_errors``,
        emitted as a :class:`RuntimeWarning`, and counted by the obs
        collector (``runtime_close_errors_total``), so leaked workers
        or broken queues stay visible.
        """
        # getattr: __init__ may have raised before _closed was set, and
        # __del__ still runs on the half-constructed object.
        if getattr(self, "_closed", True):
            return
        self._closed = True
        if self.backend == "inline":
            return
        try:
            self._broadcast(("stop",))
            # Never supervise the shutdown handshake (restarting a
            # worker just to stop it again would be absurd), and don't
            # wait the full reply deadline for a wedged one.
            self._collect(
                "stopped", supervised=False, timeout=min(self.reply_timeout, 10.0)
            )
        except RuntimeShardError as exc:
            self._note_close_error(f"shutdown handshake failed: {exc}")
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - defensive
                self._note_close_error(
                    f"worker {worker.name} did not exit; terminating it"
                )
                worker.terminate()
                worker.join(timeout=10)
        for queue in (*self._command_queues, *self._result_queues):
            try:
                queue.close()
            except Exception as exc:  # pragma: no cover - defensive
                self._note_close_error(
                    f"queue close failed: {type(exc).__name__}: {exc}"
                )

    def __enter__(self) -> "ShardedXSketch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception as exc:
            # pragma: the interpreter may be tearing down; even the
            # warning is best-effort here.
            with contextlib.suppress(Exception):  # pragma: shutdown teardown
                warnings.warn(
                    f"ShardedXSketch.__del__: close failed: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                )
