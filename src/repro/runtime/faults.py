"""Deterministic fault injection for the sharded runtime.

The supervision layer (``docs/RUNTIME.md``, "Fault tolerance") is only
trustworthy if its failure paths are exercised on purpose.  This module
defines a small, picklable fault vocabulary that both the tests and the
CLI (``--inject-fault``) hand to :class:`repro.runtime.ShardedXSketch`;
each worker process consults a :class:`FaultInjector` built from the
specs and fails *exactly* where asked, so crash scenarios replay
bit-identically.

Fault kinds (``Fault.kind``):

``kill``
    The worker calls ``os._exit(137)`` — indistinguishable from an OOM
    kill or ``kill -9``.  ``point`` selects the instant:

    - ``"ingest"``: on receiving the first ingest command while the
      shard sketch sits at ``window`` (a mid-window crash; the consumed
      batch is lost).
    - ``"end_window"``: on receiving the window-close command at
      ``window``, before closing (the whole window's worth of shard
      state since the last checkpoint is lost).
    - ``"checkpoint"``: right *after* replying to a checkpoint command
      at ``window`` — a clean boundary kill: the coordinator holds a
      fresh snapshot, so a supervised restart loses nothing.

``drop_reply``
    Process the next ``count`` matching commands normally but never
    reply — a wedged worker.  The coordinator's reply deadline expires
    and retry-with-restart kicks in.

``slow``
    Sleep ``seconds`` before processing each of the next ``count``
    matching commands.  Below the reply deadline this must be harmless;
    above it, the worker is treated as wedged.

``error``
    Raise inside the worker loop on the next ``count`` matching
    commands.  Worker exceptions are protocol errors, not crashes: they
    travel back as an ``error`` reply and the coordinator raises
    :class:`repro.errors.RuntimeShardError` even under supervision.

CLI spec grammar (one fault per ``--inject-fault``)::

    kind:key=value[,key=value...]

    kill:shard=0,window=3,point=checkpoint
    drop_reply:shard=1,op=end_window
    slow:shard=0,op=end_window,seconds=2.5
    error:shard=1,op=checkpoint,window=4
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError

FAULT_KINDS = ("kill", "drop_reply", "slow", "error")

#: Where a ``kill`` fault fires (see module docstring).
KILL_POINTS = ("ingest", "end_window", "checkpoint")

#: Worker commands a drop_reply / slow / error fault can target.
FAULT_OPS = ("ingest", "end_window", "stats", "metrics", "trace", "checkpoint", "stop")

#: Exit status of an injected kill (mirrors SIGKILL's 128+9).
KILL_EXIT_CODE = 137


@dataclass(frozen=True)
class Fault:
    """One deterministic fault, addressed to one shard.

    ``window`` filters on the shard sketch's window counter at command
    receipt (``None`` = any window).  ``op``/``point`` select the
    command; ``count`` limits how often drop_reply/slow/error fire.
    """

    kind: str
    shard: int
    window: Optional[int] = None
    point: str = "ingest"
    op: str = "end_window"
    seconds: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.shard < 0:
            raise ConfigurationError(f"fault shard must be >= 0, got {self.shard}")
        if self.kind == "kill" and self.point not in KILL_POINTS:
            raise ConfigurationError(
                f"kill point must be one of {KILL_POINTS}, got {self.point!r}"
            )
        if self.kind != "kill" and self.op not in FAULT_OPS:
            raise ConfigurationError(
                f"fault op must be one of {FAULT_OPS}, got {self.op!r}"
            )
        if self.kind == "slow" and self.seconds <= 0:
            raise ConfigurationError(
                f"slow fault needs seconds > 0, got {self.seconds}"
            )
        if self.count < 1:
            raise ConfigurationError(f"fault count must be >= 1, got {self.count}")


_FIELD_PARSERS = {
    "shard": int,
    "window": int,
    "point": str,
    "op": str,
    "seconds": float,
    "count": int,
}


def parse_fault(spec: str) -> Fault:
    """Parse one ``kind:key=value,...`` CLI spec into a :class:`Fault`."""
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    kwargs = {}
    if rest.strip():
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or key not in _FIELD_PARSERS:
                raise ConfigurationError(
                    f"bad fault field {pair!r} in {spec!r}; "
                    f"known fields: {sorted(_FIELD_PARSERS)}"
                )
            try:
                kwargs[key] = _FIELD_PARSERS[key](value.strip())
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad fault value {value!r} for {key!r} in {spec!r}"
                ) from exc
    if "shard" not in kwargs:
        raise ConfigurationError(f"fault spec {spec!r} needs shard=<id>")
    return Fault(kind=kind, **kwargs)


def parse_faults(specs: Optional[Sequence[str]]) -> List[Fault]:
    """Parse a list of CLI specs (``None``/empty -> ``[]``)."""
    return [parse_fault(spec) for spec in (specs or [])]


class InjectedFaultError(RuntimeError):
    """Raised inside a worker by an ``error`` fault."""


class _Armed:
    """Mutable firing state of one fault (dataclass stays frozen)."""

    __slots__ = ("fault", "remaining")

    def __init__(self, fault: Fault):
        self.fault = fault
        self.remaining = fault.count

    def matches(self, op: str, window: int) -> bool:
        fault = self.fault
        if self.remaining <= 0:
            return False
        if fault.window is not None and fault.window != window:
            return False
        if fault.kind == "kill":
            return fault.point in ("ingest", "end_window") and op == fault.point
        return op == fault.op

    def matches_post_reply(self, op: str, window: int) -> bool:
        fault = self.fault
        return (
            self.remaining > 0
            and fault.kind == "kill"
            and fault.point == "checkpoint"
            and op == "checkpoint"
            and (fault.window is None or fault.window == window)
        )


def _exit_now(result_queue=None) -> None:  # pragma: no cover - exits the process
    if result_queue is not None:
        # Flush buffered replies so a post-reply kill cannot retract the
        # reply the coordinator is already owed.
        with contextlib.suppress(OSError, ValueError):
            result_queue.close()
            result_queue.join_thread()
    os._exit(KILL_EXIT_CODE)


class FaultInjector:
    """Worker-side fault evaluator (one per worker process).

    The worker loop calls :meth:`on_command` after dequeuing a command
    (kill/slow/error fire here), :meth:`should_drop_reply` before
    sending a reply, and :meth:`after_reply` after sending one
    (checkpoint-point kills fire here).
    """

    def __init__(self, faults: Sequence[Fault], shard_id: int):
        self._armed = [_Armed(f) for f in faults if f.shard == shard_id]

    def __bool__(self) -> bool:
        return bool(self._armed)

    def on_command(self, op: str, window: int) -> None:
        for armed in self._armed:
            if not armed.matches(op, window):
                continue
            kind = armed.fault.kind
            if kind == "kill":  # pragma: no cover - exits the worker
                _exit_now()
            if kind == "slow":
                armed.remaining -= 1
                time.sleep(armed.fault.seconds)
            elif kind == "error":
                armed.remaining -= 1
                raise InjectedFaultError(
                    f"injected error fault on {op!r} at window {window}"
                )

    def should_drop_reply(self, op: str, window: int) -> bool:
        for armed in self._armed:
            if armed.fault.kind == "drop_reply" and armed.matches(op, window):
                armed.remaining -= 1
                return True
        return False

    def after_reply(self, op: str, window: int, result_queue) -> None:
        for armed in self._armed:
            if armed.matches_post_reply(op, window):  # pragma: no cover - exits
                _exit_now(result_queue)
