"""Slim frequency summary of a merged X-Sketch (the SF-sketch split).

The replica tier never needs the *fat* half of the sketch — the Stage-1
admission counters and hash state that only the write path exercises.
What read queries want is the slim half: which items Stage 2 currently
tracks, how long each has lasted, and its per-window frequency ring.
``slim_summary`` extracts exactly that from a single-process
:class:`~repro.core.xsketch.XSketch` (typically the sharded runtime's
``merged_sketch()``), as a JSON-safe dict the publisher ships in every
DELTA/SNAPSHOT frame (docs/REPLICA.md).

Determinism: the tracked list is sorted by the item's string form — the
same canonical key the report stream uses — so two summaries of equal
engine state are equal objects, wire-byte for wire-byte.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


def slim_summary(sketch) -> Dict:
    """The slim read-side summary of one merged :class:`XSketch`.

    The ring read (``frequencies_ending_at``) and the weight use the
    sketch's own current window, mirroring
    :meth:`~repro.core.xsketch.XSketch.query_tracked_frequencies`.
    """
    window = sketch.window
    tracked = []
    for bucket in sketch.stage2.buckets:
        for cell in bucket:
            tracked.append({
                "item": str(cell.item),
                "w_str": cell.w_str,
                "weight": cell.weight(window),
                "frequencies": cell.frequencies_ending_at(window),
            })
    tracked.sort(key=lambda entry: entry["item"])
    return {
        "window": window,
        "tracked": tracked,
        "tracked_items": len(tracked),
        "stats": dataclasses.asdict(sketch.stats),
        "memory_bytes": sketch.memory_bytes,
    }
