"""Hash partitioning of the key space across shards.

The partitioner is the reason the sharded runtime needs no cross-shard
reconciliation on the hot path: every arrival of a key routes to the
same shard, so that shard's X-Sketch sees the key's *complete*
per-window frequency history and its counters are authoritative.
``merge()`` on the sketches exists as the fallback path (re-sharding,
checkpoint compaction), not as a per-window requirement.

The routing hash is drawn from the same deterministic seeded families
the sketches use (:mod:`repro.hashing.family`), salted so it is
independent of the sketch-internal hash functions — routing must not
correlate with counter placement, or each shard's sketch would see a
degenerate slice of its own hash range.  None of the families consults
``PYTHONHASHSEED`` or any per-process state, which is what makes the
assignment stable across worker processes and across restarts
(guarded by ``tests/test_hashing/test_cross_process.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import ConfigurationError
from repro.hashing.family import ItemId, make_family

#: Salt XOR-ed into the family seed so routing hashes are independent of
#: the sketch hashes built from the same base seed.
PARTITION_SEED_SALT = 0x53484152  # "SHAR"


class KeyPartitioner:
    """Deterministic item -> shard assignment.

    Args:
        n_shards: number of shards (>= 1).
        seed: base seed shared with the sketches; the partitioner salts
            it so its hash is independent of theirs.
        hash_family: name of the hash family (``bob``, ``murmur``,
            ``crc``); all are process-independent.
    """

    def __init__(self, n_shards: int, seed: int = 0, hash_family: str = "crc"):
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.seed = int(seed)
        self.hash_family = hash_family
        self._family = make_family(hash_family, (self.seed ^ PARTITION_SEED_SALT) & 0xFFFFFFFF)

    def shard_of(self, item: ItemId) -> int:
        """The shard owning ``item`` (stable for the partitioner's lifetime)."""
        return self._family.hash32(item, 0) % self.n_shards

    def split(self, items: Iterable[ItemId]) -> List[List[ItemId]]:
        """Partition a batch into per-shard sub-batches (order-preserving)."""
        parts: List[List[ItemId]] = [[] for _ in range(self.n_shards)]
        n = self.n_shards
        hash32 = self._family.hash32
        for item in items:
            parts[hash32(item, 0) % n].append(item)
        return parts

    def spec(self) -> Dict:
        """JSON-able description, embedded in sharded checkpoints."""
        return {
            "n_shards": self.n_shards,
            "seed": self.seed,
            "hash_family": self.hash_family,
        }

    @classmethod
    def from_spec(cls, spec: Dict) -> "KeyPartitioner":
        """Rebuild a partitioner from :meth:`spec` output."""
        return cls(
            n_shards=spec["n_shards"],
            seed=spec["seed"],
            hash_family=spec["hash_family"],
        )

    def __repr__(self) -> str:
        return (
            f"KeyPartitioner(n_shards={self.n_shards}, seed={self.seed}, "
            f"hash_family={self.hash_family!r})"
        )
