"""Shard worker: one X-Sketch served over a command queue.

:func:`shard_worker_main` is the target of each worker ``Process``.  It
is spawn-safe by construction: a plain module-level function whose
arguments are all picklable (the frozen :class:`XSketchConfig`, an
explicit integer seed, the two queues), so it works identically under
the ``spawn``, ``fork`` and ``forkserver`` start methods.  The child
rebuilds its hash family from the explicit seed — the families in
:mod:`repro.hashing` depend on nothing process-local, so a key hashes
identically in every worker and in the coordinator.

Each worker owns a *private* result queue (one coordinator reader, one
worker writer).  That isolation is what makes supervision safe: a
worker SIGKILLed mid-write can only poison its own reply pipe, and the
replacement worker starts on fresh queues, so stale or truncated
replies from a dead incarnation can never be misread as current ones.

Command protocol (tuples on ``command_queue``; replies on the worker's
``result_queue`` are ``(kind, shard_id, payload)``):

``("ingest", items)``
    Insert a batch into the current window.  No reply (pipelined).
``("end_window",)`` / ``("end_window", span_ctx)``
    Close the window; replies ``("end_window", shard, reports)``.  With
    a span context dict (the coordinator's wire
    :class:`~repro.obs.spans.SpanContext`, tracing on), the reply
    payload is instead ``{"reports": reports, "span": span_dict}`` — the
    worker times its own close and hands back one span for the
    coordinator to adopt.  Restart resends are always the bare form.
``("advance", target_window)``
    Recovery fast-forward: close empty windows until the sketch reaches
    ``target_window``.  Reports produced by those catch-up closes are
    discarded (the coordinator's merged stream already covers the
    windows); replies ``("advance", shard, {"closed", "reports_discarded"})``.
``("stats",)``
    Replies ``("stats", shard, WorkerReport)``.
``("metrics",)``
    Replies ``("metrics", shard, registry snapshot dict)``: the shard
    sketch's canonical metrics view (``repro.obs``), serialized with
    ``MetricsRegistry.snapshot()`` so it crosses the process boundary
    as plain picklable data and merges coordinator-side.
``("trace",)``
    Replies ``("trace", shard, events list)``: the worker recorder's
    trace-ring contents (empty when observability is off).
``("checkpoint",)``
    Replies ``("checkpoint", shard, snapshot dict)``.
``("stop",)``
    Replies ``("stopped", shard, None)`` and exits the loop.

Any exception escapes as ``("error", shard, traceback_text)`` followed
by worker exit; the coordinator converts it to
:class:`repro.errors.RuntimeShardError` (deterministic worker bugs are
*not* recoverable crashes — supervision never retries them).

``faults`` optionally arms a :class:`repro.runtime.faults.FaultInjector`
so tests and the CLI can crash, wedge or slow this worker at an exact,
reproducible instant.  Supervised replacements are always spawned
fault-free.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import XSketchConfig
from repro.core.engines import make_engine
from repro.core.serialize import restore_xsketch, snapshot_xsketch
from repro.core.xsketch import XSketchStats
from repro.runtime.faults import Fault, FaultInjector


@dataclass(frozen=True)
class WorkerReport:
    """Observability counters of one shard worker.

    ``busy_seconds`` is time spent inside sketch calls (insert loops and
    window transitions), excluding queue waits — per-shard throughput is
    ``items_ingested / busy_seconds``.  Counters are per *incarnation*:
    a supervised restart resets them (the coordinator's routing counters
    and loss estimates keep the cross-restart truth).
    """

    shard_id: int
    items_ingested: int
    batches: int
    windows: int
    busy_seconds: float
    stats: XSketchStats

    @property
    def mops(self) -> float:
        """Millions of insert operations per second of sketch work."""
        if self.busy_seconds <= 0:
            return float("inf")
        return self.items_ingested / self.busy_seconds / 1e6


def shard_worker_main(
    shard_id: int,
    config: XSketchConfig,
    seed: int,
    command_queue,
    result_queue,
    snapshot: Optional[dict] = None,
    observability: bool = False,
    faults: Optional[Sequence[Fault]] = None,
    engine: str = "xsketch",
) -> None:
    """Run one shard's X-Sketch until a ``stop`` command arrives.

    ``observability=True`` attaches a live ``repro.obs.Recorder`` (own
    registry + trace ring) to the shard sketch; the extra histograms and
    trace events are then available over the ``metrics`` / ``trace``
    commands.  Off by default: the sketch runs with the no-op recorder
    and the ``metrics`` reply still carries the exact decision counters
    (synced from plain ints at collect time).

    ``engine`` selects the ingest representation for a *fresh* shard
    (:mod:`repro.core.engines`); a restart restores whatever engine the
    snapshot's ``variant`` tag names, so a respawned shard always
    continues with the engine it crashed with.
    """
    try:
        injector = FaultInjector(faults, shard_id) if faults else None
        if injector is not None and not injector:
            injector = None
        recorder = None
        if observability:
            from repro.obs.recorder import Recorder
            from repro.obs.registry import MetricsRegistry
            from repro.obs.trace import TraceRing

            recorder = Recorder(MetricsRegistry(), trace=TraceRing())
        if snapshot is not None:
            sketch = restore_xsketch(snapshot, seed=seed, recorder=recorder)
        else:
            sketch = make_engine(config, seed=seed, engine=engine, recorder=recorder)
        items_ingested = 0
        batches = 0
        busy_seconds = 0.0
        perf_counter = time.perf_counter

        # Fault matching is by the sketch window *at command receipt*
        # (processing the command may advance it, e.g. end_window).
        window_at_receipt = 0

        def reply(kind, op, payload) -> None:
            if injector is not None and injector.should_drop_reply(
                op, window_at_receipt
            ):
                return
            result_queue.put((kind, shard_id, payload))
            if injector is not None:
                injector.after_reply(op, window_at_receipt, result_queue)

        while True:
            command = command_queue.get()
            op = command[0]
            window_at_receipt = sketch.window
            if injector is not None:
                injector.on_command(op, window_at_receipt)
            if op == "ingest":
                items = command[1]
                start = perf_counter()
                sketch.ingest_batch(items)
                busy_seconds += perf_counter() - start
                items_ingested += len(items)
                batches += 1
            elif op == "end_window":
                span_ctx = command[1] if len(command) > 1 else None
                start = perf_counter()
                reports = sketch.end_window()
                elapsed = perf_counter() - start
                busy_seconds += elapsed
                if span_ctx is not None:
                    # The worker has no synced wall clock; the span
                    # starts at the coordinator's dispatch timestamp
                    # (span_ctx["ts"]) and the duration is its own
                    # perf-counter measurement.  Built inline instead of
                    # through a Tracer — one dict per window close.
                    from repro.obs.spans import new_span_id

                    span = {
                        "name": "shard.end_window",
                        "trace_id": span_ctx["trace_id"],
                        "span_id": new_span_id(),
                        "parent_id": span_ctx["span_id"],
                        "ts": round(span_ctx["ts"], 6),
                        "dur": round(elapsed, 6),
                        "proc": f"shard-{shard_id}",
                        "attrs": {"shard": shard_id, "window": window_at_receipt},
                    }
                    reply("end_window", op, {"reports": reports, "span": span})
                else:
                    reply("end_window", op, reports)
            elif op == "advance":
                target = command[1]
                base = len(sketch._reports)
                closed = 0
                while sketch.window < target:
                    sketch.end_window()
                    closed += 1
                # Catch-up closes happen on windows the coordinator has
                # already merged; their reports are stale duplicates and
                # must not linger in sketch state (future snapshots
                # would resurrect them).
                discarded = len(sketch._reports) - base
                del sketch._reports[base:]
                reply("advance", op, {"closed": closed, "reports_discarded": discarded})
            elif op == "stats":
                report = WorkerReport(
                    shard_id=shard_id,
                    items_ingested=items_ingested,
                    batches=batches,
                    windows=sketch.window,
                    busy_seconds=busy_seconds,
                    stats=sketch.stats,
                )
                reply("stats", op, report)
            elif op == "metrics":
                registry = sketch.metrics_registry()
                reply("metrics", op, registry.snapshot())
            elif op == "trace":
                trace = getattr(sketch.recorder, "trace", None)
                events = trace.events() if trace is not None else []
                reply("trace", op, events)
            elif op == "checkpoint":
                reply("checkpoint", op, snapshot_xsketch(sketch))
            elif op == "stop":
                reply("stopped", op, None)
                return
            else:
                raise ValueError(f"unknown worker command {op!r}")
    except Exception:
        # Boundary catch: report the failure to the coordinator (which
        # raises RuntimeShardError on this reply), then re-raise so the
        # worker process dies loudly with a non-zero exit code instead
        # of pretending the command stream ended cleanly.
        result_queue.put(("error", shard_id, traceback.format_exc()))
        raise
