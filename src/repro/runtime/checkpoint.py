"""Shard-aware checkpointing of the sharded runtime.

Checkpoint layout (a directory)::

    checkpoint/
        manifest.json     runtime-level state: format version, shard
                          count, seed, window, partitioner spec and the
                          coordinator's routing counters
        shard-00.json     per-shard X-Sketch snapshot
        shard-01.json     (repro.core.serialize format, tagged with its
        ...                shard id and the partitioner spec)

Each shard file is a complete, self-describing
:func:`repro.core.serialize.snapshot_xsketch` snapshot, so a single
shard can also be restored on its own with
:func:`repro.core.serialize.restore_xsketch` (e.g. to inspect or to
compact: restoring every shard and :func:`repro.runtime.mergeable.merge_all`-ing
them yields the single-process equivalent sketch).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.reports import SimplexReport
from repro.core.xsketch import report_order
from repro.errors import ConfigurationError
from repro.runtime.partition import KeyPartitioner

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def _shard_filename(shard_id: int) -> str:
    return f"shard-{shard_id:02d}.json"


def save_sharded_checkpoint(sharded, directory: Union[str, Path]) -> Path:
    """Write ``sharded``'s full state under ``directory`` (created if needed).

    Must be called at a window boundary (right after ``flush_window``);
    a non-empty insert buffer is working state, not sketch state.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    snapshots = sharded._collect_snapshots()
    shard_files = []
    for shard_id, snapshot in enumerate(snapshots):
        snapshot = dict(snapshot)
        snapshot["shard"] = {
            "shard_id": shard_id,
            "partitioner": sharded.partitioner.spec(),
        }
        filename = _shard_filename(shard_id)
        (directory / filename).write_text(json.dumps(snapshot))
        shard_files.append(filename)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "sharded-xsketch",
        "n_shards": sharded.n_shards,
        "engine": sharded.engine,
        "seed": sharded.seed,
        "window": sharded.window,
        "partitioner": sharded.partitioner.spec(),
        "items_routed": list(sharded.items_routed),
        "batches_sent": list(sharded.batches_sent),
        "shards": shard_files,
    }
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
    return directory


def load_sharded_checkpoint(
    directory: Union[str, Path],
    backend: str = "process",
    **kwargs,
):
    """Rebuild a :class:`ShardedXSketch` from a checkpoint directory.

    ``backend`` and extra keyword arguments (``mp_context``,
    ``batch_size``, ...) configure the new runtime; sketch state, the
    window counter, routing counters and the report stream come from
    the checkpoint.
    """
    from repro.fitting.simplex import SimplexTask
    from repro.config import XSketchConfig
    from repro.runtime.sharded import ShardedXSketch

    directory = Path(directory)
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    if manifest.get("format_version") != FORMAT_VERSION or manifest.get("kind") != "sharded-xsketch":
        raise ConfigurationError(
            f"not a sharded-xsketch checkpoint (format "
            f"{manifest.get('format_version')!r}, kind {manifest.get('kind')!r})"
        )
    snapshots = [
        json.loads((directory / filename).read_text())
        for filename in manifest["shards"]
    ]
    if len(snapshots) != manifest["n_shards"]:
        raise ConfigurationError(
            f"manifest lists {manifest['n_shards']} shards, found {len(snapshots)}"
        )
    task = SimplexTask(**snapshots[0]["task"])
    config = XSketchConfig(task=task, **snapshots[0]["config"])
    partitioner = KeyPartitioner.from_spec(manifest["partitioner"])
    sharded = ShardedXSketch(
        config,
        n_shards=manifest["n_shards"],
        seed=manifest["seed"],
        backend=backend,
        snapshots=snapshots,
        engine=manifest.get("engine", "xsketch"),
        **kwargs,
    )
    sharded.partitioner = partitioner
    sharded.window = manifest["window"]
    sharded.items_routed = list(manifest["items_routed"])
    sharded.batches_sent = list(manifest["batches_sent"])
    # The coordinator's merged report stream is the union of the shard
    # streams; rebuild it rather than persisting it twice.
    reports = []
    for snapshot in snapshots:
        for record in snapshot["reports"]:
            record = dict(record)
            record["coefficients"] = tuple(record["coefficients"])
            reports.append(SimplexReport(**record))
    sharded._reports = sorted(reports, key=report_order)
    return sharded
