"""Sharded parallel streaming runtime.

One Python process is the throughput ceiling of every engine in
:mod:`repro.core`.  This subsystem lifts it the way Hokusai-style
aggregatable sketches do: sketch state gained ``merge()`` everywhere
(see :class:`Mergeable`), items are hash-partitioned so each key lives
on exactly one shard (:class:`KeyPartitioner`), and a coordinator fans
window batches out to ``N`` worker processes and folds their per-window
simplex reports back together (:class:`ShardedXSketch`).

Because the partitioner routes every arrival of a key to the same
shard, per-key counters never need cross-shard reconciliation on the
hot path; ``merge()`` is the documented *fallback* path used for
re-sharding and checkpoint compaction
(:meth:`ShardedXSketch.merged_sketch`).
"""

from repro.runtime.faults import Fault, FaultInjector, parse_fault, parse_faults
from repro.runtime.mergeable import Mergeable, merge_all
from repro.runtime.partition import KeyPartitioner
from repro.runtime.sharded import ShardedStats, ShardedXSketch, ShardStats
from repro.runtime.worker import WorkerReport
from repro.runtime.checkpoint import (
    load_sharded_checkpoint,
    save_sharded_checkpoint,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "KeyPartitioner",
    "Mergeable",
    "ShardStats",
    "ShardedStats",
    "ShardedXSketch",
    "WorkerReport",
    "load_sharded_checkpoint",
    "merge_all",
    "parse_fault",
    "parse_faults",
    "save_sharded_checkpoint",
]
