"""The ``Mergeable`` protocol: sketch state that folds together.

Every counter-array sketch in :mod:`repro.sketch` (CM, CU, Count,
Tower and the windowed Stage-1 variants) and the X-Sketch stages
implement ``merge(other)``: fold ``other``'s state into ``self`` and
return ``self``.  Merge semantics per structure:

================  =======================================================
structure         merged state vs. one sketch over the whole stream
================  =======================================================
CM, Count         exact (counter-wise addition commutes with insertion)
CU                upper bound (never below the single-pass estimate or
                  the true count)
Tower (CM rule)   exact up to saturation; overflow markers are preserved
Tower (CU rule)   upper bound, overflow markers preserved
Windowed CM/CU/   as their flat counterparts, per window slot
Tower
Windowed Cold     bounded (threshold-crossing mass may sit in layer 1)
Windowed LogLog   register-wise max (standard log-register approximation)
Stage 2           weight election on bucket overflow (deterministic
                  analogue of the paper's replacement rule)
================  =======================================================

Merging requires both sides to be built from the same geometry and the
same seed-derived hash family; implementations raise
:class:`repro.errors.MergeError` otherwise.
"""

from __future__ import annotations

from typing import TypeVar

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object

    def runtime_checkable(cls):
        return cls


M = TypeVar("M", bound="Mergeable")


@runtime_checkable
class Mergeable(Protocol):
    """Structural type of mergeable sketch state."""

    def merge(self, other):
        """Fold ``other`` into ``self``; return ``self``.

        Raises :class:`repro.errors.MergeError` when the two sides are
        not merge-compatible (different geometry, seed or type).
        """


def merge_all(first: M, *others: M) -> M:
    """Left-fold ``merge`` over several sketches; returns ``first`` mutated.

    ``merge_all(a, b, c)`` is ``a.merge(b).merge(c)`` — the compaction
    idiom of the sharded runtime's checkpoint path.
    """
    merged = first
    for other in others:
        merged = merged.merge(other)
    return merged
