"""Frequency-estimation sketches.

Everything the paper relies on or compares against, implemented from
scratch on the shared :class:`CounterArray` / :class:`HashFamily`
substrates:

* simple sketches -- CM [23], CU [37], Count [38], CSM [39];
* TowerSketch [26] with both CM- and CU-style updates and overflow
  (saturation) semantics, the structure of X-Sketch's Stage 1;
* Cold Filter [40] and LogLog Filter [41], the Figure-9 competitors;
* the advanced related-work estimators PyramidSketch [44],
  MV-Sketch [45] and ElasticSketch [46];
* windowed variants of all Stage-1 candidates, where every logical
  counter carries ``s`` per-window sub-counters (Section III-D1).
"""

from repro.sketch.counters import CounterArray
from repro.sketch.base import FrequencySketch
from repro.sketch.cm import CMSketch
from repro.sketch.cu import CUSketch
from repro.sketch.count import CountSketch
from repro.sketch.csm import CSMSketch
from repro.sketch.tower import TowerSketch, tower_level_widths
from repro.sketch.coldfilter import ColdFilter
from repro.sketch.loglogfilter import LogLogFilter
from repro.sketch.pyramid import PyramidSketch
from repro.sketch.mv import MVSketch
from repro.sketch.elastic import ElasticSketch
from repro.sketch.spacesaving import SpaceSaving
from repro.sketch.vectorized_tower import VectorizedTower
from repro.sketch.windowed import (
    WINDOWED_STRUCTURES,
    WindowedColdFilter,
    WindowedCM,
    WindowedCU,
    WindowedFilter,
    WindowedLogLog,
    WindowedTower,
    make_windowed_filter,
)

__all__ = [
    "CMSketch",
    "CSMSketch",
    "CUSketch",
    "ColdFilter",
    "CountSketch",
    "CounterArray",
    "ElasticSketch",
    "FrequencySketch",
    "LogLogFilter",
    "MVSketch",
    "PyramidSketch",
    "SpaceSaving",
    "TowerSketch",
    "VectorizedTower",
    "WINDOWED_STRUCTURES",
    "WindowedCM",
    "WindowedCU",
    "WindowedColdFilter",
    "WindowedFilter",
    "WindowedLogLog",
    "WindowedTower",
    "make_windowed_filter",
    "tower_level_widths",
]
