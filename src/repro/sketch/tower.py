"""TowerSketch (Yang et al. [26]), the structure behind X-Sketch's Stage 1.

``d`` levels share the memory budget equally; level ``i`` (1-based) uses
counters of ``2**(i+1)`` bits, so lower levels have many small counters and
higher levels few large ones.  A counter saturating at its maximum value
becomes an *overflow marker*: it is ignored at query time (the true count
escaped its range), so frequent items are effectively tracked by the large
counters while infrequent items enjoy the low collision rate of the many
small ones.  Supports both CM-style updates (increment every level) and
CU-style (increment only the minimal unsaturated levels).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId
from repro.obs.recorder import NULL_RECORDER
from repro.sketch.base import FrequencySketch
from repro.sketch.counters import CounterArray


def tower_level_widths(d: int) -> List[int]:
    """Counter bit-widths per level: ``2**(i+1)`` for level ``i = 1..d``.

    Matches the paper's Stage-1 description (4-bit bottom array up to a
    ``2**(d+1)``-bit top array).
    """
    if d <= 0:
        raise ConfigurationError(f"d must be positive, got {d}")
    return [1 << (i + 1) for i in range(1, d + 1)]


class TowerSketch(FrequencySketch):
    """TowerSketch over a byte budget.

    Args:
        memory_bytes: total counter memory, split equally over levels.
        d: number of levels (and hash functions).
        update_rule: ``"cm"`` or ``"cu"``.
        level_bits: optional explicit per-level widths (defaults to
            :func:`tower_level_widths`).
        recorder: observability recorder; with the default no-op
            recorder the insert path is byte-identical to an
            uninstrumented tower, with a live one every counter that
            crosses into saturation ticks ``tower_overflow_total``.
    """

    def __init__(
        self,
        memory_bytes: int,
        d: int = 3,
        update_rule: str = "cm",
        level_bits: Sequence[int] = None,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        recorder=None,
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        if update_rule not in ("cm", "cu"):
            raise ConfigurationError(f"update_rule must be 'cm' or 'cu', got {update_rule!r}")
        bits = list(level_bits) if level_bits is not None else tower_level_widths(d)
        if len(bits) != d:
            raise ConfigurationError(f"level_bits must have {d} entries, got {len(bits)}")
        per_level = memory_bytes / d
        self.levels: List[CounterArray] = []
        for width_bits in bits:
            n_counters = int(per_level * 8 // width_bits)
            if n_counters <= 0:
                raise ConfigurationError(
                    f"memory_bytes={memory_bytes} too small for a {d}-level tower"
                )
            self.levels.append(CounterArray(n_counters, width_bits))
        self.d = d
        self.update_rule = update_rule
        recorder = recorder if recorder is not None else NULL_RECORDER
        self.recorder = recorder
        # With the no-op recorder _obs is None and insert() takes the
        # original unobserved branches (zero added work per arrival).
        self._obs = recorder if recorder.enabled else None
        self._c_overflow = recorder.counter(
            "tower_overflow_total",
            "tower counters that crossed into their overflow marker",
        )

    def _positions(self, item: ItemId) -> List[int]:
        family = self.family
        return [family.hash32(item, i) % level.size for i, level in enumerate(self.levels)]

    def insert(self, item: ItemId, count: int = 1) -> None:
        positions = self._positions(item)
        if self.update_rule == "cm":
            if self._obs is not None:
                for level, pos in zip(self.levels, positions):
                    saturated_before = level.is_saturated(pos)
                    level.increment(pos, count)
                    if not saturated_before and level.is_saturated(pos):
                        self._c_overflow.inc()
                return
            for level, pos in zip(self.levels, positions):
                level.increment(pos, count)
            return
        # CU: raise only the minimal *unsaturated* readings up to
        # min + count.  Saturated counters are overflow markers -- they
        # carry no information and must not take part in the minimum
        # (a saturated small counter would otherwise pin the minimum
        # below the live larger counters forever).
        readings = []
        minimum = None
        for level, pos in zip(self.levels, positions):
            if level.is_saturated(pos):
                readings.append(None)
                continue
            value = level.get(pos)
            readings.append(value)
            if minimum is None or value < minimum:
                minimum = value
        if minimum is None:
            return  # every level overflowed; the count escaped the tower
        target = minimum + count
        for level, pos, value in zip(self.levels, positions, readings):
            if value is not None and value < target:
                if target >= level.max_value and self._obs is not None:
                    self._c_overflow.inc()
                level.set(pos, min(target, level.max_value))

    def query(self, item: ItemId) -> int:
        """Minimum over unsaturated levels; if all overflow, the largest cap."""
        best = None
        largest_cap = 0
        for level, pos in zip(self.levels, self._positions(item)):
            if level.is_saturated(pos):
                largest_cap = max(largest_cap, level.max_value)
                continue
            value = level.get(pos)
            if best is None or value < best:
                best = value
        return best if best is not None else largest_cap

    def merge(self, other: "TowerSketch") -> "TowerSketch":
        """Fold ``other`` into this tower (saturating counter-wise add).

        Saturating addition preserves overflow markers: a counter that
        overflowed on either side stays an overflow marker afterwards.
        Under the CM rule the merge is exact (a merged tower equals one
        tower over the concatenated stream); under the CU rule the
        merged counters upper-bound the single-pass state, so queries
        remain one-sided overestimates.
        """
        if not isinstance(other, TowerSketch):
            raise MergeError(f"cannot merge TowerSketch with {type(other).__name__}")
        if self.d != other.d or self.update_rule != other.update_rule or any(
            a.size != b.size or a.bits != b.bits for a, b in zip(self.levels, other.levels)
        ):
            raise MergeError("tower geometries or update rules differ")
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed})"
            )
        for mine, theirs in zip(self.levels, other.levels):
            mine.merge(theirs)
        return self

    def clear(self) -> None:
        for level in self.levels:
            level.clear()

    def saturated_counters(self) -> int:
        """Counters currently sitting at their overflow marker (a scan;
        cheap enough per window close, not meant for the per-item path)."""
        return sum(
            1
            for level in self.levels
            for value in level.values
            if value == level.max_value
        )

    @property
    def memory_bytes(self) -> float:
        return sum(level.memory_bytes for level in self.levels)
