"""MV-Sketch (Tang, Huang & Lee, INFOCOM'19 [45]).

A fast *invertible* sketch for heavy flows (related work, Section
II-B2).  Each bucket keeps a total counter ``V``, a candidate key ``K``
and an indicator ``C`` maintained with the Boyer-Moore majority vote:
arrivals of the candidate raise ``C``, others lower it, and a depleted
indicator hands the candidacy over.  Heavy flows end up as candidates,
so the sketch can be *decoded* (listing probable heavy flows) without
enumerating the key space.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.base import FrequencySketch

#: Accounted bytes per bucket: V (4) + C (4) + K (4, a key fingerprint).
BUCKET_BYTES = 12


class _Bucket:
    __slots__ = ("total", "key", "indicator")

    def __init__(self):
        self.total = 0
        self.key: ItemId = None
        self.indicator = 0


class MVSketch(FrequencySketch):
    """Majority-vote sketch over a byte budget.

    Args:
        memory_bytes: bucket memory (12 bytes each, split over d rows).
        d: rows / hash functions.
    """

    def __init__(
        self,
        memory_bytes: int,
        d: int = 3,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        width = int(memory_bytes / d // BUCKET_BYTES)
        if width <= 0:
            raise ConfigurationError(f"memory_bytes={memory_bytes} too small for an MV-Sketch")
        self.d = d
        self.width = width
        self.rows: List[List[_Bucket]] = [
            [_Bucket() for _ in range(width)] for _ in range(d)
        ]

    def _buckets(self, item: ItemId) -> List[_Bucket]:
        return [
            self.rows[row][self.family.hash32(item, row) % self.width] for row in range(self.d)
        ]

    def insert(self, item: ItemId, count: int = 1) -> None:
        for bucket in self._buckets(item):
            bucket.total += count
            if bucket.key == item:
                bucket.indicator += count
            elif bucket.indicator >= count:
                bucket.indicator -= count
            else:
                # candidacy flips to the newcomer (Boyer-Moore step)
                bucket.key = item
                bucket.indicator = count - bucket.indicator

    def query(self, item: ItemId) -> int:
        estimate = None
        for bucket in self._buckets(item):
            if bucket.key == item:
                value = (bucket.total + bucket.indicator) // 2
            else:
                value = (bucket.total - bucket.indicator) // 2
            if estimate is None or value < estimate:
                estimate = value
        return max(0, estimate)

    def heavy_candidates(self, threshold: int) -> Dict[ItemId, int]:
        """Decode: candidate keys whose estimate reaches ``threshold``.

        This is the invertibility that plain CM/CU lacks -- the reason
        MV-Sketch exists.
        """
        found: Dict[ItemId, int] = {}
        for row in self.rows:
            for bucket in row:
                if bucket.key is None:
                    continue
                estimate = self.query(bucket.key)
                if estimate >= threshold:
                    found[bucket.key] = estimate
        return found

    def merge(self, other: "MVSketch") -> "MVSketch":
        """Fold ``other`` into this sketch (Boyer-Moore vote combine).

        Totals add exactly.  Candidates combine with the pairwise
        majority-vote rule the insert path already uses: same key —
        indicators add; different keys — the larger indicator keeps the
        candidacy and is reduced by the smaller (MV-Sketch's published
        merge).  The majority-item guarantee survives: any flow holding
        a true majority of a bucket's combined total ends up its
        candidate.
        """
        if not isinstance(other, MVSketch):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.d != other.d or self.width != other.width:
            raise MergeError(
                f"MV geometry differs: d={self.d} w={self.width} "
                f"vs d={other.d} w={other.width}"
            )
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "buckets would not align"
            )
        for mine_row, theirs_row in zip(self.rows, other.rows):
            for mine, theirs in zip(mine_row, theirs_row):
                mine.total += theirs.total
                if theirs.key is None:
                    continue
                if mine.key == theirs.key:
                    mine.indicator += theirs.indicator
                elif mine.indicator >= theirs.indicator:
                    mine.indicator -= theirs.indicator
                else:
                    mine.key = theirs.key
                    mine.indicator = theirs.indicator - mine.indicator
        return self

    def clear(self) -> None:
        for row in self.rows:
            for bucket in row:
                bucket.total = 0
                bucket.key = None
                bucket.indicator = 0

    @property
    def memory_bytes(self) -> float:
        return float(self.d * self.width * BUCKET_BYTES)
