"""The CSM sketch (Counter Sum estimation Method, Li, Chen & Ling [39]).

Randomized counter sharing: each arrival increments *one* of the item's
``d`` mapped counters, chosen uniformly at random.  The query sums the
``d`` counters and subtracts the expected contribution of other items,
``d * N / w`` where ``N`` is the total insertions and ``w`` the row width.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.base import FrequencySketch
from repro.sketch.counters import CounterArray


class CSMSketch(FrequencySketch):
    """CSM sketch over a byte budget."""

    def __init__(
        self,
        memory_bytes: int,
        d: int = 3,
        counter_bits: int = 32,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        rng: random.Random = None,
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        if d <= 0:
            raise ConfigurationError(f"d must be positive, got {d}")
        width = int(memory_bytes / d * 8 // counter_bits)
        if width <= 0:
            raise ConfigurationError(f"memory_bytes={memory_bytes} too small for a CSM sketch")
        self.d = d
        self.width = width
        self.arrays = [CounterArray(width, counter_bits) for _ in range(d)]
        self.total_insertions = 0
        self._rng = rng if rng is not None else random.Random(seed)

    def insert(self, item: ItemId, count: int = 1) -> None:
        for _ in range(count):
            row = self._rng.randrange(self.d)
            pos = self.family.hash32(item, row) % self.width
            self.arrays[row].increment(pos, 1)
            self.total_insertions += 1

    def query(self, item: ItemId) -> int:
        total = 0
        for row in range(self.d):
            pos = self.family.hash32(item, row) % self.width
            total += self.arrays[row].get(pos)
        noise = self.d * self.total_insertions / (self.d * self.width)
        return max(0, round(total - noise))

    def merge(self, other: "CSMSketch") -> "CSMSketch":
        """Fold ``other`` into this sketch (counter-wise add).

        Exact in the same sense as a single CSM fed both substreams:
        each arrival still landed in one uniformly-chosen row, and the
        noise correction uses the summed ``total_insertions``, so the
        merged estimator is the estimator of the concatenated stream.
        """
        if not isinstance(other, CSMSketch):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.d != other.d or self.width != other.width:
            raise MergeError(
                f"CSM geometry differs: d={self.d} w={self.width} "
                f"vs d={other.d} w={other.width}"
            )
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "counters would not align"
            )
        for mine, theirs in zip(self.arrays, other.arrays):
            mine.merge(theirs)
        self.total_insertions += other.total_insertions
        return self

    def clear(self) -> None:
        for array in self.arrays:
            array.clear()
        self.total_insertions = 0

    @property
    def memory_bytes(self) -> float:
        return sum(array.memory_bytes for array in self.arrays)
