"""Fixed-width saturating counter arrays.

All sketches account memory in terms of counters of a declared bit width.
A :class:`CounterArray` stores values in a plain Python list (fastest for
the per-item hot loops) while enforcing the width: a counter saturates at
``2**bits - 1`` and stays there.  In tower semantics the saturated value
doubles as the *overflow marker*, so the array exposes it explicitly.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import ConfigurationError, MergeError


class CounterArray:
    """``size`` saturating unsigned counters of ``bits`` bits each."""

    __slots__ = ("bits", "size", "max_value", "_values")

    def __init__(self, size: int, bits: int = 32):
        if size <= 0:
            raise ConfigurationError(f"counter array size must be positive, got {size}")
        if not 1 <= bits <= 64:
            raise ConfigurationError(f"counter width must be 1..64 bits, got {bits}")
        self.size = size
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self._values: List[int] = [0] * size

    @property
    def memory_bytes(self) -> float:
        """Accounted memory of the array (bit-exact, may be fractional)."""
        return self.size * self.bits / 8.0

    @property
    def values(self) -> List[int]:
        """The backing list (shared, not a copy).

        Exposed for the hot loops of the windowed structures; treat it as
        read-only outside this package -- writes bypass saturation.
        """
        return self._values

    def get(self, index: int) -> int:
        return self._values[index]

    def set(self, index: int, value: int) -> None:
        """Store ``value`` clamped into the counter's range."""
        if value < 0:
            raise ValueError(f"counters are unsigned, got {value}")
        self._values[index] = min(value, self.max_value)

    def increment(self, index: int, amount: int = 1) -> int:
        """Add ``amount`` with saturation; returns the new value."""
        new = self._values[index] + amount
        if new > self.max_value:
            new = self.max_value
        self._values[index] = new
        return new

    def is_saturated(self, index: int) -> bool:
        """True when the counter sits at its overflow marker."""
        return self._values[index] == self.max_value

    def merge(self, other: "CounterArray") -> None:
        """Add ``other``'s counters into this array, saturating per entry.

        Saturation makes the merge respect tower overflow semantics: a
        counter that is an overflow marker on either side stays at the
        marker value after the merge (``min(a + b, max)`` is ``max``
        whenever ``a`` or ``b`` is).
        """
        if self.size != other.size or self.bits != other.bits:
            raise MergeError(
                f"counter arrays differ: {self.size}x{self.bits}b vs "
                f"{other.size}x{other.bits}b"
            )
        mv = self.max_value
        mine = self._values
        theirs = other._values
        self._values = [min(a + b, mv) for a, b in zip(mine, theirs)]

    def clear(self) -> None:
        size = self.size
        self._values = [0] * size

    def clear_stride(self, offset: int, stride: int) -> None:
        """Zero every ``stride``-th counter starting at ``offset``.

        Used by windowed structures to wipe one window slot across all
        logical counters in a single slice assignment.
        """
        count = len(range(offset, self.size, stride))
        self._values[offset::stride] = [0] * count

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"CounterArray(size={self.size}, bits={self.bits})"
