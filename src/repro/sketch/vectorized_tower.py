"""Numpy-backed windowed TowerSketch for the vectorized engine.

Semantically the CM-rule :class:`~repro.sketch.windowed.WindowedTower`
(same level widths, same saturation-as-overflow reads), but counters
live in numpy matrices of shape ``(n_logical, s)`` and every operation
takes a *batch* of items: bulk updates via ``np.add.at`` and batched
s-window queries as fancy-indexed gathers.  Saturating batch adds equal
sequential saturating adds (add-then-clip), so results match the scalar
structure exactly under the CM rule; the CU rule is approximated
order-independently (documented on :meth:`bulk_insert`).

Position hashing is batched too.  For the default ``crc`` family the
seed folds out of the CRC via its affine property --
``crc32(msg, seed) == crc32(msg, 0) ^ C(seed, len(msg))`` where
``C(seed, n) = crc32(0^n, seed) ^ crc32(0^n, 0)`` -- so a batch costs
one C-speed ``zlib.crc32`` call per item plus a vectorized xor /
finalization / modulo per level, bit-identical to the scalar
:meth:`~repro.hashing.family.CrcHashFamily.hash32`.  Other families
fall back to the per-item loop.  Computed rows are memoized in a
bounded LRU cache (:attr:`DEFAULT_POS_CACHE_CAPACITY` items by
default); hit/miss/eviction counts surface as the
``vectorized_hash_cache_*`` metrics via :meth:`cache_info`.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import CrcHashFamily, HashFamily, ItemId, encode_item, make_family
from repro.sketch.tower import tower_level_widths

#: Sentinel larger than any counter value, used to mask overflow reads.
_BIG = np.int64(1) << 40

#: Default bound on the position cache (distinct items memoized).  At
#: ``d=3`` a full cache is ~a few MB of tuples -- bounded working
#: storage, not sketch state, so it is not part of ``memory_bytes``.
DEFAULT_POS_CACHE_CAPACITY = 65536

_MASK32 = np.uint64(0xFFFFFFFF)
_MIX = np.uint64(0x85EBCA6B)


class VectorizedTower:
    """Batch-oriented windowed tower.

    Args:
        memory_bytes: budget, split equally over ``d`` levels of
            ``2**(i+1)``-bit counters with ``s`` sub-counters each.
        s: sub-counters (recent windows) per logical counter.
        d: number of levels / hash functions.
        update_rule: ``"cm"`` (exact) or ``"cu"`` (order-independent
            approximation).
        pos_cache_capacity: bound on the memoized position rows; least
            recently used entries are evicted past it (0 disables
            caching entirely).
    """

    def __init__(
        self,
        memory_bytes: int,
        s: int,
        d: int = 3,
        update_rule: str = "cm",
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        pos_cache_capacity: int = DEFAULT_POS_CACHE_CAPACITY,
    ):
        if s <= 0:
            raise ConfigurationError(f"s must be positive, got {s}")
        if update_rule not in ("cm", "cu"):
            raise ConfigurationError(f"update_rule must be 'cm' or 'cu', got {update_rule!r}")
        if pos_cache_capacity < 0:
            raise ConfigurationError(
                f"pos_cache_capacity must be >= 0, got {pos_cache_capacity}"
            )
        self.s = s
        self.d = d
        self.update_rule = update_rule
        self.family = family if family is not None else make_family(hash_family, seed)
        per_level = memory_bytes / d
        self.levels: List[np.ndarray] = []
        self.max_values: List[int] = []
        self.level_counters: List[int] = []
        for bits in tower_level_widths(d):
            n_logical = int(per_level * 8 // (bits * s))
            if n_logical <= 0:
                raise ConfigurationError(
                    f"memory_bytes={memory_bytes} too small for a vectorized tower with s={s}"
                )
            self.levels.append(np.zeros((n_logical, s), dtype=np.int64))
            self.max_values.append((1 << bits) - 1)
            self.level_counters.append(n_logical)
        self.pos_cache_capacity = pos_cache_capacity
        self._pos_cache: Dict[ItemId, Tuple[int, ...]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: per-(level, byte-length) CRC seed constants for batched hashing
        self._crc_consts: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # position hashing

    def positions(self, items: Sequence[ItemId]) -> np.ndarray:
        """Hash positions per level for a batch of items: ``(n, d)``."""
        n = len(items)
        out = np.empty((n, self.d), dtype=np.int64)
        if n == 0:
            return out
        cache = self._pos_cache
        capacity = self.pos_cache_capacity
        miss_items: List[ItemId] = []
        miss_rows: List[int] = []
        hits = 0
        for row, item in enumerate(items):
            cached = cache.get(item)
            if cached is None:
                miss_items.append(item)
                miss_rows.append(row)
            else:
                out[row] = cached
                # refresh recency so hot items survive eviction (LRU)
                cache[item] = cache.pop(item)
                hits += 1
        self.cache_hits += hits
        self.cache_misses += len(miss_items)
        if miss_items:
            hashed = self._hash_rows(miss_items)
            out[miss_rows] = hashed
            if capacity > 0:
                for item, row in zip(miss_items, hashed):
                    cache[item] = tuple(int(v) for v in row)
                overflow = len(cache) - capacity
                if overflow > 0:
                    iterator = iter(cache)
                    for key in [next(iterator) for _ in range(overflow)]:
                        del cache[key]
                    self.cache_evictions += overflow
        return out

    def _hash_rows(self, items: Sequence[ItemId]) -> np.ndarray:
        """Fresh position rows for ``items`` (no cache involvement)."""
        if isinstance(self.family, CrcHashFamily):
            return self._hash_rows_crc(items)
        family = self.family
        counters = self.level_counters
        d = self.d
        rows = [
            tuple(family.hash32(item, i) % counters[i] for i in range(d))
            for item in items
        ]
        return np.asarray(rows, dtype=np.int64).reshape(len(rows), d)

    def _crc_const(self, index: int, length: int) -> int:
        """``crc32(0^length, derived_seed) ^ crc32(0^length, 0)``, memoized."""
        key = (index, length)
        const = self._crc_consts.get(key)
        if const is None:
            zeros = b"\x00" * length
            const = zlib.crc32(zeros, self.family._derive_seed(index)) ^ zlib.crc32(zeros)
            self._crc_consts[key] = const
        return const

    def _hash_rows_crc(self, items: Sequence[ItemId]) -> np.ndarray:
        """Batched CRC positions, bit-identical to the scalar family."""
        n = len(items)
        bases = np.empty(n, dtype=np.uint64)
        lengths = np.empty(n, dtype=np.int64)
        for row, item in enumerate(items):
            encoded = encode_item(item)
            bases[row] = zlib.crc32(encoded)
            lengths[row] = len(encoded)
        unique_lengths = np.unique(lengths)
        rows = np.empty((n, self.d), dtype=np.int64)
        consts = np.empty(n, dtype=np.uint64)
        for index in range(self.d):
            if unique_lengths.shape[0] == 1:
                consts[:] = self._crc_const(index, int(unique_lengths[0]))
            else:
                for length in unique_lengths:
                    consts[lengths == length] = self._crc_const(index, int(length))
            raw = bases ^ consts
            raw ^= raw >> np.uint64(16)
            raw = (raw * _MIX) & _MASK32
            raw ^= raw >> np.uint64(13)
            rows[:, index] = (raw % np.uint64(self.level_counters[index])).astype(np.int64)
        return rows

    def cache_info(self) -> Dict[str, int]:
        """Position-cache effectiveness counters (metrics source)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "size": len(self._pos_cache),
            "capacity": self.pos_cache_capacity,
        }

    # ------------------------------------------------------------------
    # counter updates and queries

    def bulk_insert(self, positions: np.ndarray, counts: np.ndarray, slot: int) -> None:
        """Add ``counts[j]`` to item ``j``'s counters in ``slot``.

        CM: exact -- colliding contributions accumulate and then clip,
        identical to sequential saturating adds.  CU: each item raises
        its minimal unsaturated levels to ``min + count`` using
        ``np.maximum.at``; when distinct items share a counter within
        one batch this keeps the largest single target rather than
        compounding them, i.e. a slightly *more* conservative update
        than sequential CU (never below it for the items' own reads).
        """
        if positions.shape[0] == 0:
            return
        if self.update_rule == "cm":
            for index, (level, max_value) in enumerate(zip(self.levels, self.max_values)):
                np.add.at(level[:, slot], positions[:, index], counts)
                np.minimum(level[:, slot], max_value, out=level[:, slot])
            return
        readings = self._gather_slot(positions, slot)  # (n, d), overflow -> _BIG
        minima = readings.min(axis=1)
        targets = np.minimum(minima + counts, _BIG)
        for index, (level, max_value) in enumerate(zip(self.levels, self.max_values)):
            capped = np.minimum(targets, max_value)
            # only raise unsaturated counters that sit below the target
            mask = readings[:, index] < capped
            if mask.any():
                np.maximum.at(
                    level[:, slot], positions[mask, index], capped[mask]
                )

    def _gather_slot(self, positions: np.ndarray, slot: int) -> np.ndarray:
        """Per-level readings at ``slot`` with overflow masked to _BIG."""
        columns = []
        for index, (level, max_value) in enumerate(zip(self.levels, self.max_values)):
            values = level[positions[:, index], slot]
            columns.append(np.where(values >= max_value, _BIG, values))
        return np.stack(columns, axis=1)

    def query_recent(self, positions: np.ndarray, slots: Sequence[int]) -> np.ndarray:
        """Estimates for each item over ``slots``: shape ``(n, len(slots))``.

        Tower read per (item, slot): min over unsaturated levels; if all
        levels overflow, the largest cap (matches the scalar structure).
        """
        n = positions.shape[0]
        estimates = np.empty((n, len(slots)), dtype=np.int64)
        if n == 0:
            return estimates
        largest_cap = max(self.max_values)
        for column, slot in enumerate(slots):
            readings = self._gather_slot(positions, slot)
            minima = readings.min(axis=1)
            estimates[:, column] = np.where(minima >= _BIG, largest_cap, minima)
        return estimates

    def clear_slot(self, slot: int) -> None:
        for level in self.levels:
            level[:, slot] = 0

    def merge(self, other: "VectorizedTower") -> "VectorizedTower":
        """Saturating counter-wise add of every sub-counter.

        Same semantics as :meth:`repro.sketch.counters.CounterArray.merge`
        (``min(a + b, max_value)``): exact for the CM rule barring
        saturation, an upper bound for CU, and overflow markers on
        either side stay pinned at the marker.  Requires identical
        geometry (s, d, level widths) and hash seed so counters align.
        """
        if type(self) is not type(other):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.s != other.s or self.d != other.d:
            raise MergeError(
                f"tower geometry differs: s={self.s}/d={self.d} vs "
                f"s={other.s}/d={other.d}"
            )
        if self.update_rule != other.update_rule:
            raise MergeError(
                f"update rules differ: {self.update_rule} vs {other.update_rule}"
            )
        if self.level_counters != other.level_counters:
            raise MergeError("vectorized-tower level geometries differ")
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "counters would not align"
            )
        for level, theirs, max_value in zip(self.levels, other.levels, self.max_values):
            np.minimum(level + theirs, max_value, out=level)
        return self

    @property
    def memory_bytes(self) -> float:
        bits = tower_level_widths(self.d)
        return sum(n * self.s * b for n, b in zip(self.level_counters, bits)) / 8.0
