"""Numpy-backed windowed TowerSketch for the vectorized engine.

Semantically the CM-rule :class:`~repro.sketch.windowed.WindowedTower`
(same level widths, same saturation-as-overflow reads), but counters
live in numpy matrices of shape ``(n_logical, s)`` and every operation
takes a *batch* of items: bulk updates via ``np.add.at`` and batched
s-window queries as fancy-indexed gathers.  Saturating batch adds equal
sequential saturating adds (add-then-clip), so results match the scalar
structure exactly under the CM rule; the CU rule is approximated
order-independently (documented on :meth:`bulk_insert`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.family import HashFamily, ItemId, make_family
from repro.sketch.tower import tower_level_widths

#: Sentinel larger than any counter value, used to mask overflow reads.
_BIG = np.int64(1) << 40


class VectorizedTower:
    """Batch-oriented windowed tower.

    Args:
        memory_bytes: budget, split equally over ``d`` levels of
            ``2**(i+1)``-bit counters with ``s`` sub-counters each.
        s: sub-counters (recent windows) per logical counter.
        d: number of levels / hash functions.
        update_rule: ``"cm"`` (exact) or ``"cu"`` (order-independent
            approximation).
    """

    def __init__(
        self,
        memory_bytes: int,
        s: int,
        d: int = 3,
        update_rule: str = "cm",
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
    ):
        if s <= 0:
            raise ConfigurationError(f"s must be positive, got {s}")
        if update_rule not in ("cm", "cu"):
            raise ConfigurationError(f"update_rule must be 'cm' or 'cu', got {update_rule!r}")
        self.s = s
        self.d = d
        self.update_rule = update_rule
        self.family = family if family is not None else make_family(hash_family, seed)
        per_level = memory_bytes / d
        self.levels: List[np.ndarray] = []
        self.max_values: List[int] = []
        self.level_counters: List[int] = []
        for bits in tower_level_widths(d):
            n_logical = int(per_level * 8 // (bits * s))
            if n_logical <= 0:
                raise ConfigurationError(
                    f"memory_bytes={memory_bytes} too small for a vectorized tower with s={s}"
                )
            self.levels.append(np.zeros((n_logical, s), dtype=np.int64))
            self.max_values.append((1 << bits) - 1)
            self.level_counters.append(n_logical)
        self._pos_cache: Dict[ItemId, Tuple[int, ...]] = {}

    def positions(self, items: Sequence[ItemId]) -> np.ndarray:
        """Hash positions per level for a batch of items: ``(n, d)``."""
        cache = self._pos_cache
        family = self.family
        counters = self.level_counters
        d = self.d
        rows = []
        for item in items:
            cached = cache.get(item)
            if cached is None:
                cached = tuple(family.hash32(item, i) % counters[i] for i in range(d))
                cache[item] = cached
            rows.append(cached)
        return np.asarray(rows, dtype=np.int64).reshape(len(rows), d)

    def bulk_insert(self, positions: np.ndarray, counts: np.ndarray, slot: int) -> None:
        """Add ``counts[j]`` to item ``j``'s counters in ``slot``.

        CM: exact -- colliding contributions accumulate and then clip,
        identical to sequential saturating adds.  CU: each item raises
        its minimal unsaturated levels to ``min + count`` using
        ``np.maximum.at``; when distinct items share a counter within
        one batch this keeps the largest single target rather than
        compounding them, i.e. a slightly *more* conservative update
        than sequential CU (never below it for the items' own reads).
        """
        if self.update_rule == "cm":
            for index, (level, max_value) in enumerate(zip(self.levels, self.max_values)):
                np.add.at(level[:, slot], positions[:, index], counts)
                np.minimum(level[:, slot], max_value, out=level[:, slot])
            return
        readings = self._gather_slot(positions, slot)  # (n, d), overflow -> _BIG
        minima = readings.min(axis=1)
        targets = np.minimum(minima + counts, _BIG)
        for index, (level, max_value) in enumerate(zip(self.levels, self.max_values)):
            capped = np.minimum(targets, max_value)
            # only raise unsaturated counters that sit below the target
            mask = readings[:, index] < capped
            if mask.any():
                np.maximum.at(
                    level[:, slot], positions[mask, index], capped[mask]
                )

    def _gather_slot(self, positions: np.ndarray, slot: int) -> np.ndarray:
        """Per-level readings at ``slot`` with overflow masked to _BIG."""
        columns = []
        for index, (level, max_value) in enumerate(zip(self.levels, self.max_values)):
            values = level[positions[:, index], slot]
            columns.append(np.where(values >= max_value, _BIG, values))
        return np.stack(columns, axis=1)

    def query_recent(self, positions: np.ndarray, slots: Sequence[int]) -> np.ndarray:
        """Estimates for each item over ``slots``: shape ``(n, len(slots))``.

        Tower read per (item, slot): min over unsaturated levels; if all
        levels overflow, the largest cap (matches the scalar structure).
        """
        n = positions.shape[0]
        estimates = np.empty((n, len(slots)), dtype=np.int64)
        largest_cap = max(self.max_values)
        for column, slot in enumerate(slots):
            readings = self._gather_slot(positions, slot)
            minima = readings.min(axis=1)
            estimates[:, column] = np.where(minima >= _BIG, largest_cap, minima)
        return estimates

    def clear_slot(self, slot: int) -> None:
        for level in self.levels:
            level[:, slot] = 0

    @property
    def memory_bytes(self) -> float:
        bits = tower_level_widths(self.d)
        return sum(n * self.s * b for n, b in zip(self.level_counters, bits)) / 8.0
