"""LogLog Filter (Jia et al., ICDE'21 [41]).

LLF replaces Cold Filter's layer-1 counters with tiny logarithmic
registers so a much wider range of cold items fits the same memory.  Our
port keeps the published structure -- ``d`` register arrays of ``bits``-bit
registers -- and uses probabilistic log-scale registers: an arrival
increments a register ``r`` with probability ``2**-r`` (Morris counting,
the same update rule LLF's registers realize through geometric hash
ranks), and a register decodes to the unbiased estimate ``2**r - 1``.

The deliberately coarse decode is the point of the Figure-9 comparison:
log-scale registers are great at cold/hot separation but feed the
polynomial fit quantized frequencies, which is why LLF trails TowerSketch
as a Stage-1 structure.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.base import FrequencySketch
from repro.sketch.counters import CounterArray


class LogLogFilter(FrequencySketch):
    """Log-scale register filter.

    Args:
        memory_bytes: register memory budget, split over ``d`` arrays.
        d: number of register arrays / hash functions.
        bits: register width (default 4: values saturate at rank 15,
            i.e. estimates up to ``2**15 - 1``).
    """

    def __init__(
        self,
        memory_bytes: int,
        d: int = 3,
        bits: int = 4,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        rng: random.Random = None,
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        width = int(memory_bytes / d * 8 // bits)
        if width <= 0:
            raise ConfigurationError(f"memory_bytes={memory_bytes} too small for a LogLog Filter")
        self.d = d
        self.registers = [CounterArray(width, bits) for _ in range(d)]
        self._rng = rng if rng is not None else random.Random(seed)

    def _mapped(self, item: ItemId):
        return [
            (self.registers[i], self.family.hash32(item, i) % self.registers[i].size)
            for i in range(self.d)
        ]

    def insert(self, item: ItemId, count: int = 1) -> None:
        mapped = self._mapped(item)
        for _ in range(count):
            minimum = min(array.get(pos) for array, pos in mapped)
            # Morris update: the register advances with probability 2**-r.
            if minimum > 0 and self._rng.random() >= 2.0 ** -minimum:
                continue
            for array, pos in mapped:
                if array.get(pos) == minimum:
                    array.increment(pos, 1)

    def query(self, item: ItemId) -> int:
        minimum = min(array.get(pos) for array, pos in self._mapped(item))
        return (1 << minimum) - 1

    def merge(self, other: "LogLogFilter") -> "LogLogFilter":
        """Fold ``other`` into this filter (register-wise max).

        Morris registers hold log-scale ranks, not counts, so the
        standard union rule for register sketches applies: take the
        per-register maximum.  The merged estimate for an item split
        across shards is ``max`` rather than ``sum`` of the shard
        estimates — an undercount of at most 2x in expectation, which
        matches the deliberately coarse log-scale decode this filter
        already feeds the fit (see the module docstring).
        """
        if not isinstance(other, LogLogFilter):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if (
            self.d != other.d
            or self.registers[0].size != other.registers[0].size
            or self.registers[0].bits != other.registers[0].bits
        ):
            raise MergeError("LogLog geometry differs; registers would not align")
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "registers would not align"
            )
        for mine, theirs in zip(self.registers, other.registers):
            values = mine.values
            for index, rank in enumerate(theirs):
                if rank > values[index]:
                    values[index] = rank
        return self

    def clear(self) -> None:
        for array in self.registers:
            array.clear()

    @property
    def memory_bytes(self) -> float:
        return sum(array.memory_bytes for array in self.registers)
