"""PyramidSketch (Yang et al., VLDB'17 [44]).

One of the related-work frequency estimators (Section II-B2).  Counters
form a pyramid: the leaf layer has many small counters; when a counter
wraps it carries into its parent (half as many counters per layer) and
sets the child's overflow flag, so hot items automatically get wider
effective counters.  A query walks up while overflow flags are set and
reassembles the value from the per-layer digits.

This port keeps the core carry/flag mechanism with ``d`` leaf hashes
and simple binary fan-in; the original's word packing is replaced by
explicit flag arrays (memory accounting includes them).
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.base import FrequencySketch
from repro.sketch.counters import CounterArray


class PyramidSketch(FrequencySketch):
    """Pyramid of carry-propagating counters.

    Args:
        memory_bytes: budget across all layers (counter + flag bits).
        d: leaf-layer hash functions.
        layer_bits: count bits per layer digit (default 4).
        n_layers: pyramid height (default 5; the top layer saturates).
    """

    def __init__(
        self,
        memory_bytes: int,
        d: int = 3,
        layer_bits: int = 4,
        n_layers: int = 5,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        if n_layers < 2:
            raise ConfigurationError(f"a pyramid needs >= 2 layers, got {n_layers}")
        # Geometric layer sizes: leaf w, then w/2, w/4, ...; each slot
        # costs layer_bits count bits + 1 overflow flag bit.
        per_slot_bits = layer_bits + 1
        weight = sum(0.5**i for i in range(n_layers))
        leaf_size = int(memory_bytes * 8 / (per_slot_bits * weight))
        if leaf_size < 2 ** (n_layers - 1):
            raise ConfigurationError(
                f"memory_bytes={memory_bytes} too small for a {n_layers}-layer pyramid"
            )
        self.d = d
        self.layer_bits = layer_bits
        self.counters: List[CounterArray] = []
        self.flags: List[List[bool]] = []
        size = leaf_size
        for _ in range(n_layers):
            self.counters.append(CounterArray(size, layer_bits))
            self.flags.append([False] * size)
            size = max(1, size // 2)

    def _leaf_positions(self, item: ItemId) -> List[int]:
        leaf = self.counters[0]
        return [self.family.hash32(item, i) % leaf.size for i in range(self.d)]

    def _carry(self, layer: int, index: int) -> None:
        """Propagate a carry from (layer, index) into its parent."""
        while True:
            self.flags[layer][index] = True
            parent_layer = layer + 1
            parent_index = (index // 2) % self.counters[parent_layer].size
            parent = self.counters[parent_layer]
            if parent.get(parent_index) < parent.max_value:
                parent.increment(parent_index, 1)
                return
            if parent_layer + 1 >= len(self.counters):
                return  # top of the pyramid: saturates and stays pinned
            parent.set(parent_index, 0)
            layer, index = parent_layer, parent_index

    def insert(self, item: ItemId, count: int = 1) -> None:
        for _ in range(count):
            for pos in self._leaf_positions(item):
                leaf = self.counters[0]
                if leaf.get(pos) < leaf.max_value:
                    leaf.increment(pos, 1)
                else:
                    leaf.set(pos, 0)
                    self._carry(0, pos)

    def _read_up(self, pos: int) -> int:
        """Reassemble a value by walking flags upward from a leaf slot."""
        total = 0
        shift = 0
        index = pos
        for layer, counter in enumerate(self.counters):
            total += counter.get(index) << shift
            if not self.flags[layer][index] or layer + 1 >= len(self.counters):
                break
            shift += self.layer_bits
            index = (index // 2) % self.counters[layer + 1].size
        return total

    def query(self, item: ItemId) -> int:
        return min(self._read_up(pos) for pos in self._leaf_positions(item))

    def clear(self) -> None:
        for counter in self.counters:
            counter.clear()
        self.flags = [[False] * counter.size for counter in self.counters]

    @property
    def memory_bytes(self) -> float:
        counter_bits = sum(c.size * c.bits for c in self.counters)
        flag_bits = sum(len(f) for f in self.flags)
        return (counter_bits + flag_bits) / 8.0
