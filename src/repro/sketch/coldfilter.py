"""Cold Filter (Zhou et al., SIGMOD'18 [40]).

A two-layer conservative-update structure: arrivals charge the small
counters of layer 1 until they saturate at threshold ``2**bits1 - 1``, then
spill into layer 2's larger counters.  Queried frequency is ``L1`` if the
layer-1 reading is below threshold, else ``threshold + L2``.  The paper
evaluates it as an alternative Stage-1 structure (Figure 9).
"""

from __future__ import annotations

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.base import FrequencySketch
from repro.sketch.counters import CounterArray


class ColdFilter(FrequencySketch):
    """Two-layer CU filter.

    Args:
        memory_bytes: total budget; ``layer1_fraction`` goes to layer 1.
        d1, d2: hash functions per layer.
        bits1, bits2: counter widths per layer (defaults 4 and 16, the
            configuration the Cold Filter paper recommends).
    """

    def __init__(
        self,
        memory_bytes: int,
        d1: int = 3,
        d2: int = 3,
        bits1: int = 4,
        bits2: int = 16,
        layer1_fraction: float = 0.5,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        if not 0.0 < layer1_fraction < 1.0:
            raise ConfigurationError(f"layer1_fraction must be in (0, 1), got {layer1_fraction}")
        bytes1 = memory_bytes * layer1_fraction
        bytes2 = memory_bytes - bytes1
        w1 = int(bytes1 / d1 * 8 // bits1)
        w2 = int(bytes2 / d2 * 8 // bits2)
        if w1 <= 0 or w2 <= 0:
            raise ConfigurationError(f"memory_bytes={memory_bytes} too small for a Cold Filter")
        self.d1, self.d2 = d1, d2
        self.layer1 = [CounterArray(w1, bits1) for _ in range(d1)]
        self.layer2 = [CounterArray(w2, bits2) for _ in range(d2)]
        self.threshold = (1 << bits1) - 1

    def _positions(self, item: ItemId, arrays, index_offset: int):
        return [
            (arrays[i], self.family.hash32(item, index_offset + i) % arrays[i].size)
            for i in range(len(arrays))
        ]

    @staticmethod
    def _cu_update(mapped, count: int) -> int:
        """Conservative update on the mapped counters; returns new minimum."""
        values = [array.get(pos) for array, pos in mapped]
        target = min(values) + count
        for (array, pos), value in zip(mapped, values):
            if value < target:
                array.set(pos, target)
        return min(array.get(pos) for array, pos in mapped)

    def insert(self, item: ItemId, count: int = 1) -> None:
        mapped1 = self._positions(item, self.layer1, 0)
        min1 = min(array.get(pos) for array, pos in mapped1)
        if min1 < self.threshold:
            room = self.threshold - min1
            used = min(count, room)
            self._cu_update(mapped1, used)
            count -= used
        if count > 0:
            mapped2 = self._positions(item, self.layer2, self.d1)
            self._cu_update(mapped2, count)

    def query(self, item: ItemId) -> int:
        mapped1 = self._positions(item, self.layer1, 0)
        min1 = min(array.get(pos) for array, pos in mapped1)
        if min1 < self.threshold:
            return min1
        mapped2 = self._positions(item, self.layer2, self.d1)
        min2 = min(array.get(pos) for array, pos in mapped2)
        return self.threshold + min2

    def merge(self, other: "ColdFilter") -> "ColdFilter":
        """Fold ``other`` into this filter (layer-wise saturating add).

        Layer-1 counters saturate at the spill threshold, so a counter
        saturated on either side stays saturated — "already spilled"
        survives the merge.  Two caveats, both inherent to merging a
        threshold filter: conservative-update states added counter-wise
        can overestimate what one pass would have produced, and an item
        whose *combined* layer-1 count crosses the threshold only after
        the merge reads as exactly ``threshold`` (its excess was never
        spilled to layer 2 on either side, an undercount of at most
        ``threshold`` per side).  Fine for its Stage-1 filter role;
        do not use merged ColdFilters as one-sided estimators.
        """
        if not isinstance(other, ColdFilter):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if (
            self.d1 != other.d1
            or self.d2 != other.d2
            or self.threshold != other.threshold
            or self.layer1[0].size != other.layer1[0].size
            or self.layer2[0].size != other.layer2[0].size
        ):
            raise MergeError("ColdFilter geometry differs; counters would not align")
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "counters would not align"
            )
        for mine, theirs in zip(self.layer1, other.layer1):
            mine.merge(theirs)
        for mine, theirs in zip(self.layer2, other.layer2):
            mine.merge(theirs)
        return self

    def clear(self) -> None:
        for array in self.layer1:
            array.clear()
        for array in self.layer2:
            array.clear()

    @property
    def memory_bytes(self) -> float:
        return sum(a.memory_bytes for a in self.layer1) + sum(a.memory_bytes for a in self.layer2)
