"""The Count sketch (Charikar, Chen & Farach-Colton [38]).

Each array pairs its position hash with a +/-1 sign hash; a query reports
the median of the signed counter readings, giving an unbiased (two-sided)
estimator, unlike CM/CU which only overestimate.
"""

from __future__ import annotations

import statistics

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.base import FrequencySketch


class CountSketch(FrequencySketch):
    """Count sketch over a byte budget; counters are signed 32-bit."""

    COUNTER_BITS = 32

    def __init__(
        self,
        memory_bytes: int,
        d: int = 3,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        if d <= 0:
            raise ConfigurationError(f"d must be positive, got {d}")
        width = int(memory_bytes / d * 8 // self.COUNTER_BITS)
        if width <= 0:
            raise ConfigurationError(f"memory_bytes={memory_bytes} too small for a Count sketch")
        self.d = d
        self.width = width
        self._rows = [[0] * width for _ in range(d)]

    def _pos_and_sign(self, item: ItemId, row: int):
        h = self.family.hash32(item, row)
        # Low bits choose the slot, one high bit chooses the sign; both come
        # from the same 32-bit hash, matching the usual implementation trick.
        sign = 1 if (h >> 31) & 1 else -1
        return (h % self.width), sign

    def insert(self, item: ItemId, count: int = 1) -> None:
        for row in range(self.d):
            pos, sign = self._pos_and_sign(item, row)
            self._rows[row][pos] += sign * count

    def query(self, item: ItemId) -> int:
        readings = []
        for row in range(self.d):
            pos, sign = self._pos_and_sign(item, row)
            readings.append(sign * self._rows[row][pos])
        return int(statistics.median(readings))

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Fold ``other`` into this sketch (signed counter-wise add).

        Exact: Count-sketch counters are plain sums of signed
        contributions, so merging substream sketches reproduces the
        whole-stream sketch bit-for-bit (same geometry and hash seed
        required).
        """
        if not isinstance(other, CountSketch):
            raise MergeError(f"cannot merge CountSketch with {type(other).__name__}")
        if self.d != other.d or self.width != other.width:
            raise MergeError(
                f"Count geometry differs: d={self.d} w={self.width} vs d={other.d} w={other.width}"
            )
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed})"
            )
        for mine, theirs in zip(self._rows, other._rows):
            for index, value in enumerate(theirs):
                mine[index] += value
        return self

    def clear(self) -> None:
        self._rows = [[0] * self.width for _ in range(self.d)]

    @property
    def memory_bytes(self) -> float:
        return self.d * self.width * self.COUNTER_BITS / 8.0
