"""Common interface of single-window frequency sketches."""

from __future__ import annotations

import abc

from repro.hashing.family import HashFamily, ItemId, make_family


class FrequencySketch(abc.ABC):
    """A structure estimating per-item frequencies within one window.

    Concrete sketches share the constructor convention ``(memory_bytes,
    d, ..., seed/family)`` so the experiment harness can swap them freely.
    """

    def __init__(self, family: HashFamily = None, seed: int = 0, hash_family: str = "crc"):
        self.family = family if family is not None else make_family(hash_family, seed)

    @abc.abstractmethod
    def insert(self, item: ItemId, count: int = 1) -> None:
        """Record ``count`` arrivals of ``item``."""

    @abc.abstractmethod
    def query(self, item: ItemId) -> int:
        """Estimated frequency of ``item``."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Reset all counters to zero."""

    @property
    @abc.abstractmethod
    def memory_bytes(self) -> float:
        """Accounted memory footprint of the counter storage."""
