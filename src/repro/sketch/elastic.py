"""ElasticSketch (Yang et al., SIGCOMM'18 [46]).

Related-work frequency estimator (Section II-B2).  Traffic splits into
a *heavy part* -- a hash table whose buckets defend their resident flow
with a vote mechanism -- and a *light part* -- a small CM sketch
absorbing everything else.  A flow that out-votes a resident by the
eviction ratio λ takes the bucket; the evicted flow's count moves to
the light part and the bucket is flagged so queries know to combine
both parts.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.base import FrequencySketch
from repro.sketch.cm import CMSketch

#: Accounted bytes per heavy bucket: key (4) + pos (4) + neg (4) + flag.
HEAVY_BUCKET_BYTES = 13


class _HeavyBucket:
    __slots__ = ("key", "positive", "negative", "flag")

    def __init__(self):
        self.key: ItemId = None
        self.positive = 0
        self.negative = 0
        self.flag = False  # True when part of the flow's count is in light


class ElasticSketch(FrequencySketch):
    """Heavy/light elastic sketch.

    Args:
        memory_bytes: total budget; ``heavy_fraction`` goes to the
            heavy hash table, the rest to the light CM (1-byte counters,
            as in the original).
        eviction_ratio: the λ vote threshold (original uses 8).
    """

    def __init__(
        self,
        memory_bytes: int,
        heavy_fraction: float = 0.25,
        eviction_ratio: int = 8,
        d_light: int = 3,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        if not 0.0 < heavy_fraction < 1.0:
            raise ConfigurationError(f"heavy_fraction must be in (0,1), got {heavy_fraction}")
        if eviction_ratio <= 0:
            raise ConfigurationError(f"eviction_ratio must be positive, got {eviction_ratio}")
        heavy_bytes = int(memory_bytes * heavy_fraction)
        self.n_buckets = heavy_bytes // HEAVY_BUCKET_BYTES
        if self.n_buckets <= 0:
            raise ConfigurationError(f"memory_bytes={memory_bytes} too small for ElasticSketch")
        self.buckets: List[_HeavyBucket] = [_HeavyBucket() for _ in range(self.n_buckets)]
        self.eviction_ratio = eviction_ratio
        self.light = CMSketch(
            memory_bytes - heavy_bytes, d=d_light, counter_bits=8,
            family=self.family, hash_family=hash_family,
        )

    def _bucket(self, item: ItemId) -> _HeavyBucket:
        # The heavy part uses its own hash index (after the light part's d).
        return self.buckets[self.family.hash32(item, self.light.d) % self.n_buckets]

    def insert(self, item: ItemId, count: int = 1) -> None:
        bucket = self._bucket(item)
        if bucket.key is None:
            bucket.key = item
            bucket.positive = count
            bucket.negative = 0
            bucket.flag = False
            return
        if bucket.key == item:
            bucket.positive += count
            return
        bucket.negative += count
        if bucket.negative >= self.eviction_ratio * bucket.positive:
            # The resident loses the vote: its count spills to the light
            # part and the challenger takes over (flagged: part of the
            # challenger's history is in the light part too).
            self.light.insert(bucket.key, bucket.positive)
            bucket.key = item
            bucket.positive = count
            bucket.negative = 1
            bucket.flag = True
        else:
            self.light.insert(item, count)

    def query(self, item: ItemId) -> int:
        bucket = self._bucket(item)
        if bucket.key == item:
            if bucket.flag:
                return bucket.positive + self.light.query(item)
            return bucket.positive
        return self.light.query(item)

    def heavy_flows(self, threshold: int) -> dict:
        """Resident flows whose estimate reaches ``threshold``."""
        return {
            bucket.key: self.query(bucket.key)
            for bucket in self.buckets
            if bucket.key is not None and self.query(bucket.key) >= threshold
        }

    def merge(self, other: "ElasticSketch") -> "ElasticSketch":
        """Fold ``other`` into this sketch (bucket election + light add).

        The light CM parts merge counter-wise (exact).  Each heavy
        bucket pair holds an election: same resident — counts add;
        different residents — the larger ``positive`` keeps the bucket
        and the loser's count spills to the light part with the bucket
        flagged, exactly what the insert-path eviction does.  Estimates
        stay one-sided (never below a CM-style lower estimate) because
        no count is dropped, only demoted to the light part.
        """
        if not isinstance(other, ElasticSketch):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if (
            self.n_buckets != other.n_buckets
            or self.eviction_ratio != other.eviction_ratio
        ):
            raise MergeError(
                f"Elastic geometry differs: buckets={self.n_buckets} "
                f"vs {other.n_buckets}"
            )
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "buckets would not align"
            )
        self.light.merge(other.light)
        for mine, theirs in zip(self.buckets, other.buckets):
            if theirs.key is None:
                continue
            if mine.key is None:
                mine.key = theirs.key
                mine.positive = theirs.positive
                mine.negative = theirs.negative
                mine.flag = theirs.flag
            elif mine.key == theirs.key:
                mine.positive += theirs.positive
                mine.negative += theirs.negative
                mine.flag = mine.flag or theirs.flag
            else:
                winner, loser = (
                    (mine, theirs)
                    if mine.positive >= theirs.positive
                    else (theirs, mine)
                )
                self.light.insert(loser.key, loser.positive)
                mine.key = winner.key
                mine.positive = winner.positive
                mine.negative = winner.negative + loser.negative
                mine.flag = True
        return self

    def clear(self) -> None:
        for bucket in self.buckets:
            bucket.key = None
            bucket.positive = 0
            bucket.negative = 0
            bucket.flag = False
        self.light.clear()

    @property
    def memory_bytes(self) -> float:
        return self.n_buckets * HEAVY_BUCKET_BYTES + self.light.memory_bytes
