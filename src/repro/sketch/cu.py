"""The CU sketch (Estan & Varghese's conservative update [37]).

Identical layout to Count-Min, but insertion only increments the mapped
counters currently holding the minimum value, which tightens the
overestimate at the cost of not supporting deletions.
"""

from __future__ import annotations

from repro.hashing.family import ItemId
from repro.sketch.cm import CMSketch


class CUSketch(CMSketch):
    """Conservative-update variant of :class:`CMSketch`."""

    def insert(self, item: ItemId, count: int = 1) -> None:
        positions = self._positions(item)
        values = [self.arrays[i].get(pos) for i, pos in enumerate(positions)]
        target = min(values) + count
        for i, pos in enumerate(positions):
            if values[i] < target:
                self.arrays[i].set(pos, target)
