"""SpaceSaving (Metwally, Agrawal & El Abbadi, 2005).

The classic counter-based frequent-item algorithm, included because the
paper's introduction frames simplex detection against the well-studied
"finding frequent items" task: keep ``capacity`` (item, count, error)
entries; an untracked arrival replaces the minimum-count entry,
inheriting its count as the new entry's overestimation error.
Guarantees: every item with true frequency above ``N / capacity`` is
tracked, and ``count - error <= true <= count``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import ItemId


class _Entry:
    __slots__ = ("count", "error")

    def __init__(self, count: int, error: int):
        self.count = count
        self.error = error


def _entry_count(pair: "Tuple[ItemId, _Entry]") -> int:
    return pair[1].count


class SpaceSaving:
    """Top-k frequent items in ``capacity`` counters."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[ItemId, _Entry] = {}
        self.total = 0

    def insert(self, item: ItemId, count: int = 1) -> None:
        self.total += count
        entry = self._entries.get(item)
        if entry is not None:
            entry.count += count
            return
        if len(self._entries) < self.capacity:
            self._entries[item] = _Entry(count, 0)
            return
        victim_item = min(self._entries.items(), key=_entry_count)[0]
        victim = self._entries.pop(victim_item)
        # the newcomer inherits the victim's count as its error bound
        self._entries[item] = _Entry(victim.count + count, victim.count)

    def query(self, item: ItemId) -> int:
        """Estimated frequency (0 for untracked items)."""
        entry = self._entries.get(item)
        return entry.count if entry is not None else 0

    def guaranteed(self, item: ItemId) -> int:
        """Lower bound on the true frequency (``count - error``)."""
        entry = self._entries.get(item)
        return entry.count - entry.error if entry is not None else 0

    def top(self, n: int = None) -> List[Tuple[ItemId, int]]:
        """Tracked items by decreasing estimated count."""
        ranked = sorted(
            self._entries.items(), key=lambda kv: (-kv[1].count, str(kv[0]))
        )
        pairs = [(item, entry.count) for item, entry in ranked]
        return pairs if n is None else pairs[:n]

    def heavy_hitters(self, phi: float) -> List[Tuple[ItemId, int]]:
        """Items with estimated frequency above ``phi * N``."""
        if not 0.0 < phi < 1.0:
            raise ConfigurationError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self.total
        return [(item, count) for item, count in self.top() if count > threshold]

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Fold ``other`` into this summary (mergeable-summaries union).

        Agarwal et al.'s merge rule: an item absent from one side is
        assumed to have been seen up to that side's minimum tracked
        count, which joins both its count and its error bound; the
        union is then pruned back to ``capacity`` by estimated count.
        The SpaceSaving guarantees survive the merge: ``count - error
        <= true <= count`` and every item above ``N / capacity`` of the
        combined total stays tracked.
        """
        if not isinstance(other, SpaceSaving):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.capacity != other.capacity:
            raise MergeError(
                f"capacities differ ({self.capacity} vs {other.capacity}); "
                "merged error bounds would be meaningless"
            )
        floor_self = (
            min(entry.count for entry in self._entries.values())
            if len(self._entries) >= self.capacity
            else 0
        )
        floor_other = (
            min(entry.count for entry in other._entries.values())
            if len(other._entries) >= other.capacity
            else 0
        )
        combined: Dict[ItemId, _Entry] = {}
        for item, entry in self._entries.items():
            theirs = other._entries.get(item)
            if theirs is not None:
                combined[item] = _Entry(
                    entry.count + theirs.count, entry.error + theirs.error
                )
            else:
                combined[item] = _Entry(
                    entry.count + floor_other, entry.error + floor_other
                )
        for item, theirs in other._entries.items():
            if item not in combined:
                combined[item] = _Entry(
                    theirs.count + floor_self, theirs.error + floor_self
                )
        ranked = sorted(
            combined.items(), key=lambda kv: (-kv[1].count, str(kv[0]))
        )
        self._entries = dict(ranked[: self.capacity])
        self.total += other.total
        return self

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def memory_bytes(self) -> float:
        """Accounted bytes: ID + count + error per entry (12 B)."""
        return 12.0 * self.capacity
