"""The Count-Min sketch (Cormode & Muthukrishnan [23]).

``d`` counter arrays, one hash function each; insertion increments all
``d`` mapped counters, a query reports their minimum.  Never
underestimates (for non-negative streams); the baseline solution of
Section III-A is built from ``p`` of these.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId
from repro.sketch.base import FrequencySketch
from repro.sketch.counters import CounterArray


class CMSketch(FrequencySketch):
    """Count-Min sketch over a byte budget.

    Args:
        memory_bytes: total counter memory; split equally over ``d`` arrays.
        d: number of arrays / hash functions.
        counter_bits: width of each counter (default 32).
        family: shared hash family (or ``seed``/``hash_family`` to build one).
    """

    def __init__(
        self,
        memory_bytes: int,
        d: int = 3,
        counter_bits: int = 32,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
    ):
        super().__init__(family=family, seed=seed, hash_family=hash_family)
        if d <= 0:
            raise ConfigurationError(f"d must be positive, got {d}")
        per_array = memory_bytes / d
        width = int(per_array * 8 // counter_bits)
        if width <= 0:
            raise ConfigurationError(
                f"memory_bytes={memory_bytes} too small for {d} arrays of {counter_bits}-bit counters"
            )
        self.d = d
        self.arrays = [CounterArray(width, counter_bits) for _ in range(d)]
        self.width = width

    def _positions(self, item: ItemId):
        width = self.width
        family = self.family
        return [family.hash32(item, i) % width for i in range(self.d)]

    def insert(self, item: ItemId, count: int = 1) -> None:
        for i, pos in enumerate(self._positions(item)):
            self.arrays[i].increment(pos, count)

    def query(self, item: ItemId) -> int:
        return min(self.arrays[i].get(pos) for i, pos in enumerate(self._positions(item)))

    def merge(self, other: "CMSketch") -> "CMSketch":
        """Fold ``other``'s counters into this sketch (counter-wise add).

        Both sketches must share geometry (``d``, ``width``) and hash
        seed, so counter ``(i, j)`` means the same thing on both sides.
        For CM the merge is *exact*: a sketch merged over substreams
        equals one sketch fed the concatenated stream (absent 32-bit
        saturation).  For the CU subclass the merged state is an upper
        bound — counter-wise addition can only overestimate what a
        single conservative-update pass would have produced — so merged
        queries stay one-sided (never below the true count).
        """
        if not isinstance(other, CMSketch):
            raise MergeError(f"cannot merge {type(self).__name__} with {type(other).__name__}")
        if self.d != other.d or self.width != other.width:
            raise MergeError(
                f"CM geometry differs: d={self.d} w={self.width} vs d={other.d} w={other.width}"
            )
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "counters would not align"
            )
        for mine, theirs in zip(self.arrays, other.arrays):
            mine.merge(theirs)
        return self

    def clear(self) -> None:
        for array in self.arrays:
            array.clear()

    @property
    def memory_bytes(self) -> float:
        return sum(array.memory_bytes for array in self.arrays)
