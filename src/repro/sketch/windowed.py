"""Windowed filter structures for Stage 1.

Section III-D1: every logical counter of the Stage-1 structure carries
``s`` *sub-counters*, one per recent window; the sub-counter for the
current window is selected by ``w % s``.  This module provides that
windowed layout for each structure the paper evaluates as a Stage-1
candidate (Figure 9): TowerSketch (CM and CU update rules), plain CM/CU,
Cold Filter and LogLog Filter, all behind one interface so
:class:`repro.core.stage1.Stage1` can swap them.

Memory accounting counts ``s`` sub-counters per logical counter, so a
structure given ``memory_bytes`` at ``s=4`` holds a quarter of the logical
counters it would at ``s=1``.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, MergeError
from repro.hashing.family import HashFamily, ItemId, make_family
from repro.obs.recorder import NULL_RECORDER
from repro.sketch.counters import CounterArray
from repro.sketch.tower import tower_level_widths


class WindowedFilter(abc.ABC):
    """A frequency filter whose counters have ``s`` per-window sub-counters."""

    def __init__(self, s: int, family: HashFamily = None, seed: int = 0, hash_family: str = "crc"):
        if s <= 0:
            raise ConfigurationError(f"s must be positive, got {s}")
        self.s = s
        self.family = family if family is not None else make_family(hash_family, seed)
        # Simulation accelerator: items repeat heavily in real streams, so
        # hash positions are memoized.  This only caches pure hash values --
        # results are identical with the cache disabled.
        self._pos_cache: Dict[ItemId, Tuple[int, ...]] = {}

    @abc.abstractmethod
    def insert(self, item: ItemId, slot: int) -> None:
        """Record one arrival of ``item`` in window slot ``slot``."""

    def insert_count(self, item: ItemId, slot: int, count: int) -> None:
        """Record ``count`` arrivals at once (window-batched mode).

        The default loops over :meth:`insert`; structures with a cheaper
        bulk update override it.  Equivalent to ``count`` single inserts.
        """
        for _ in range(count):
            self.insert(item, slot)

    @abc.abstractmethod
    def query_slot(self, item: ItemId, slot: int) -> int:
        """Estimated frequency of ``item`` in window slot ``slot``."""

    def query_slots(self, item: ItemId, slots: Sequence[int]) -> List[int]:
        """Estimated frequencies across several slots (oldest first)."""
        return [self.query_slot(item, slot) for slot in slots]

    def query_slots_positive(self, item: ItemId, slots: Sequence[int]) -> Optional[List[int]]:
        """Like :meth:`query_slots` but returns None at the first zero.

        The Preliminary Condition rejects any span containing a zero
        frequency, so callers on the per-arrival hot path use this to
        skip the remaining reads (results are identical to calling
        :meth:`query_slots` and checking for zeros).
        """
        frequencies: List[int] = []
        for slot in slots:
            frequency = self.query_slot(item, slot)
            if frequency == 0:
                return None
            frequencies.append(frequency)
        return frequencies

    @abc.abstractmethod
    def clear_slot(self, slot: int) -> None:
        """Zero every sub-counter of window slot ``slot``."""

    def clear(self) -> None:
        """Zero the whole structure."""
        for slot in range(self.s):
            self.clear_slot(slot)

    def merge(self, other: "WindowedFilter") -> "WindowedFilter":
        """Fold ``other``'s sub-counters into this filter.

        Concrete structures override this; the default refuses, so a
        structure without well-defined merge semantics fails loudly.
        """
        raise MergeError(f"{type(self).__name__} does not support merge()")

    def _check_merge_peer(self, other: "WindowedFilter") -> None:
        """Common merge-compatibility checks (type, s, hash seed)."""
        if type(self) is not type(other):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.s != other.s:
            raise MergeError(f"s differs: {self.s} vs {other.s}")
        if self.family.seed != other.family.seed:
            raise MergeError(
                f"hash seeds differ ({self.family.seed} vs {other.family.seed}); "
                "counters would not align"
            )

    @property
    @abc.abstractmethod
    def memory_bytes(self) -> float:
        """Accounted memory of the counter storage."""

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.s:
            raise ConfigurationError(f"slot must be in [0, {self.s}), got {slot}")


class _WindowedArrays(WindowedFilter):
    """Shared machinery: ``d`` arrays of logical counters x ``s`` sub-counters.

    Each level is one flat :class:`CounterArray`; logical counter ``pos``
    owns entries ``pos * s + slot``.  Covers tower and flat CM/CU layouts
    via the per-level width list and the update rule.
    """

    def __init__(
        self,
        memory_bytes: int,
        s: int,
        level_bits: Sequence[int],
        update_rule: str = "cm",
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        recorder=None,
    ):
        super().__init__(s=s, family=family, seed=seed, hash_family=hash_family)
        if update_rule not in ("cm", "cu"):
            raise ConfigurationError(f"update_rule must be 'cm' or 'cu', got {update_rule!r}")
        self.update_rule = update_rule
        recorder = recorder if recorder is not None else NULL_RECORDER
        # With the no-op recorder _obs is None and the insert paths take
        # their original unobserved branches (zero added work per arrival).
        self._obs = recorder if recorder.enabled else None
        self._c_overflow = recorder.counter(
            "tower_overflow_total",
            "tower counters that crossed into their overflow marker",
        )
        self.d = len(level_bits)
        per_level = memory_bytes / self.d
        self.levels: List[CounterArray] = []
        self.level_counters: List[int] = []
        for bits in level_bits:
            n_logical = int(per_level * 8 // (bits * s))
            if n_logical <= 0:
                raise ConfigurationError(
                    f"memory_bytes={memory_bytes} too small for {self.d} windowed arrays"
                    f" of {bits}-bit counters with s={s}"
                )
            self.levels.append(CounterArray(n_logical * s, bits))
            self.level_counters.append(n_logical)

    def _positions(self, item: ItemId) -> Tuple[int, ...]:
        cached = self._pos_cache.get(item)
        if cached is None:
            family = self.family
            cached = tuple(
                family.hash32(item, i) % self.level_counters[i] for i in range(self.d)
            )
            self._pos_cache[item] = cached
        return cached

    def saturated_counters(self) -> int:
        """Sub-counters at their overflow marker (observability scan)."""
        return sum(
            1
            for level in self.levels
            for value in level.values
            if value == level.max_value
        )

    def insert(self, item: ItemId, slot: int) -> None:
        self._check_slot(slot)
        positions = self._positions(item)
        s = self.s
        if self.update_rule == "cm":
            if self._obs is not None:
                for level, pos in zip(self.levels, positions):
                    index = pos * s + slot
                    before = level.values[index]
                    level.increment(index, 1)
                    if before != level.max_value and level.values[index] == level.max_value:
                        self._c_overflow.inc()
                return
            for level, pos in zip(self.levels, positions):
                level.increment(pos * s + slot, 1)
            return
        # CU rule, with tower overflow semantics: saturated counters are
        # overflow markers -- they neither participate in the minimum nor
        # advance (a saturated small counter must not pin the minimum
        # below the live larger counters).
        readings = []
        minimum = None
        for level, pos in zip(self.levels, positions):
            index = pos * s + slot
            value = level.values[index]
            if value == level.max_value:
                continue
            readings.append((level, index, value))
            if minimum is None or value < minimum:
                minimum = value
        for level, index, value in readings:
            if value == minimum:
                if value + 1 >= level.max_value and self._obs is not None:
                    self._c_overflow.inc()
                level.increment(index, 1)

    def insert_count(self, item: ItemId, slot: int, count: int) -> None:
        if count <= 0:
            return
        positions = self._positions(item)
        s = self.s
        if self.update_rule == "cm":
            if self._obs is not None:
                for level, pos in zip(self.levels, positions):
                    index = pos * s + slot
                    before = level.values[index]
                    level.increment(index, count)
                    if before != level.max_value and level.values[index] == level.max_value:
                        self._c_overflow.inc()
                return
            for level, pos in zip(self.levels, positions):
                level.increment(pos * s + slot, count)
            return
        # Bulk conservative update: raise the minimal unsaturated
        # readings to min + count (equals `count` repeated CU inserts).
        readings = []
        minimum = None
        for level, pos in zip(self.levels, positions):
            index = pos * s + slot
            value = level.values[index]
            if value == level.max_value:
                continue
            readings.append((level, index, value))
            if minimum is None or value < minimum:
                minimum = value
        if minimum is None:
            return
        target = minimum + count
        for level, index, value in readings:
            if value < target:
                if target >= level.max_value and self._obs is not None:
                    self._c_overflow.inc()
                level.set(index, min(target, level.max_value))

    def query_slot(self, item: ItemId, slot: int) -> int:
        self._check_slot(slot)
        positions = self._positions(item)
        s = self.s
        best = None
        largest_cap = 0
        for level, pos in zip(self.levels, positions):
            value = level.values[pos * s + slot]
            if value == level.max_value:
                if value > largest_cap:
                    largest_cap = value
                continue
            if best is None or value < best:
                best = value
        return best if best is not None else largest_cap

    def query_slots_positive(self, item: ItemId, slots: Sequence[int]) -> Optional[List[int]]:
        positions = self._positions(item)
        s = self.s
        level_data = [(level.values, level.max_value, pos * s) for level, pos in zip(self.levels, positions)]
        frequencies: List[int] = []
        for slot in slots:
            best = None
            largest_cap = 0
            for values, max_value, base in level_data:
                value = values[base + slot]
                if value == max_value:
                    if value > largest_cap:
                        largest_cap = value
                    continue
                if best is None or value < best:
                    best = value
            frequency = best if best is not None else largest_cap
            if frequency == 0:
                return None
            frequencies.append(frequency)
        return frequencies

    def clear_slot(self, slot: int) -> None:
        self._check_slot(slot)
        s = self.s
        for level in self.levels:
            level.clear_stride(slot, s)

    def merge(self, other: "WindowedFilter") -> "WindowedFilter":
        """Saturating counter-wise add of every sub-counter.

        Exact for the CM update rule (merged sub-counters equal a single
        filter over the concatenated stream, barring saturation); an
        upper bound for the CU rule — either way merged per-slot queries
        never under-report, which is what the Preliminary Condition and
        Potential gate rely on.
        """
        self._check_merge_peer(other)
        if self.update_rule != other.update_rule or self.level_counters != other.level_counters:
            raise MergeError("windowed-array geometries or update rules differ")
        for mine, theirs in zip(self.levels, other.levels):
            mine.merge(theirs)
        return self

    @property
    def memory_bytes(self) -> float:
        return sum(level.memory_bytes for level in self.levels)


class WindowedTower(_WindowedArrays):
    """Windowed TowerSketch -- the paper's Stage-1 structure.

    Level ``i`` (1-based) uses ``2**(i+1)``-bit counters with equal memory
    per level, as in Section III-D1 and Figure 2.
    """

    def __init__(
        self,
        memory_bytes: int,
        s: int,
        d: int = 3,
        update_rule: str = "cm",
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        recorder=None,
    ):
        super().__init__(
            memory_bytes=memory_bytes,
            s=s,
            level_bits=tower_level_widths(d),
            update_rule=update_rule,
            family=family,
            seed=seed,
            hash_family=hash_family,
            recorder=recorder,
        )


class WindowedCM(_WindowedArrays):
    """Windowed plain CM sketch (uniform 32-bit counters)."""

    def __init__(
        self,
        memory_bytes: int,
        s: int,
        d: int = 3,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        recorder=None,
    ):
        super().__init__(
            memory_bytes=memory_bytes,
            s=s,
            level_bits=[32] * d,
            update_rule="cm",
            family=family,
            seed=seed,
            hash_family=hash_family,
            recorder=recorder,
        )


class WindowedCU(_WindowedArrays):
    """Windowed plain CU sketch (uniform 32-bit counters)."""

    def __init__(
        self,
        memory_bytes: int,
        s: int,
        d: int = 3,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        recorder=None,
    ):
        super().__init__(
            memory_bytes=memory_bytes,
            s=s,
            level_bits=[32] * d,
            update_rule="cu",
            family=family,
            seed=seed,
            hash_family=hash_family,
            recorder=recorder,
        )


class WindowedColdFilter(WindowedFilter):
    """Windowed Cold Filter: per-slot two-layer conservative update."""

    def __init__(
        self,
        memory_bytes: int,
        s: int,
        d: int = 3,
        bits1: int = 4,
        bits2: int = 16,
        layer1_fraction: float = 0.5,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
    ):
        super().__init__(s=s, family=family, seed=seed, hash_family=hash_family)
        bytes1 = memory_bytes * layer1_fraction
        bytes2 = memory_bytes - bytes1
        n1 = int(bytes1 / d * 8 // (bits1 * s))
        n2 = int(bytes2 / d * 8 // (bits2 * s))
        if n1 <= 0 or n2 <= 0:
            raise ConfigurationError(
                f"memory_bytes={memory_bytes} too small for a windowed Cold Filter with s={s}"
            )
        self.d = d
        self.n1, self.n2 = n1, n2
        self.layer1 = [CounterArray(n1 * s, bits1) for _ in range(d)]
        self.layer2 = [CounterArray(n2 * s, bits2) for _ in range(d)]
        self.threshold = (1 << bits1) - 1

    def _positions(self, item: ItemId) -> Tuple[int, ...]:
        cached = self._pos_cache.get(item)
        if cached is None:
            family = self.family
            layer1 = tuple(family.hash32(item, i) % self.n1 for i in range(self.d))
            layer2 = tuple(family.hash32(item, self.d + i) % self.n2 for i in range(self.d))
            cached = layer1 + layer2
            self._pos_cache[item] = cached
        return cached

    @staticmethod
    def _cu_increment(mapped) -> None:
        minimum = min(array.get(index) for array, index in mapped)
        for array, index in mapped:
            if array.get(index) == minimum:
                array.increment(index, 1)

    def insert(self, item: ItemId, slot: int) -> None:
        self._check_slot(slot)
        positions = self._positions(item)
        s = self.s
        mapped1 = [
            (self.layer1[i], positions[i] * s + slot) for i in range(self.d)
        ]
        min1 = min(array.get(index) for array, index in mapped1)
        if min1 < self.threshold:
            self._cu_increment(mapped1)
            return
        mapped2 = [
            (self.layer2[i], positions[self.d + i] * s + slot) for i in range(self.d)
        ]
        self._cu_increment(mapped2)

    def query_slot(self, item: ItemId, slot: int) -> int:
        self._check_slot(slot)
        positions = self._positions(item)
        s = self.s
        min1 = min(self.layer1[i].get(positions[i] * s + slot) for i in range(self.d))
        if min1 < self.threshold:
            return min1
        min2 = min(
            self.layer2[i].get(positions[self.d + i] * s + slot) for i in range(self.d)
        )
        return self.threshold + min2

    def merge(self, other: "WindowedFilter") -> "WindowedFilter":
        """Saturating add of both layers.

        Bounded rather than one-sided: mass absorbed by layer 1 on
        *both* sides collapses into a single saturating layer-1 counter,
        so a merged query can sit below the true count by up to the
        layer-1 threshold per merged peer.  It is never below either
        side's own estimate, and a slot positive on either side stays
        positive — the property Stage-1 screening actually relies on.
        """
        self._check_merge_peer(other)
        if self.d != other.d or self.n1 != other.n1 or self.n2 != other.n2:
            raise MergeError("cold-filter geometries differ")
        for mine, theirs in zip(self.layer1, other.layer1):
            mine.merge(theirs)
        for mine, theirs in zip(self.layer2, other.layer2):
            mine.merge(theirs)
        return self

    def clear_slot(self, slot: int) -> None:
        self._check_slot(slot)
        s = self.s
        for array in self.layer1:
            array.clear_stride(slot, s)
        for array in self.layer2:
            array.clear_stride(slot, s)

    @property
    def memory_bytes(self) -> float:
        return sum(a.memory_bytes for a in self.layer1) + sum(a.memory_bytes for a in self.layer2)


class WindowedLogLog(WindowedFilter):
    """Windowed LogLog Filter: per-slot log-scale (Morris) registers."""

    def __init__(
        self,
        memory_bytes: int,
        s: int,
        d: int = 3,
        bits: int = 4,
        family: HashFamily = None,
        seed: int = 0,
        hash_family: str = "crc",
        rng: random.Random = None,
    ):
        super().__init__(s=s, family=family, seed=seed, hash_family=hash_family)
        n_logical = int(memory_bytes / d * 8 // (bits * s))
        if n_logical <= 0:
            raise ConfigurationError(
                f"memory_bytes={memory_bytes} too small for a windowed LogLog Filter with s={s}"
            )
        self.d = d
        self.n_logical = n_logical
        self.registers = [CounterArray(n_logical * s, bits) for _ in range(d)]
        self._rng = rng if rng is not None else random.Random(seed)

    def _positions(self, item: ItemId) -> Tuple[int, ...]:
        cached = self._pos_cache.get(item)
        if cached is None:
            family = self.family
            cached = tuple(family.hash32(item, i) % self.n_logical for i in range(self.d))
            self._pos_cache[item] = cached
        return cached

    def insert(self, item: ItemId, slot: int) -> None:
        self._check_slot(slot)
        positions = self._positions(item)
        s = self.s
        mapped = [(self.registers[i], positions[i] * s + slot) for i in range(self.d)]
        minimum = min(array.get(index) for array, index in mapped)
        if minimum > 0 and self._rng.random() >= 2.0 ** -minimum:
            return
        for array, index in mapped:
            if array.get(index) == minimum:
                array.increment(index, 1)

    def query_slot(self, item: ItemId, slot: int) -> int:
        self._check_slot(slot)
        positions = self._positions(item)
        s = self.s
        minimum = min(
            self.registers[i].get(positions[i] * s + slot) for i in range(self.d)
        )
        return (1 << minimum) - 1

    def merge(self, other: "WindowedFilter") -> "WindowedFilter":
        """Register-wise maximum.

        Morris-style log registers have no exact merge; the maximum is
        the standard approximation (as in HyperLogLog register merges).
        The merged estimate is at least each substream's estimate but
        can under-report the concatenated total — acceptable for a
        Stage-1 *filter*, whose job is positivity screening.
        """
        self._check_merge_peer(other)
        if self.d != other.d or self.n_logical != other.n_logical:
            raise MergeError("loglog-filter geometries differ")
        for mine, theirs in zip(self.registers, other.registers):
            values = mine.values
            for index, value in enumerate(theirs.values):
                if value > values[index]:
                    values[index] = value
        return self

    def clear_slot(self, slot: int) -> None:
        self._check_slot(slot)
        s = self.s
        for array in self.registers:
            array.clear_stride(slot, s)

    @property
    def memory_bytes(self) -> float:
        return sum(array.memory_bytes for array in self.registers)


#: Stage-1 structures selectable by name (Figure 9 of the paper).
WINDOWED_STRUCTURES = ("tower", "cm", "cu", "cold", "loglog")


def make_windowed_filter(
    structure: str,
    memory_bytes: int,
    s: int,
    d: int = 3,
    update_rule: str = "cm",
    family: HashFamily = None,
    seed: int = 0,
    hash_family: str = "crc",
    rng: random.Random = None,
    recorder=None,
) -> WindowedFilter:
    """Build a Stage-1 windowed filter by structure name.

    ``update_rule`` only applies to ``"tower"`` (XS-CM vs XS-CU); the flat
    ``"cm"``/``"cu"`` names carry their rule, Cold Filter is inherently
    conservative-update and LogLog Filter has its own register update.
    ``recorder`` instruments the array-backed structures (tower/cm/cu)
    with overflow counting; the others ignore it.
    """
    if structure == "tower":
        return WindowedTower(
            memory_bytes, s, d=d, update_rule=update_rule,
            family=family, seed=seed, hash_family=hash_family, recorder=recorder,
        )
    if structure == "cm":
        return WindowedCM(
            memory_bytes, s, d=d, family=family, seed=seed, hash_family=hash_family,
            recorder=recorder,
        )
    if structure == "cu":
        return WindowedCU(
            memory_bytes, s, d=d, family=family, seed=seed, hash_family=hash_family,
            recorder=recorder,
        )
    if structure == "cold":
        return WindowedColdFilter(
            memory_bytes, s, d=d, family=family, seed=seed, hash_family=hash_family,
        )
    if structure == "loglog":
        return WindowedLogLog(
            memory_bytes, s, d=d, family=family, seed=seed, hash_family=hash_family, rng=rng,
        )
    known = ", ".join(WINDOWED_STRUCTURES)
    raise ConfigurationError(f"unknown Stage-1 structure {structure!r}; expected one of: {known}")
