"""Prometheus text exposition: render, parse and validate.

``render_text`` produces exposition format 0.0.4 — one ``# HELP`` /
``# TYPE`` pair per metric family followed by its samples; histograms
expand into cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
``_count``.  ``parse_text`` / ``validate_text`` are the inverse used by
tests and the CI smoke job to assert the endpoint stays well-formed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    escape_label_value,
    unescape_label_value,
)


def _format_value(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return _format_value(bound)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_text(labels, extra: str = "") -> str:
    """``{k="v",...}`` suffix for a sample (empty when label-free)."""
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_text(registry: MetricsRegistry) -> str:
    """Render every instrument of ``registry`` in exposition format.

    Instruments sharing a family name (label sets of one metric) are
    grouped so each family gets exactly one ``# HELP`` / ``# TYPE``
    header, as the format requires.
    """
    families: Dict[str, List] = {}
    for instrument in registry:
        families.setdefault(instrument.name, []).append(instrument)
    lines: List[str] = []
    for name, instruments in families.items():
        help_text = next((i.help for i in instruments if i.help), "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {instruments[0].kind}")
        for instrument in instruments:
            labels = instrument.labels
            if isinstance(instrument, Histogram):
                cumulative = instrument.cumulative()
                for bound, count in zip(instrument.bounds, cumulative):
                    le = f'le="{_format_bound(bound)}"'
                    lines.append(f"{name}_bucket{_label_text(labels, le)} {count}")
                inf = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{_label_text(labels, inf)} {instrument.count}"
                )
                lines.append(f"{name}_sum{_label_text(labels)} "
                             f"{_format_value(instrument.sum)}")
                lines.append(f"{name}_count{_label_text(labels)} "
                             f"{instrument.count}")
            else:
                lines.append(f"{name}{_label_text(labels)} "
                             f"{_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def parse_text(text: str) -> Dict[str, float]:
    """Parse exposition text into ``{sample_name_or_labeled: value}``.

    Histogram bucket samples keep their label part as-is, e.g.
    ``'xsketch_stage1_potential_bucket{le="+Inf"}'``.  Malformed lines
    raise ``ValueError`` — the function doubles as a validator.
    """
    samples: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value_text = line.rpartition(" ")
        if not key:
            raise ValueError(f"line {lineno}: no sample name in {raw!r}")
        value_text = value_text.strip()
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)  # raises ValueError on garbage
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = value
    return samples


def parse_labels(sample_key: str) -> Tuple[str, Dict[str, str]]:
    """Split a sample key into ``(name, labels)``, unescaping values.

    The inverse of the labeled sample names :func:`render_text` emits
    (and of :func:`repro.obs.registry.labeled_name`): quoted values may
    contain escaped ``\\``, ``"`` and newlines — and raw ``,``/``=``/
    spaces, which never terminate a quoted value.
    """
    name, brace, rest = sample_key.partition("{")
    if not brace:
        return sample_key, {}
    if not rest.endswith("}"):
        raise ValueError(f"unterminated label set in {sample_key!r}")
    body = rest[:-1]
    labels: Dict[str, str] = {}
    index = 0
    try:
        _parse_label_body(body, labels)
    except (IndexError, ValueError) as exc:
        raise ValueError(f"malformed label set in {sample_key!r}: {exc}") from None
    return name, labels


def _parse_label_body(body: str, labels: Dict[str, str]) -> None:
    index = 0
    while index < len(body):
        eq = body.index("=", index)
        label = body[index:eq]
        if body[eq + 1] != '"':
            raise ValueError("unquoted label value")
        index = eq + 2
        raw = []
        while True:
            ch = body[index]
            if ch == "\\":
                raw.append(body[index:index + 2])
                index += 2
            elif ch == '"':
                index += 1
                break
            else:
                raw.append(ch)
                index += 1
        labels[label] = unescape_label_value("".join(raw))
        if index < len(body):
            if body[index] != ",":
                raise ValueError("garbage after label value")
            index += 1


def validate_text(text: str) -> Tuple[int, int]:
    """Check exposition invariants; returns ``(families, samples)``.

    Raises ``ValueError`` on: duplicate ``# HELP`` / ``# TYPE`` for a
    family, a ``TYPE`` line naming an unknown kind, samples that appear
    before their family's ``TYPE`` line, duplicate samples, or
    unparseable values.  Used by tests and the CI smoke job.
    """
    typed: Dict[str, str] = {}
    helped: set = set()
    sample_count = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            family = line.split(None, 3)[2]
            if family in helped:
                raise ValueError(f"line {lineno}: duplicate HELP for {family!r}")
            helped.add(family)
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            family, kind = parts[2], parts[3]
            if family in typed:
                raise ValueError(f"line {lineno}: duplicate TYPE for {family!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            typed[family] = kind
            continue
        if line.startswith("#"):
            continue
        sample_count += 1
        sample = line.split()[0]
        base = sample.partition("{")[0]
        family = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in typed:
                family = base[: -len(suffix)]
                break
        if family not in typed:
            raise ValueError(f"line {lineno}: sample {sample!r} without a TYPE line")
    parse_text(text)  # duplicate-sample and value checks
    return len(typed), sample_count
