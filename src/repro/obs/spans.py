"""Causal span tracing across the pipeline.

One window boundary flows through three processes — ingest connections
feeding the :class:`~repro.service.window.WindowManager`, shard workers
closing their slice of the window, and replicas applying the published
frame.  A :class:`Tracer` ties those steps into a single tree: every
span carries the window's ``trace_id``, its own ``span_id`` and its
parent's, so the exported events reassemble into one causal tree per
window (:func:`span_trees`) and export to Chrome/Perfetto
``trace_event`` JSON (:func:`chrome_trace`).

Design constraints, mirroring the rest of ``repro.obs``:

off is free
    The default :data:`NULL_TRACER` is inert; components cache
    ``tracer if tracer.enabled else None`` and skip all span work when
    tracing is off, exactly like the :data:`~repro.obs.recorder.NULL_RECORDER`
    gate.

no wall clocks below the service layer
    The tracer reads the wall clock once at construction and derives
    every timestamp from ``time.perf_counter()`` offsets
    (:meth:`Tracer.timestamp`), so hot packages never call
    ``time.time()`` and timestamps within a process are strictly
    monotonic.  Cross-process skew is bounded by dispatch latency: span
    contexts shipped to workers carry the sender's timestamp as the
    receiver's base.

bounded memory
    Events live in a ``deque(maxlen=capacity)`` like the
    :class:`~repro.obs.trace.TraceRing`; ``recorded``/``dropped`` say
    how lossy the window into the past is.

Spans are always closed by scope: either ``with tracer.span(...)`` or a
``try/finally`` calling :meth:`Span.close` (the ``span-unclosed`` lint
rule enforces this).  Long-lived root spans — the per-window root that
opens at the first arrival and closes at publish — are emitted directly
via :meth:`Tracer.emit` with an explicit start/duration instead of
holding a ``Span`` open across callbacks.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanContext",
    "Tracer",
    "chrome_trace",
    "new_span_id",
    "new_trace_id",
    "span_trees",
    "write_spans_jsonl",
]


def new_trace_id() -> str:
    """A fresh 64-bit trace id (hex).  ``os.urandom`` so ids never
    collide across the primary, workers and replicas, and never touch
    the seeded replacement RNG."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 32-bit span id (hex)."""
    return os.urandom(4).hex()


class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``.

    This is what crosses process boundaries — the worker command queue
    and the replica DELTA frame carry its :meth:`to_wire` dict, plus a
    ``ts`` base so the receiver can stamp wall-clock-free timestamps.
    """

    __slots__ = ("trace_id", "span_id", "ts")

    def __init__(self, trace_id: str, span_id: str, ts: float = 0.0):
        self.trace_id = trace_id
        self.span_id = span_id
        self.ts = ts

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "ts": self.ts}

    @classmethod
    def from_wire(cls, state: dict) -> "SpanContext":
        return cls(state["trace_id"], state["span_id"],
                   float(state.get("ts", 0.0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext({self.trace_id}/{self.span_id})"


class Span:
    """One timed operation; emits into its tracer when the scope exits.

    Use as a context manager (``with tracer.span("merge") as span:``);
    :attr:`context` is the handle child spans — possibly in another
    process — parent themselves to.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id",
                 "attrs", "ts", "_start", "_done")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: Optional[str], attrs: dict):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.ts = tracer.timestamp()
        self._start = time.perf_counter()
        self._done = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, self.ts)

    def annotate(self, **attrs) -> None:
        """Attach attributes after the span started (counts, outcomes)."""
        self.attrs.update(attrs)

    def close(self) -> None:
        """Emit the span (idempotent; the ``finally``-path closer)."""
        if self._done:
            return
        self._done = True
        self._tracer.emit(
            self.name,
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            ts=self.ts,
            dur=time.perf_counter() - self._start,
            **self.attrs,
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.close()


class _NullSpan:
    """Inert span: ``with``-able, annotatable, emits nothing."""

    __slots__ = ()

    context = SpanContext("", "")

    def annotate(self, **attrs) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer:
    """The default: tracing off, every operation a no-op."""

    enabled = False
    proc = ""

    _span = _NullSpan()

    def timestamp(self) -> float:
        return 0.0

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        return self._span

    def emit(self, name: str, **fields) -> None:
        pass

    def adopt(self, events: Iterable[dict]) -> None:
        pass

    def events(self, trace_id: Optional[str] = None) -> List[dict]:
        return []


NULL_TRACER = NullTracer()


class Tracer:
    """A per-process span sink with bounded memory.

    ``proc`` names the process in exports (``primary``, ``shard-0``,
    ``replica``); :meth:`adopt` merges span dicts built in other
    processes (worker replies) into this sink.
    """

    enabled = True

    __slots__ = ("proc", "capacity", "recorded", "_events", "_wall0",
                 "_perf0")

    def __init__(self, capacity: int = 4096, proc: str = "primary"):
        self.proc = proc
        self.capacity = capacity
        self.recorded = 0
        self._events: deque = deque(maxlen=capacity)
        self._wall0 = time.time()
        self._perf0 = time.perf_counter()

    # ------------------------------------------------------------------
    # time

    def timestamp(self) -> float:
        """Wall-clock seconds, derived from the perf counter (the wall
        clock itself is read once, at construction)."""
        return self._wall0 + (time.perf_counter() - self._perf0)

    # ------------------------------------------------------------------
    # producing spans

    def span(self, name: str, parent=None, **attrs) -> Span:
        """Open a child span of ``parent`` (a :class:`Span`,
        :class:`SpanContext` or ``None`` for a new trace)."""
        if parent is None:
            trace_id, parent_id = new_trace_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(self, name, trace_id, parent_id, attrs)

    def emit(self, name: str, *, trace_id: str, span_id: str,
             parent_id: Optional[str] = None, ts: float, dur: float,
             **attrs) -> None:
        """Record a completed span directly (root spans whose lifetime
        brackets multiple callbacks, and worker-built span dicts)."""
        event = {
            "name": name,
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "ts": round(ts, 6),
            "dur": round(dur, 6),
            "proc": self.proc,
        }
        if attrs:
            event["attrs"] = attrs
        self.recorded += 1
        self._events.append(event)

    def adopt(self, events: Iterable[dict]) -> None:
        """Merge span dicts produced by another process, keeping their
        ``proc`` stamp (worker replies, replica-side exports)."""
        for event in events:
            self.recorded += 1
            self._events.append(dict(event))

    # ------------------------------------------------------------------
    # reading

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._events)

    def events(self, trace_id: Optional[str] = None) -> List[dict]:
        if trace_id is None:
            return list(self._events)
        return [e for e in self._events if e.get("trace_id") == trace_id]

    def dump_jsonl(self, path) -> int:
        return write_spans_jsonl(self.events(), path)


def write_spans_jsonl(events: Sequence[dict], path) -> int:
    """Write span events as JSON-lines; returns the event count."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)


def span_trees(events: Iterable[dict]) -> Dict[str, dict]:
    """Assemble events into ``{trace_id: tree}``.

    Each tree node is ``{"span": event, "children": [nodes...]}``;
    every trace's value is ``{"roots": [nodes], "orphans": [events]}``
    where orphans name a ``parent_id`` absent from the trace (a dropped
    or still-open parent).  Children sort by start timestamp.
    """
    by_trace: Dict[str, List[dict]] = {}
    for event in events:
        by_trace.setdefault(event.get("trace_id", ""), []).append(event)
    out: Dict[str, dict] = {}
    for trace_id, trace_events in by_trace.items():
        nodes = {
            e["span_id"]: {"span": e, "children": []} for e in trace_events
        }
        roots, orphans = [], []
        for event in trace_events:
            parent_id = event.get("parent_id")
            if parent_id is None:
                roots.append(nodes[event["span_id"]])
            elif parent_id in nodes:
                nodes[parent_id]["children"].append(nodes[event["span_id"]])
            else:
                orphans.append(event)
        for node in nodes.values():
            node["children"].sort(key=lambda n: n["span"].get("ts", 0.0))
        roots.sort(key=lambda n: n["span"].get("ts", 0.0))
        out[trace_id] = {"roots": roots, "orphans": orphans}
    return out


def chrome_trace(events: Iterable[dict]) -> dict:
    """Convert span events to Chrome/Perfetto ``trace_event`` JSON.

    Complete events (``ph="X"``) with microsecond timestamps, one pid
    per originating process plus ``process_name`` metadata, so
    ``chrome://tracing`` and https://ui.perfetto.dev render the
    pipeline timeline directly.
    """
    pids: Dict[str, int] = {}
    trace_events: List[dict] = []
    for event in events:
        proc = event.get("proc", "") or "unknown"
        if proc not in pids:
            pids[proc] = len(pids) + 1
            trace_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pids[proc],
                "tid": 0,
                "args": {"name": proc},
            })
        args = dict(event.get("attrs") or {})
        args["trace_id"] = event.get("trace_id")
        args["span_id"] = event.get("span_id")
        if event.get("parent_id"):
            args["parent_id"] = event["parent_id"]
        trace_events.append({
            "name": event.get("name", "?"),
            "cat": "pipeline",
            "ph": "X",
            "ts": round(event.get("ts", 0.0) * 1e6, 1),
            "dur": round(event.get("dur", 0.0) * 1e6, 1),
            "pid": pids[proc],
            "tid": 0,
            "args": args,
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
