"""Collectors: algorithm counters → canonical registry metrics.

The sketch keeps its decision counters as plain Python ints (free on
the hot path); collectors translate them into the canonical metric
names of the catalog (``docs/OBSERVABILITY.md``) **additively**, so
collecting several sketches into one registry sums them — the same
reduction the sharded coordinator performs over worker snapshots.

Collectors are duck-typed on the counter attributes rather than
importing the algorithm classes, so this module stays import-cycle-free
(everything under ``repro.obs`` depends only on ``repro.errors``).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry

#: Buckets for the Potential histogram ``Λ = |a_k| / (ε + Δ)``: the
#: interesting range straddles G (default 0.5-1.0 in the paper sweeps).
POTENTIAL_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0,
                     5.0, 10.0, 50.0, 100.0)

#: Buckets for the W_min distribution at Stage-2 elections (weights are
#: window counts; long-lasting residents sit far right).
WMIN_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0)

#: Buckets for Stage-2 bucket occupancy (cells used of ``u``).
OCCUPANCY_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)

#: Buckets for wire/engine batch sizes (items per batch).
BATCH_BUCKETS = (16.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
                 4096.0, 8192.0, 16384.0)


def collect_trace_ring(ring, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Expose a flight recorder's loss rate: ``obs_trace_events_total``
    with ``status="recorded"`` / ``status="dropped"`` labels.

    Works on anything with ``recorded``/``dropped`` counters — the
    :class:`~repro.obs.trace.TraceRing` and the span
    :class:`~repro.obs.spans.Tracer` alike.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.counter(
        "obs_trace_events_total",
        "trace events offered to the bounded flight recorder, by outcome",
        labels={"status": "recorded"},
    ).inc(ring.recorded - ring.dropped)
    registry.counter(
        "obs_trace_events_total",
        "trace events offered to the bounded flight recorder, by outcome",
        labels={"status": "dropped"},
    ).inc(ring.dropped)
    return registry


def collect_xsketch(sketch, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Fold one X-Sketch's counters (and its live registry) into ``registry``.

    Works on any object with the :class:`~repro.core.xsketch.XSketch`
    shape (``stats`` property, ``stage1``/``stage2`` attributes, an
    optional ``recorder``).  Counters add into the target registry, so
    calling this once per shard aggregates naturally.
    """
    registry = registry if registry is not None else MetricsRegistry()
    stats = sketch.stats
    registry.counter(
        "xsketch_windows_total", "windows closed by the sketch"
    ).inc(stats.windows)
    registry.counter(
        "xsketch_stage1_arrivals_total",
        "arrivals routed through Stage 1 (item not tracked by Stage 2)",
    ).inc(stats.stage1_arrivals)
    registry.counter(
        "xsketch_stage1_fits_total",
        "short-term fits performed (Preliminary Condition held)",
    ).inc(stats.stage1_fits)
    registry.counter(
        "xsketch_stage1_promotions_total",
        "Stage-1 promotions (Potential reached G)",
    ).inc(stats.promotions)
    registry.counter(
        "xsketch_stage2_inserts_empty_total",
        "promoted items placed in empty Stage-2 cells",
    ).inc(stats.inserts_empty)
    registry.counter(
        "xsketch_stage2_elections_won_total",
        "full-bucket weight elections won (resident replaced)",
    ).inc(stats.replacements_won)
    registry.counter(
        "xsketch_stage2_elections_lost_total",
        "full-bucket weight elections lost (promotion discarded)",
    ).inc(stats.replacements_lost)
    registry.counter(
        "xsketch_stage2_evictions_total",
        "Stage-2 evictions of items silent in the closing window",
    ).inc(stats.evictions_zero)
    registry.counter(
        "xsketch_reports_total", "simplex reports emitted"
    ).inc(stats.reports)
    registry.gauge(
        "xsketch_stage2_tracked_items", "items currently tracked by Stage 2"
    ).inc(stats.stage2_tracked)
    stage1 = getattr(sketch, "stage1", None)
    if stage1 is not None:
        saturated = getattr(stage1.filter, "saturated_counters", None)
        if saturated is not None:
            registry.gauge(
                "xsketch_stage1_saturated_counters",
                "Stage-1 sub-counters sitting at their overflow marker",
            ).inc(saturated())
    cache_info = getattr(getattr(sketch, "tower", None), "cache_info", None)
    if cache_info is not None:
        info = cache_info()
        registry.counter(
            "vectorized_hash_cache_hits_total",
            "batched position lookups answered from the bounded hash cache",
        ).inc(info["hits"])
        registry.counter(
            "vectorized_hash_cache_misses_total",
            "batched position lookups that recomputed hash rows",
        ).inc(info["misses"])
        registry.counter(
            "vectorized_hash_cache_evictions_total",
            "hash-cache entries evicted by the LRU capacity bound",
        ).inc(info["evictions"])
        registry.gauge(
            "vectorized_hash_cache_entries",
            "items currently resident in the bounded hash cache",
        ).inc(info["size"])
    recorder = getattr(sketch, "recorder", None)
    if recorder is not None and recorder.registry is not None:
        registry.merge(recorder.registry)
        trace = getattr(recorder, "trace", None)
        if trace is not None:
            collect_trace_ring(trace, registry)
    return registry


def collect_sharded(sharded, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Coordinator-side metrics of a sharded runtime (no worker I/O).

    The per-worker sketch registries are gathered separately by
    :meth:`repro.runtime.sharded.ShardedXSketch.metrics_registry`, which
    calls this for the coordinator's own counters.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.gauge("runtime_shards", "shards behind the coordinator").set(
        sharded.n_shards
    )
    registry.counter(
        "runtime_items_routed_total", "arrivals routed by the partitioner"
    ).inc(sum(sharded.items_routed))
    registry.counter(
        "runtime_batches_sent_total", "ingest batches dispatched to shards"
    ).inc(sum(sharded.batches_sent))
    registry.counter(
        "runtime_windows_total", "windows closed by the coordinator"
    ).inc(sharded.window)
    depths = [d for d in sharded.queue_depths() if d is not None]
    registry.gauge(
        "runtime_queue_depth", "summed shard command-queue backlog"
    ).set(sum(depths))
    registry.counter(
        "runtime_shard_restarts_total",
        "supervised worker restarts (dead or wedged shards respawned)",
    ).inc(sum(getattr(sharded, "shard_restarts", ())))
    registry.counter(
        "runtime_items_lost_estimate",
        "items estimated lost across supervised restarts (dispatched since "
        "the restored checkpoint minus salvaged queue batches)",
    ).inc(getattr(sharded, "items_lost_estimate", 0))
    registry.counter(
        "runtime_command_retries_total",
        "coordinator commands resent to a restarted shard",
    ).inc(getattr(sharded, "command_retries", 0))
    registry.counter(
        "runtime_close_errors_total",
        "errors swallowed (but recorded) by the shutdown path",
    ).inc(len(getattr(sharded, "close_errors", ())))
    registry.counter(
        "runtime_merged_cache_hits_total",
        "merged_sketch() calls answered from the per-window memo",
    ).inc(getattr(sharded, "merged_cache_hits", 0))
    registry.counter(
        "runtime_merged_cache_misses_total",
        "merged_sketch() calls that re-merged per-shard snapshots",
    ).inc(getattr(sharded, "merged_cache_misses", 0))
    # The coordinator's phase-profiler histograms deliberately stay out
    # of this collector: the canonical registry is a cross-backend
    # determinism surface (inline == process byte-for-byte), and wall
    # timings can never satisfy that.  The service layer folds
    # ``sharded.coordinator_metrics`` into its own exposition instead.
    return registry


def collect_temporal(store, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Fold a temporal store's ladder shape and counters into ``registry``.

    Works on any object with the
    :class:`~repro.temporal.store.TemporalStore` shape (a published
    ``snapshot`` with ``nodes``/``depth``, lifetime counters, a
    ``metrics`` registry with the query fan-in histogram).  Gauges
    describe the *published* snapshot — the O(log W) retention bound is
    directly visible as ``temporal_nodes`` staying flat while
    ``temporal_windows_covered`` grows.
    """
    registry = registry if registry is not None else MetricsRegistry()
    snapshot = store.snapshot
    covered = (
        snapshot.tip - snapshot.base
        if snapshot.tip is not None and snapshot.base is not None
        else 0
    )
    registry.gauge(
        "temporal_nodes", "ladder nodes currently retained"
    ).inc(len(snapshot.nodes))
    registry.gauge(
        "temporal_ladder_depth", "highest dyadic level present (-1 when empty)"
    ).set(snapshot.depth)
    registry.gauge(
        "temporal_windows_covered", "closed windows covered by the ladder"
    ).inc(covered)
    registry.gauge(
        "temporal_bytes_retained", "accounted hot bytes held by the ladder"
    ).inc(store.memory_bytes)
    registry.gauge(
        "temporal_asof_snapshots",
        "nodes still carrying a full merged-sketch snapshot",
    ).inc(sum(1 for node in snapshot.nodes if node.asof is not None))
    registry.counter(
        "temporal_windows_total", "windows sealed into the ladder"
    ).inc(store.windows_observed)
    registry.counter(
        "temporal_items_total", "arrivals observed by the temporal tier"
    ).inc(store.items_observed)
    registry.counter(
        "temporal_coarsenings_total",
        "dyadic sibling merges performed by the retention ladder",
    ).inc(snapshot.coarsenings)
    registry.counter(
        "temporal_spills_total", "node payloads written to the cold tier"
    ).inc(store.spills)
    registry.counter(
        "temporal_cold_loads_total",
        "spilled node payloads reloaded to answer queries or coarsen",
    ).inc(store.cold_loads)
    registry.counter(
        "temporal_range_queries_total", "range queries composed from the ladder"
    ).inc(store.range_queries)
    registry.merge(store.metrics)
    return registry


def collect_publisher(publisher, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Publish-side metrics of a slim-snapshot publisher.

    Works on any object with the
    :class:`~repro.replica.publisher.SnapshotPublisher` shape (sequence
    and window gauges, fan-out counters, a live subscriber set).
    Exposed on the *ingest* service's ``/metrics`` whenever publishing
    is enabled, replicas connected or not.
    """
    registry = registry if registry is not None else MetricsRegistry()
    registry.gauge(
        "service_published_seq", "sequence number of the last published snapshot"
    ).set(publisher.seq)
    registry.gauge(
        "service_published_window", "window of the last published snapshot"
    ).set(publisher.window)
    registry.gauge(
        "service_publish_subscribers", "replica subscribers currently connected"
    ).set(publisher.subscriber_count)
    registry.counter(
        "service_publish_deltas_total", "DELTA frames fanned out to subscribers"
    ).inc(publisher.deltas_sent)
    registry.counter(
        "service_publish_snapshots_total",
        "full SNAPSHOT frames sent (initial syncs and fallbacks)",
    ).inc(publisher.snapshots_sent)
    registry.counter(
        "service_publish_heartbeats_total", "HEARTBEAT frames fanned out"
    ).inc(publisher.heartbeats_sent)
    registry.counter(
        "service_publish_disconnects_total",
        "subscribers dropped (slow consumers and dead sockets)",
    ).inc(publisher.disconnects)
    return registry


def collect_replica(replica, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Read-side metrics of a :class:`~repro.replica.server.ReplicaServer`.

    Duck-typed on the replica's counters and its pinned state, so the
    collector needs no import of the replica package.  The staleness
    bound surfaced by ``/healthz`` (sequence, age in windows, link
    state) is mirrored here as gauges for dashboards.
    """
    registry = registry if registry is not None else MetricsRegistry()
    state = replica.state
    registry.gauge(
        "replica_snapshot_seq", "sequence of the snapshot answering queries"
    ).set(state.seq if state is not None else -1)
    registry.gauge(
        "replica_snapshot_window", "window of the snapshot answering queries"
    ).set(state.window if state is not None else -1)
    registry.gauge(
        "replica_snapshot_age_windows",
        "publisher windows ahead of the applied snapshot (staleness bound)",
    ).set(replica.snapshot_age_windows)
    registry.gauge(
        "replica_connected", "1 while the subscriber link is up"
    ).set(1 if replica.connected else 0)
    registry.gauge(
        "replica_reports", "reports in the applied snapshot"
    ).set(len(state.reports) if state is not None else 0)
    registry.counter(
        "replica_full_syncs_total", "full SNAPSHOT frames applied"
    ).inc(replica.full_syncs)
    registry.counter(
        "replica_deltas_applied_total", "DELTA frames applied"
    ).inc(replica.deltas_applied)
    registry.counter(
        "replica_heartbeats_total", "HEARTBEAT frames received"
    ).inc(replica.heartbeats)
    registry.counter(
        "replica_reconnects_total", "subscriber reconnect attempts"
    ).inc(replica.reconnects)
    registry.counter(
        "replica_queries_total", "HTTP queries answered from the snapshot"
    ).inc(replica.queries)
    return registry


def collect_service(service, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Service-level metrics of a :class:`~repro.service.server.StreamService`."""
    registry = registry if registry is not None else MetricsRegistry()
    manager = service.manager
    registry.counter(
        "service_connections_accepted_total", "ingest connections accepted"
    ).inc(service.connections_accepted)
    registry.gauge(
        "service_connections_open", "ingest connections currently open"
    ).set(len(service._connections))
    registry.counter(
        "service_items_ingested_total", "items admitted into windows"
    ).inc(manager.items_total)
    registry.counter(
        "service_items_dropped_total", "items dropped by the overload policy"
    ).inc(service.dropped_items)
    registry.counter(
        "service_windows_closed_total", "windows closed by the window manager"
    ).inc(manager.windows_closed)
    registry.counter(
        "service_engine_batches_total", "micro-batches handed to the engine"
    ).inc(manager.engine_batches)
    registry.counter(
        "service_reports_total", "reports in the published snapshot"
    ).inc(len(manager.snapshot.reports))
    registry.gauge(
        "service_queue_depth", "summed per-connection queue backlog (batches)"
    ).set(sum(conn.queue.qsize() for conn in service._connections))
    registry.gauge(
        "service_healthy", "1 while no engine failure is recorded"
    ).set(0 if service.failure is not None else 1)
    registry.merge(manager.metrics)
    return registry
