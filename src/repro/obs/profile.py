"""Per-window phase profiler: where does a window boundary spend time?

The profiler is a thin facade over one labeled histogram family,
``pipeline_phase_seconds{phase=...}`` — each pipeline layer observes
the wall time of its phases (ingest, window close, shard dispatch,
merge, temporal append, publish, replica apply) into its own registry,
and the existing additive collection folds them into one ``/metrics``
view and the ``repro stats --phases`` table.

Observations are per *window boundary* (or per wire batch), never per
arrival, so the profiler is cheap enough to stay always-on where a
registry already exists (the window manager, the sharded coordinator).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List

from repro.obs.registry import DURATION_BUCKETS, Histogram, MetricsRegistry

__all__ = [
    "PHASE_METRIC",
    "PHASE_NAMES",
    "PhaseProfiler",
    "phase_rows",
    "phase_rows_from_samples",
    "phase_table",
]

#: the one histogram family every layer's profiler feeds
PHASE_METRIC = "pipeline_phase_seconds"

#: every phase label the pipeline observes — the catalog the
#: ``surface-drift`` contract rule checks profiler call sites and the
#: docs/OBSERVABILITY.md phase table against; add the label here (and
#: to the doc table) before observing a new phase
PHASE_NAMES = (
    "checkpoint",
    "dispatch",
    "flush",
    "ingest",
    "merge",
    "publish",
    "shard",
    "snapshot",
    "temporal",
    "window",
)

_HELP = "wall seconds spent per pipeline phase"


class PhaseProfiler:
    """Labeled-histogram writer for one layer's phases."""

    __slots__ = ("registry", "_phases")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._phases: Dict[str, Histogram] = {}

    def observe(self, phase: str, seconds: float) -> None:
        histogram = self._phases.get(phase)
        if histogram is None:
            histogram = self.registry.histogram(
                "pipeline_phase_seconds", _HELP,
                buckets=DURATION_BUCKETS, labels={"phase": phase},
            )
            self._phases[phase] = histogram
        histogram.observe(seconds)

    @contextmanager
    def phase(self, name: str):
        """Time a block: ``with profiler.phase("merge"): ...``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)


def _estimate_quantile(histogram: Histogram, q: float) -> float:
    """Nearest-bucket-bound quantile estimate from cumulative counts."""
    if histogram.count == 0:
        return 0.0
    rank = q * histogram.count
    cumulative = histogram.cumulative()
    for bound, count in zip(histogram.bounds, cumulative):
        if count >= rank:
            return bound
    return float("inf")


def phase_rows(registry: MetricsRegistry) -> List[dict]:
    """Phase breakdown rows from a (merged) registry, sorted by total
    time descending: ``{phase, count, total, mean, p50, p99}``."""
    rows = []
    for instrument in registry:
        if instrument.name != PHASE_METRIC or not isinstance(instrument, Histogram):
            continue
        labels = dict(instrument.labels)
        count = instrument.count
        rows.append({
            "phase": labels.get("phase", "?"),
            "count": count,
            "total": round(instrument.sum, 6),
            "mean": round(instrument.sum / count, 6) if count else 0.0,
            "p50": _estimate_quantile(instrument, 0.50),
            "p99": _estimate_quantile(instrument, 0.99),
        })
    rows.sort(key=lambda row: row["total"], reverse=True)
    return rows


def _quantile_from_cumulative(count: float, cumulative, q: float) -> float:
    if count == 0:
        return 0.0
    rank = q * count
    for bound, cum in cumulative:
        if cum >= rank:
            return bound
    return float("inf")


def phase_rows_from_samples(samples: Dict[str, float]) -> List[dict]:
    """:func:`phase_rows`, but over exposition samples scraped from a
    live service (``repro stats --port``: ``parse_text`` output)."""
    from repro.obs.expo import parse_labels

    totals: Dict[str, float] = {}
    counts: Dict[str, float] = {}
    buckets: Dict[str, List] = {}
    for key, value in samples.items():
        name, labels = parse_labels(key)
        phase = labels.get("phase")
        if phase is None:
            continue
        if name == PHASE_METRIC + "_sum":
            totals[phase] = value
        elif name == PHASE_METRIC + "_count":
            counts[phase] = value
        elif name == PHASE_METRIC + "_bucket":
            buckets.setdefault(phase, []).append((float(labels["le"]), value))
    rows = []
    for phase, count in counts.items():
        cumulative = sorted(buckets.get(phase, ()))
        total = totals.get(phase, 0.0)
        rows.append({
            "phase": phase,
            "count": int(count),
            "total": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "p50": _quantile_from_cumulative(count, cumulative, 0.50),
            "p99": _quantile_from_cumulative(count, cumulative, 0.99),
        })
    rows.sort(key=lambda row: row["total"], reverse=True)
    return rows


def phase_table(source) -> str:
    """The ``repro stats --phases`` rendering: pass a
    :class:`MetricsRegistry` or a ``parse_text`` samples dict."""
    if isinstance(source, dict):
        rows = phase_rows_from_samples(source)
    else:
        rows = phase_rows(source)
    if not rows:
        return "no phase timings recorded (pipeline_phase_seconds is empty)"
    header = f"{'phase':<16} {'count':>8} {'total_s':>10} {'mean_s':>10} {'p50_s':>9} {'p99_s':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['phase']:<16} {row['count']:>8} {row['total']:>10.4f} "
            f"{row['mean']:>10.6f} {row['p50']:>9.4f} {row['p99']:>9.4f}"
        )
    grand = sum(row["total"] for row in rows)
    lines.append(f"{'(sum)':<16} {'':>8} {grand:>10.4f}")
    return "\n".join(lines)
