"""Lock-cheap metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the aggregation substrate of the observability layer
(``docs/OBSERVABILITY.md``).  Three design constraints shape it:

cheap on the hot path
    Instruments are plain ``__slots__`` objects mutating Python ints and
    floats; under the GIL a single ``+=`` is atomic enough for the
    single-writer contexts they live in (one sketch, one shard worker,
    one event loop), so there are no locks anywhere.

mergeable like sketch state
    A registry implements the same ``merge(other) -> self`` reduction
    protocol as every sketch in :mod:`repro.runtime.mergeable`, so
    per-shard registries fold into one coordinator view with
    :func:`repro.runtime.mergeable.merge_all`.  Counters and gauges add
    (gauges in this codebase are additive facts: tracked items, queue
    depth, saturated counters); histograms add bucket-wise and require
    identical bounds.

picklable snapshots
    ``snapshot()`` / ``from_snapshot()`` round-trip through plain JSON
    types, so the shard worker protocol can carry a registry over a
    multiprocessing queue and the coordinator can merge it without the
    worker's objects.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, MergeError

#: Prometheus metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Prometheus label-name grammar (no colons, unlike metric names).
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bounds: log-ish spread covering counts and ratios.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)

#: Bounds for duration histograms (seconds), used by recorder spans.
DURATION_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

Number = Union[int, float]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


Labels = Tuple[Tuple[str, str], ...]


def _check_labels(labels) -> Labels:
    """Canonicalise a label mapping: sorted ``((name, value), ...)``."""
    if not labels:
        return ()
    items = labels.items() if hasattr(labels, "items") else labels
    out = []
    for key, value in items:
        if not _LABEL_RE.match(key):
            raise ConfigurationError(f"invalid label name {key!r}")
        out.append((key, str(value)))
    return tuple(sorted(out))


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, LF."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value` (single left-to-right pass)."""
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def labeled_name(name: str, labels: Labels) -> str:
    """The full exposition sample name: ``name`` or ``name{k="v",...}``.

    This string doubles as the registry's storage key for labeled
    instruments, so ``parse_text(render_text(r))`` keys match
    ``registry.key`` exactly.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "key", "value")

    def __init__(self, name: str, help: str = "", labels=None):
        self.name = _check_name(name)
        self.help = help
        self.labels: Labels = _check_labels(labels)
        self.key = labeled_name(self.name, self.labels)
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> dict:
        state = {"kind": self.kind, "name": self.name, "help": self.help,
                 "value": self.value}
        if self.labels:
            state["labels"] = dict(self.labels)
        return state

    def restore(self, state: dict) -> None:
        self.value = state["value"]


class Gauge:
    """Point-in-time value.  Merges by addition (see module docstring)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "key", "value")

    def __init__(self, name: str, help: str = "", labels=None):
        self.name = _check_name(name)
        self.help = help
        self.labels: Labels = _check_labels(labels)
        self.key = labeled_name(self.name, self.labels)
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def merge(self, other: "Gauge") -> None:
        self.value += other.value

    def snapshot(self) -> dict:
        state = {"kind": self.kind, "name": self.name, "help": self.help,
                 "value": self.value}
        if self.labels:
            state["labels"] = dict(self.labels)
        return state

    def restore(self, state: dict) -> None:
        self.value = state["value"]


class Histogram:
    """Fixed-bound histogram (Prometheus classic shape).

    ``bounds`` are the finite upper bucket bounds, strictly increasing;
    an implicit ``+Inf`` bucket catches the rest.  Buckets are stored
    non-cumulative and rendered cumulative at exposition time.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "key", "bounds", "bucket_counts",
                 "count", "sum")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[Number] = DEFAULT_BUCKETS, labels=None):
        self.name = _check_name(name)
        self.help = help
        self.labels: Labels = _check_labels(labels)
        self.key = labeled_name(self.name, self.labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs at least one bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} bounds must be strictly increasing: {bounds}"
            )
        self.bounds: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        # le is inclusive: the first bound >= value owns the observation.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise MergeError(
                f"histogram {self.name} bounds differ: {self.bounds} vs {other.bounds}"
            )
        for i, count in enumerate(other.bucket_counts):
            self.bucket_counts[i] += count
        self.count += other.count
        self.sum += other.sum

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts in bound order (ending at ``count``)."""
        total = 0
        out = []
        for count in self.bucket_counts:
            total += count
            out.append(total)
        return out

    def snapshot(self) -> dict:
        state = {"kind": self.kind, "name": self.name, "help": self.help,
                 "bounds": list(self.bounds), "buckets": list(self.bucket_counts),
                 "count": self.count, "sum": self.sum}
        if self.labels:
            state["labels"] = dict(self.labels)
        return state

    def restore(self, state: dict) -> None:
        if tuple(state["bounds"]) != self.bounds:  # pragma: no cover - defensive
            raise MergeError(f"histogram {self.name} snapshot bounds differ")
        self.bucket_counts = list(state["buckets"])
        self.count = state["count"]
        self.sum = state["sum"]


Instrument = Union[Counter, Gauge, Histogram]

_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A named collection of instruments, mergeable and snapshotable.

    Instruments may carry labels; each ``(name, labels)`` combination is
    its own instrument, stored under the full exposition sample name
    (``name{k="v"}``).  All label sets of a family share one kind —
    exposition emits one ``TYPE`` line per family.
    """

    def __init__(self):
        self._metrics: Dict[str, Instrument] = {}
        #: family name -> kind, enforcing one kind per exposition family
        self._family_kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # instrument creation (get-or-create, kind-checked)

    def _get_or_create(self, cls, name: str, help: str, labels=None,
                       **kwargs) -> Instrument:
        key = labeled_name(_check_name(name), _check_labels(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {key!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        family_kind = self._family_kinds.get(name)
        if family_kind is not None and family_kind != cls.kind:
            raise ConfigurationError(
                f"metric family {name!r} already registered as {family_kind}, "
                f"requested {cls.kind}"
            )
        instrument = cls(name, help, labels=labels, **kwargs)
        self._metrics[instrument.key] = instrument
        self._family_kinds[name] = cls.kind
        return instrument

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        return self._get_or_create(Counter, name, help, labels=labels)

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels=labels)

    def histogram(
        self, name: str, help: str = "",
        buckets: Sequence[Number] = DEFAULT_BUCKETS, labels=None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels=labels,
                                   buckets=buckets)

    # ------------------------------------------------------------------
    # reading

    def get(self, name: str, labels=None) -> Optional[Instrument]:
        return self._metrics.get(labeled_name(name, _check_labels(labels)))

    def value(self, name: str, default: Number = 0, labels=None) -> Number:
        """Scalar value of a counter/gauge (``default`` when absent)."""
        instrument = self.get(name, labels)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            raise ConfigurationError(f"metric {name!r} is a histogram; use get()")
        return instrument.value

    def names(self) -> List[str]:
        return list(self._metrics)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict:
        """Flat JSON-safe view: scalars for counters/gauges, dicts for
        histograms.  The CLI ``stats`` view and tests read this."""
        out: dict = {}
        for instrument in self._metrics.values():
            if isinstance(instrument, Histogram):
                out[instrument.key] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": dict(zip(
                        [str(b) for b in instrument.bounds] + ["+Inf"],
                        instrument.cumulative(),
                    )),
                }
            else:
                out[instrument.key] = instrument.value
        return out

    # ------------------------------------------------------------------
    # reduction (the Mergeable protocol of repro.runtime.mergeable)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry; returns ``self``.

        Unknown metrics are adopted (same kind and, for histograms, same
        bounds as on the other side); known ones reduce kind-wise.
        """
        for key, theirs in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                labels = theirs.labels
                if isinstance(theirs, Histogram):
                    mine = self.histogram(theirs.name, theirs.help,
                                          buckets=theirs.bounds, labels=labels)
                elif isinstance(theirs, Gauge):
                    mine = self.gauge(theirs.name, theirs.help, labels=labels)
                else:
                    mine = self.counter(theirs.name, theirs.help, labels=labels)
            elif mine.kind != theirs.kind:
                raise MergeError(
                    f"metric {key!r} kind mismatch: {mine.kind} vs {theirs.kind}"
                )
            mine.merge(theirs)
        return self

    # ------------------------------------------------------------------
    # snapshots (picklable / JSON-safe; the worker protocol payload)

    def snapshot(self) -> dict:
        return {"metrics": [m.snapshot() for m in self._metrics.values()]}

    @classmethod
    def from_snapshot(cls, state: dict) -> "MetricsRegistry":
        registry = cls()
        for entry in state["metrics"]:
            kind = entry["kind"]
            if kind not in _KINDS:
                raise ConfigurationError(f"unknown metric kind {kind!r}")
            labels = entry.get("labels")
            if kind == "histogram":
                instrument = registry.histogram(
                    entry["name"], entry["help"], buckets=entry["bounds"],
                    labels=labels,
                )
            elif kind == "gauge":
                instrument = registry.gauge(entry["name"], entry["help"],
                                            labels=labels)
            else:
                instrument = registry.counter(entry["name"], entry["help"],
                                              labels=labels)
            instrument.restore(entry)
        return registry

    def merge_snapshot(self, state: dict) -> "MetricsRegistry":
        """Merge a :meth:`snapshot` payload (coordinator-side reduction)."""
        return self.merge(MetricsRegistry.from_snapshot(state))

    # ------------------------------------------------------------------
    # exposition

    def render_text(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        from repro.obs.expo import render_text

        return render_text(self)
