"""Bounded structured trace ring.

A :class:`TraceRing` keeps the last ``capacity`` decision events —
promotions, elections, evictions, reports, spans — as plain dicts, so a
finished (or crashed) run can answer "why was item X (not) reported?"
without any external tooling.  Events carry wall-clock timestamps and
whatever context the instrumentation point attached (item, window,
potential, W_min, ...).  ``dump_jsonl`` writes one JSON object per line.

The ring is deliberately lossy: it is a flight recorder, not a log
pipeline.  ``recorded`` / ``dropped`` make the loss visible.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Dict, Iterable, List, Optional

#: Default ring capacity (events).
DEFAULT_CAPACITY = 4096


def write_jsonl(events: Iterable[Dict], path) -> int:
    """Write ``events`` to ``path`` as JSONL; returns the line count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, default=str))
            handle.write("\n")
            count += 1
    return count


class TraceRing:
    """Last-``capacity`` structured events, oldest first."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        #: events ever recorded (including those since rotated out)
        self.recorded = 0

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound so far."""
        return self.recorded - len(self._events)

    def record(self, kind: str, **fields) -> None:
        """Append one event; ``kind`` plus arbitrary JSON-safe context."""
        self.recorded += 1
        event = {"ts": round(time.time(), 6), "kind": kind}
        event.update(fields)
        self._events.append(event)

    def extend(self, events: Iterable[Dict]) -> None:
        """Adopt already-built events (merging per-shard rings)."""
        for event in events:
            self.recorded += 1
            self._events.append(event)

    def events(self, kind: Optional[str] = None) -> List[Dict]:
        """The retained events, optionally filtered by ``kind``."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.get("kind") == kind]

    def for_item(self, item) -> List[Dict]:
        """Events mentioning ``item`` — the "why (not) reported?" query."""
        wanted = str(item)
        return [
            event for event in self._events
            if str(event.get("item", "")) == wanted
        ]

    def clear(self) -> None:
        self._events.clear()

    def dump_jsonl(self, path) -> int:
        """Write the retained events to ``path`` as JSONL."""
        return write_jsonl(self._events, path)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
