"""Declarative SLOs with multi-window burn rates over registry metrics.

An :class:`Objective` names a target fraction of *good events* and how
to count good/total from a :class:`~repro.obs.registry.MetricsRegistry`:

``latency``
    good = histogram observations at or under ``threshold`` seconds
    (the cumulative count of the tightest bucket bound >= threshold),
    total = all observations.  Works on any registry histogram,
    including labeled families like ``pipeline_phase_seconds{phase=...}``.

``ratio``
    good = total - bad, with ``bad_metrics`` / ``total_metrics`` each a
    sum of counters (e.g. items lost out of items ingested).

``gauge``
    each evaluation is one event; good when every matching gauge
    satisfies ``op``/``threshold`` (e.g. replica staleness <= 2).

The :class:`SloEngine` samples the good/total counts on demand — every
``/slo`` or ``/healthz`` evaluation appends one timestamped sample —
and reports, per lookback window, the bad fraction of the events that
*arrived inside that window* and the **burn rate**
``bad_fraction / (1 - target)``: 1.0 burns the error budget exactly at
the sustainable pace, >1 exhausts it early.  Multi-window burn rates
(fast/mid/slow) are the standard alerting shape: a fault spikes the
short window first, and recovery drains the windows in the same order.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.registry import Histogram, MetricsRegistry

__all__ = ["Objective", "SloEngine", "primary_objectives", "replica_objectives"]

_KINDS = ("latency", "ratio", "gauge")
_OPS = ("le", "ge")

#: default lookback windows (seconds): fast / mid / slow burn
DEFAULT_WINDOWS = (60.0, 300.0, 900.0)


class Objective:
    """One service-level objective (treat as immutable; see module
    docstring)."""

    __slots__ = ("name", "description", "kind", "target", "metric",
                 "labels", "threshold", "op", "bad_metrics", "total_metrics")

    def __init__(self, name: str, description: str, kind: str, target: float,
                 metric: str = "", labels: Optional[dict] = None,
                 threshold: float = 0.0, op: str = "le",
                 bad_metrics: Sequence[str] = (),
                 total_metrics: Sequence[str] = ()):
        if kind not in _KINDS:
            raise ConfigurationError(f"objective {name!r}: unknown kind {kind!r}")
        if not 0.0 < target < 1.0:
            raise ConfigurationError(
                f"objective {name!r}: target must be in (0, 1), got {target}"
            )
        if op not in _OPS:
            raise ConfigurationError(f"objective {name!r}: unknown op {op!r}")
        if kind == "ratio":
            if not bad_metrics or not total_metrics:
                raise ConfigurationError(
                    f"objective {name!r}: ratio needs bad_metrics and total_metrics"
                )
        elif not metric:
            raise ConfigurationError(f"objective {name!r}: metric is required")
        self.name = name
        self.description = description
        self.kind = kind
        self.target = float(target)
        self.metric = metric
        self.labels = tuple(sorted((labels or {}).items()))
        self.threshold = float(threshold)
        self.op = op
        self.bad_metrics = tuple(bad_metrics)
        self.total_metrics = tuple(total_metrics)

    # ------------------------------------------------------------------

    def _matching(self, registry: MetricsRegistry, name: str):
        want = dict(self.labels)
        for instrument in registry:
            if instrument.name != name:
                continue
            have = dict(instrument.labels)
            if all(have.get(k) == v for k, v in want.items()):
                yield instrument

    def counts(self, registry: MetricsRegistry) -> Tuple[float, float]:
        """Cumulative ``(good, total)`` event counts from ``registry``."""
        if self.kind == "latency":
            good = total = 0.0
            for histogram in self._matching(registry, self.metric):
                if not isinstance(histogram, Histogram):
                    continue
                cumulative = histogram.cumulative()
                within = histogram.count  # every bound above threshold
                for bound, count in zip(histogram.bounds, cumulative):
                    if bound >= self.threshold:
                        within = count
                        break
                good += within
                total += histogram.count
            return good, total
        if self.kind == "ratio":
            bad = sum(
                sum(i.value for i in self._matching(registry, name))
                for name in self.bad_metrics
            )
            total = sum(
                sum(i.value for i in self._matching(registry, name))
                for name in self.total_metrics
            )
            total = max(total, bad)
            return total - bad, total
        # gauge: one event per evaluation, good when every sample passes
        samples = [i.value for i in self._matching(registry, self.metric)]
        if not samples:
            return 0.0, 0.0
        if self.op == "le":
            ok = all(value <= self.threshold for value in samples)
        else:
            ok = all(value >= self.threshold for value in samples)
        return (1.0 if ok else 0.0), 1.0

    def describe(self) -> dict:
        spec: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "target": self.target,
        }
        if self.kind == "ratio":
            spec["bad_metrics"] = list(self.bad_metrics)
            spec["total_metrics"] = list(self.total_metrics)
        else:
            spec["metric"] = self.metric
            if self.labels:
                spec["labels"] = dict(self.labels)
            spec["threshold"] = self.threshold
            if self.kind == "gauge":
                spec["op"] = self.op
        return spec


class SloEngine:
    """Burn-rate evaluation over on-demand samples of a registry.

    ``registry_fn`` builds (or returns) the registry to read — for the
    service that is the merged collector view, so sampling never blocks
    the ingest path.  Gauge objectives accumulate one event per sample;
    counter/histogram objectives difference cumulative counts across
    the lookback window, so burn rates move as soon as bad events land
    and recover once the window slides past them.
    """

    __slots__ = ("objectives", "_registry_fn", "windows", "_samples")

    def __init__(self, objectives: Sequence[Objective],
                 registry_fn: Callable[[], MetricsRegistry],
                 windows: Sequence[float] = DEFAULT_WINDOWS,
                 max_samples: int = 4096):
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate objective names in {names}")
        self.objectives = tuple(objectives)
        self._registry_fn = registry_fn
        self.windows = tuple(float(w) for w in windows)
        #: (monotonic_ts, {objective: (good, total)}), oldest first
        self._samples: deque = deque(maxlen=max_samples)

    def sample(self) -> None:
        """Append one timestamped good/total snapshot per objective.

        Gauge counts are accumulated (each sample is an event); counter
        and histogram counts are cumulative and differenced later.
        """
        registry = self._registry_fn()
        now = time.monotonic()
        previous = self._samples[-1][1] if self._samples else {}
        counts: Dict[str, Tuple[float, float]] = {}
        for objective in self.objectives:
            good, total = objective.counts(registry)
            if objective.kind == "gauge":
                prior_good, prior_total = previous.get(objective.name, (0.0, 0.0))
                good, total = prior_good + good, prior_total + total
            counts[objective.name] = (good, total)
        self._samples.append((now, counts))

    def evaluate(self) -> dict:
        """Sample, then report burn rates per objective and window."""
        self.sample()
        now, latest = self._samples[-1]
        report: Dict[str, object] = {"windows_seconds": list(self.windows)}
        objectives: List[dict] = []
        worst: Optional[dict] = None
        for objective in self.objectives:
            good_now, total_now = latest[objective.name]
            budget = 1.0 - objective.target
            entry = objective.describe()
            entry["windows"] = {}
            breaching = False
            for window in self.windows:
                base_good, base_total = 0.0, 0.0
                for ts, counts in self._samples:
                    if ts >= now - window:
                        break
                    base_good, base_total = counts.get(
                        objective.name, (0.0, 0.0)
                    )
                good = good_now - base_good
                total = total_now - base_total
                bad_fraction = 1.0 - good / total if total > 0 else 0.0
                burn = bad_fraction / budget
                entry["windows"][str(int(window))] = {
                    "events": round(total, 3),
                    "bad_fraction": round(bad_fraction, 6),
                    "burn_rate": round(burn, 4),
                }
                breaching = breaching or burn >= 1.0
            entry["breaching"] = breaching
            max_burn = max(
                w["burn_rate"] for w in entry["windows"].values()
            )
            entry["max_burn_rate"] = max_burn
            objectives.append(entry)
            if worst is None or max_burn > worst["max_burn_rate"]:
                worst = entry
        report["objectives"] = objectives
        report["breaching"] = sorted(
            entry["name"] for entry in objectives if entry["breaching"]
        )
        report["worst"] = (
            {"name": worst["name"], "max_burn_rate": worst["max_burn_rate"]}
            if worst is not None else None
        )
        return report

    def summary(self) -> dict:
        """The compact ``/healthz`` block: worst burn + breaching names."""
        report = self.evaluate()
        return {
            "breaching": report["breaching"],
            "worst": report["worst"],
        }


def primary_objectives() -> Tuple[Objective, ...]:
    """The primary tier's default SLO catalog (see docs/OBSERVABILITY.md)."""
    return (
        Objective(
            "ingest-latency",
            "99% of wire batches admitted into a window within 100ms",
            kind="latency", target=0.99,
            metric="pipeline_phase_seconds", labels={"phase": "ingest"},
            threshold=0.1,
        ),
        Objective(
            "window-latency",
            "99% of window boundaries closed end-to-end within 2.5s",
            kind="latency", target=0.99,
            metric="pipeline_phase_seconds", labels={"phase": "window"},
            threshold=2.5,
        ),
        Objective(
            "item-loss",
            "99.9% of routed items neither dropped by overload nor lost to restarts",
            kind="ratio", target=0.999,
            bad_metrics=("service_items_dropped_total",
                         "runtime_items_lost_estimate"),
            total_metrics=("service_items_ingested_total",
                           "service_items_dropped_total"),
        ),
    )


def replica_objectives() -> Tuple[Objective, ...]:
    """The replica tier's default SLO catalog."""
    return (
        Objective(
            "replica-staleness",
            "99% of checks find the replica at most 2 windows behind",
            kind="gauge", target=0.99,
            metric="replica_snapshot_age_windows", threshold=2.0, op="le",
        ),
        Objective(
            "replica-connected",
            "99% of checks find the subscriber link up",
            kind="gauge", target=0.99,
            metric="replica_connected", threshold=1.0, op="ge",
        ),
    )
