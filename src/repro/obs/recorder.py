"""Recorders: the switch between free-running and observed code.

Instrumented components take a ``recorder`` at construction and ask it
for instruments (:meth:`counter` / :meth:`gauge` / :meth:`histogram`)
and for event/span recording.  Two implementations exist:

* :data:`NULL_RECORDER` (the default everywhere): hands out no-op
  instruments and ignores events.  Components additionally gate their
  instrumentation blocks on ``recorder.enabled``, so the per-arrival
  hot path carries **zero** added calls when observability is off —
  the overhead budget measured by ``benchmarks/test_obs_overhead.py``.
* :class:`Recorder`: backed by a :class:`~repro.obs.registry.MetricsRegistry`
  and optionally a :class:`~repro.obs.trace.TraceRing`.

``span(name)`` times a block into a ``<name>_seconds`` histogram and
records begin/duration in the trace ring — used around window closes
and other coarse phases, never per arrival.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DURATION_BUCKETS,
    MetricsRegistry,
)
from repro.obs.trace import TraceRing


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: everything is a no-op; ``enabled`` is False."""

    enabled = False
    registry: Optional[MetricsRegistry] = None
    trace: Optional[TraceRing] = None

    def counter(self, name: str, help: str = ""):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = ""):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def event(self, kind: str, **fields) -> None:
        pass

    def span(self, name: str, **fields):
        return _NULL_SPAN


#: Shared no-op recorder; components default to this.
NULL_RECORDER = NullRecorder()


class _Span:
    """Times one block into ``<name>_seconds`` + a trace event."""

    __slots__ = ("_recorder", "_name", "_fields", "_start")

    def __init__(self, recorder: "Recorder", name: str, fields: dict):
        self._recorder = recorder
        self._name = name
        self._fields = fields
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._start
        recorder = self._recorder
        recorder.registry.histogram(
            f"{self._name}_seconds", f"duration of {self._name}",
            buckets=DURATION_BUCKETS,
        ).observe(duration)
        if recorder.trace is not None:
            recorder.trace.record(
                "span", name=self._name, seconds=round(duration, 6),
                error=exc_type.__name__ if exc_type else None, **self._fields,
            )
        return False


class Recorder(NullRecorder):
    """A live recorder: registry-backed instruments + optional trace ring.

    Args:
        registry: the :class:`MetricsRegistry` instruments land in
            (fresh one by default).
        trace: a :class:`TraceRing` for decision events, or None to
            record metrics only.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRing] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace

    def counter(self, name: str, help: str = ""):
        return self.registry.counter(name, help)

    def gauge(self, name: str, help: str = ""):
        return self.registry.gauge(name, help)

    def histogram(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS):
        return self.registry.histogram(name, help, buckets=buckets)

    def event(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.record(kind, **fields)

    def span(self, name: str, **fields):
        return _Span(self, name, fields)
