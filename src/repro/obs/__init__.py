"""Unified observability layer: metrics, decision traces, exposition.

Three pieces, usable separately (see ``docs/OBSERVABILITY.md``):

registry (:mod:`repro.obs.registry`)
    :class:`MetricsRegistry` — lock-cheap counters / gauges /
    fixed-bucket histograms that ``merge()`` like sketch state, so
    per-shard registries reduce into one coordinator view.

recorders (:mod:`repro.obs.recorder`)
    :data:`NULL_RECORDER` (default: the hot path stays uninstrumented)
    and :class:`Recorder` (registry + optional :class:`TraceRing`),
    accepted by :class:`~repro.core.xsketch.XSketch`, its stages,
    :class:`~repro.sketch.tower.TowerSketch` and the sharded runtime.

exposition (:mod:`repro.obs.expo`)
    Prometheus text rendering (the service's ``/metrics`` endpoint and
    the CLI ``stats`` view) plus a parser/validator for tests and CI.

Quick taste::

    from repro import XSketch, XSketchConfig, SimplexTask
    from repro.obs import Recorder, TraceRing

    recorder = Recorder(trace=TraceRing())
    sketch = XSketch(XSketchConfig(task=SimplexTask(k=1)), seed=7,
                     recorder=recorder)
    ...  # stream windows through the sketch
    print(sketch.metrics_registry().render_text())
    recorder.trace.dump_jsonl("trace.jsonl")
"""

from repro.obs.collect import (
    BATCH_BUCKETS,
    OCCUPANCY_BUCKETS,
    POTENTIAL_BUCKETS,
    WMIN_BUCKETS,
    collect_service,
    collect_sharded,
    collect_trace_ring,
    collect_xsketch,
)
from repro.obs.expo import parse_labels, parse_text, render_text, validate_text
from repro.obs.profile import PhaseProfiler, phase_rows, phase_table
from repro.obs.recorder import NULL_RECORDER, NullRecorder, Recorder
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slo import Objective, SloEngine, primary_objectives, replica_objectives
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    chrome_trace,
    span_trees,
    write_spans_jsonl,
)
from repro.obs.trace import TraceRing, write_jsonl

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_TRACER",
    "NullRecorder",
    "NullTracer",
    "OCCUPANCY_BUCKETS",
    "Objective",
    "PhaseProfiler",
    "POTENTIAL_BUCKETS",
    "Recorder",
    "SloEngine",
    "Span",
    "SpanContext",
    "TraceRing",
    "Tracer",
    "WMIN_BUCKETS",
    "chrome_trace",
    "collect_service",
    "collect_sharded",
    "collect_trace_ring",
    "collect_xsketch",
    "parse_labels",
    "parse_text",
    "phase_rows",
    "phase_table",
    "primary_objectives",
    "render_text",
    "replica_objectives",
    "span_trees",
    "validate_text",
    "write_jsonl",
    "write_spans_jsonl",
]
