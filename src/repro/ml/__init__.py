"""Section VI: "X-Sketch for ML" -- frequency prediction case study.

Three predictors of an item's next-window frequency are compared:

* :class:`XSketchPredictor` -- run X-Sketch, and for every reported
  simplex item extrapolate its fitted polynomial one window ahead
  (essentially free: the fit already exists);
* :class:`LinearRegressionModel` -- per-item least-squares regression
  over the item's full frequency history;
* :class:`ArimaModel` -- per-item ARIMA (Hannan-Rissanen estimation,
  implemented from scratch).

:func:`run_ml_comparison` reproduces the Table II / Table III experiment:
accuracy and running time of the three schemes on the simplex items of a
dataset.
"""

from repro.ml.linreg import LinearRegression, LinearRegressionModel
from repro.ml.arima import ArimaModel, arima_forecast, fit_arima
from repro.ml.holt import HoltFit, HoltModel, fit_holt
from repro.ml.features import FEATURE_NAMES, FeatureRow, extract_features, feature_matrix
from repro.ml.evaluation import prediction_accuracy
from repro.ml.accelerate import MLComparisonResult, PredictionTask, XSketchPredictor, run_ml_comparison

__all__ = [
    "ArimaModel",
    "FEATURE_NAMES",
    "FeatureRow",
    "HoltFit",
    "HoltModel",
    "LinearRegression",
    "LinearRegressionModel",
    "MLComparisonResult",
    "PredictionTask",
    "XSketchPredictor",
    "arima_forecast",
    "extract_features",
    "feature_matrix",
    "fit_arima",
    "fit_holt",
    "prediction_accuracy",
    "run_ml_comparison",
]
