"""Linear regression, from scratch (normal equations with ridge fallback).

Two layers: :class:`LinearRegression` is a generic multivariate OLS
solver; :class:`LinearRegressionModel` is the Section-VI per-item
predictor that regresses an item's window-frequency series on the window
index and extrapolates one window ahead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FittingError


class LinearRegression:
    """Ordinary least squares ``y = X beta`` with optional intercept."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coefficients: np.ndarray = None
        self.intercept: float = 0.0

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> "LinearRegression":
        """Fit by the normal equations; singular designs fall back to a
        tiny ridge penalty rather than failing."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if x.ndim != 2:
            raise FittingError(f"features must be 2-D, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise FittingError(f"{x.shape[0]} rows of features vs {y.shape[0]} targets")
        if x.shape[0] == 0:
            raise FittingError("cannot fit on an empty dataset")
        if self.fit_intercept:
            x = np.hstack([np.ones((x.shape[0], 1)), x])
        gram = x.T @ x
        try:
            beta = np.linalg.solve(gram, x.T @ y)
        except np.linalg.LinAlgError:
            beta = np.linalg.solve(gram + 1e-8 * np.eye(gram.shape[0]), x.T @ y)
        if self.fit_intercept:
            self.intercept = float(beta[0])
            self.coefficients = beta[1:]
        else:
            self.intercept = 0.0
            self.coefficients = beta
        return self

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        if self.coefficients is None:
            raise FittingError("predict() called before fit()")
        x = np.asarray(features, dtype=np.float64)
        return x @ self.coefficients + self.intercept


class LinearRegressionModel:
    """Per-item frequency predictor: regress counts on the window index.

    This is the Section-VI comparison model: given an item's frequencies
    in windows ``0 .. n-1``, predict window ``n``.
    """

    def predict_next(self, series: Sequence[float]) -> float:
        """Forecast the next value of ``series`` (requires >= 2 points)."""
        n = len(series)
        if n < 2:
            raise FittingError(f"need at least 2 observations, got {n}")
        model = LinearRegression().fit([[float(i)] for i in range(n)], series)
        return float(model.predict([[float(n)]])[0])
