"""The Section VI experiment: X-Sketch "accelerating" ML prediction.

The paper's framing: predicting every item's next-window frequency with a
per-item ML model is wasteful because the models cannot know in advance
which items follow a predictable pattern -- "simply predicting the
frequency of all items in the datasets is inefficient".  X-Sketch finds
the simplex items *during* the stream pass, and their fitted polynomials
give the prediction for free.

Experimental protocol (matching Tables II-III):

1. Run X-Sketch over the trace.  Each simplex report at window ``w``
   carries a polynomial over ``w-p+1 .. w``; evaluating it at offset
   ``p`` predicts the frequency in window ``w+1``.  X-Sketch's running
   time = stream pass + extrapolations.
2. Pick *evaluation windows* (windows with at least one report; capped
   at ``n_eval_windows``, evenly spaced, to bound the experiment).  At
   each evaluation window the per-item models must predict the next
   window for **every active item** (>= 2 positive windows of history),
   because they cannot tell simplex items apart; that full pass is their
   measured running time -- exactly the inefficiency the paper measures.
3. Accuracy for all three schemes is scored on the simplex tasks at the
   evaluation windows, against exact ground truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import XSketchConfig
from repro.core.oracle import SimplexOracle
from repro.core.xsketch import XSketch
from repro.fitting.simplex import SimplexTask
from repro.hashing.family import ItemId
from repro.ml.arima import ArimaModel
from repro.ml.evaluation import prediction_accuracy
from repro.ml.linreg import LinearRegressionModel
from repro.streams.model import Trace


@dataclass(frozen=True)
class PredictionTask:
    """One next-window prediction task: item, prediction window, truth."""

    item: ItemId
    window: int
    truth: float


@dataclass(frozen=True)
class MLComparisonResult:
    """Accuracy and running time of the predictors (Tables II-III).

    ``holt_*`` fields are populated when the comparison runs with
    ``include_holt=True`` (an extension beyond the paper's two models).
    """

    n_tasks: int
    n_eval_windows: int
    n_model_predictions: int
    xsketch_accuracy: float
    xsketch_seconds: float
    linreg_accuracy: float
    linreg_seconds: float
    arima_accuracy: float
    arima_seconds: float
    holt_accuracy: Optional[float] = None
    holt_seconds: Optional[float] = None

    def speedup_over_linreg(self) -> float:
        """Running-time ratio LinReg / X-Sketch."""
        return self.linreg_seconds / self.xsketch_seconds if self.xsketch_seconds else float("inf")

    def speedup_over_arima(self) -> float:
        """Running-time ratio ARIMA / X-Sketch."""
        return self.arima_seconds / self.xsketch_seconds if self.xsketch_seconds else float("inf")


class XSketchPredictor:
    """Wraps an X-Sketch run and extrapolates fitted polynomials."""

    def __init__(self, config: XSketchConfig, seed: int = 0):
        self.config = config
        self.seed = seed
        self.sketch: XSketch = None
        self._fit_by_task: Dict[Tuple[ItemId, int], Tuple[float, ...]] = {}

    def run(self, trace: Trace) -> None:
        """Stream pass: run the sketch, index reports by (item, window)."""
        self.sketch = XSketch(self.config, seed=self.seed)
        for window in trace.windows():
            for report in self.sketch.run_window(window):
                self._fit_by_task[(report.item, report.report_window)] = report.coefficients

    def report_windows(self) -> List[int]:
        """Windows that produced at least one simplex report."""
        return sorted({window for _, window in self._fit_by_task})

    def tasks_at(self, window: int) -> List[ItemId]:
        """Items with a simplex report at ``window``."""
        return sorted(
            (item for item, w in self._fit_by_task if w == window), key=str
        )

    def predict(self, item: ItemId, window: int) -> float:
        """Frequency prediction for ``window + 1`` (polynomial at offset p)."""
        coefficients = self._fit_by_task[(item, window)]
        x = float(self.config.task.p)
        acc = 0.0
        for coeff in reversed(coefficients):
            acc = acc * x + coeff
        return acc


def _select_eval_windows(report_windows: Sequence[int], n_eval: int) -> List[int]:
    """Up to ``n_eval`` evenly spaced report windows."""
    if len(report_windows) <= n_eval:
        return list(report_windows)
    step = len(report_windows) / n_eval
    return [report_windows[int(i * step)] for i in range(n_eval)]


def _active_items(oracle: SimplexOracle, window: int) -> List[ItemId]:
    """Items with at least 2 positive windows of history up to ``window``.

    These are the items a per-item forecaster has anything to fit on --
    the population the LR / ARIMA baselines must sweep.
    """
    active: List[ItemId] = []
    for item in oracle.items():
        per_window = oracle._counts[item]
        seen = 0
        for w in per_window:
            if w <= window:
                seen += 1
                if seen == 2:
                    active.append(item)
                    break
    return active


def run_ml_comparison(
    trace: Trace,
    task: SimplexTask,
    memory_kb: float = 60.0,
    seed: int = 0,
    n_eval_windows: int = 6,
    include_holt: bool = False,
) -> MLComparisonResult:
    """Reproduce the Table II / Table III comparison on ``trace``.

    ``n_eval_windows`` bounds how many windows the per-item models are
    re-fitted at (each re-fit sweeps every active item); raise it to
    approach the paper's full per-window deployment -- the ratios grow
    linearly because X-Sketch's cost is a single stream pass either way.
    """
    oracle = SimplexOracle.from_stream(trace.windows(), task)

    start = time.perf_counter()
    predictor = XSketchPredictor(XSketchConfig(task=task, memory_kb=memory_kb), seed=seed)
    predictor.run(trace)
    # Extrapolate every report (the full prediction workload of X-Sketch).
    for item, window in list(predictor._fit_by_task):
        predictor.predict(item, window)
    xs_seconds = time.perf_counter() - start

    # Evaluation windows must leave room for next-window ground truth.
    candidate_windows = [w for w in predictor.report_windows() if w + 1 < trace.geometry.n_windows]
    eval_windows = _select_eval_windows(candidate_windows, n_eval_windows)

    tasks: List[PredictionTask] = []
    xs_predictions: List[float] = []
    for window in eval_windows:
        for item in predictor.tasks_at(window):
            tasks.append(
                PredictionTask(
                    item=item, window=window, truth=float(oracle.frequency(item, window + 1))
                )
            )
            xs_predictions.append(predictor.predict(item, window))
    truths = [t.truth for t in tasks]

    # Per-item models: sweep every active item at each evaluation window.
    linreg = LinearRegressionModel()
    linreg_task_pred: Dict[Tuple[ItemId, int], float] = {}
    n_model_predictions = 0
    start = time.perf_counter()
    for window in eval_windows:
        for item in _active_items(oracle, window):
            history = oracle.frequency_vector(item, 0, window + 1)
            prediction = linreg.predict_next(history)
            n_model_predictions += 1
            linreg_task_pred[(item, window)] = prediction
    linreg_seconds = time.perf_counter() - start

    arima = ArimaModel()
    arima_task_pred: Dict[Tuple[ItemId, int], float] = {}
    start = time.perf_counter()
    for window in eval_windows:
        for item in _active_items(oracle, window):
            history = oracle.frequency_vector(item, 0, window + 1)
            arima_task_pred[(item, window)] = arima.predict_next(history)
    arima_seconds = time.perf_counter() - start

    holt_accuracy = None
    holt_seconds = None
    if include_holt:
        from repro.ml.holt import HoltModel

        holt = HoltModel()
        holt_task_pred: Dict[Tuple[ItemId, int], float] = {}
        start = time.perf_counter()
        for window in eval_windows:
            for item in _active_items(oracle, window):
                history = oracle.frequency_vector(item, 0, window + 1)
                holt_task_pred[(item, window)] = holt.predict_next(history)
        holt_seconds = time.perf_counter() - start
        holt_predictions = [holt_task_pred.get((t.item, t.window), 0.0) for t in tasks]
        holt_accuracy = prediction_accuracy(truths, holt_predictions)

    linreg_predictions = [linreg_task_pred.get((t.item, t.window), 0.0) for t in tasks]
    arima_predictions = [arima_task_pred.get((t.item, t.window), 0.0) for t in tasks]

    return MLComparisonResult(
        n_tasks=len(tasks),
        n_eval_windows=len(eval_windows),
        n_model_predictions=n_model_predictions,
        xsketch_accuracy=prediction_accuracy(truths, xs_predictions),
        xsketch_seconds=xs_seconds,
        linreg_accuracy=prediction_accuracy(truths, linreg_predictions),
        linreg_seconds=linreg_seconds,
        arima_accuracy=prediction_accuracy(truths, arima_predictions),
        arima_seconds=arima_seconds,
        holt_accuracy=holt_accuracy,
        holt_seconds=holt_seconds,
    )
