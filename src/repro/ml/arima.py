"""ARIMA(p, d, q) from scratch.

The time-series comparison model of Section VI (Box & Jenkins [18]).
Estimation uses the Hannan-Rissanen two-step procedure, which is robust
on the short (tens of windows) series this experiment produces:

1. difference the series ``d`` times;
2. fit a long autoregression by OLS and take its residuals as innovation
   estimates;
3. regress the differenced series on its own lags *and* the residual
   lags to obtain the AR and MA coefficients jointly;
4. forecast recursively (future innovations set to zero) and invert the
   differencing.

Degenerate inputs (constant or too-short series) fall back to the series
mean, as a production forecaster would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import FittingError


def _difference(series: np.ndarray, d: int) -> np.ndarray:
    for _ in range(d):
        series = np.diff(series)
    return series


def _undifference(forecasts: List[float], history: np.ndarray, d: int) -> List[float]:
    """Integrate ``d``-times-differenced forecasts back to the original scale."""
    if d == 0:
        return forecasts
    # Reconstruct the final values of each differencing level.
    levels = [history]
    for _ in range(d):
        levels.append(np.diff(levels[-1]))
    # levels[j] is the j-times differenced history; integrate upward.
    restored = forecasts
    for j in range(d, 0, -1):
        anchor = float(levels[j - 1][-1])
        integrated = []
        for value in restored:
            anchor = anchor + value
            integrated.append(anchor)
        restored = integrated
    return restored


@dataclass(frozen=True)
class ArimaFit:
    """Fitted ARIMA parameters (on the differenced scale)."""

    order: Tuple[int, int, int]
    ar_coefficients: Tuple[float, ...]
    ma_coefficients: Tuple[float, ...]
    intercept: float
    residuals: Tuple[float, ...]
    differenced: Tuple[float, ...]


def fit_arima(series: Sequence[float], order: Tuple[int, int, int] = (2, 1, 1)) -> ArimaFit:
    """Fit ARIMA(p, d, q) by Hannan-Rissanen.

    Raises :class:`~repro.errors.FittingError` when the series is too
    short to estimate the requested order (callers typically fall back
    to the mean; :class:`ArimaModel` does so automatically).
    """
    p, d, q = order
    if p < 0 or d < 0 or q < 0:
        raise FittingError(f"ARIMA order components must be >= 0, got {order}")
    y = np.asarray(series, dtype=np.float64)
    if y.ndim != 1:
        raise FittingError(f"series must be 1-D, got shape {y.shape}")
    z = _difference(y, d)
    long_ar = max(p + q, min(10, len(z) // 3))
    if len(z) < long_ar + max(p, q) + 2 or long_ar == 0:
        raise FittingError(
            f"series of length {len(y)} too short for ARIMA{order} estimation"
        )

    # Step 1: long AR by OLS -> innovation estimates.
    rows = [z[i - long_ar : i][::-1] for i in range(long_ar, len(z))]
    design = np.asarray(rows)
    target = z[long_ar:]
    design1 = np.hstack([np.ones((design.shape[0], 1)), design])
    beta, *_ = np.linalg.lstsq(design1, target, rcond=None)
    residuals = np.zeros_like(z)
    residuals[long_ar:] = target - design1 @ beta

    # Step 2: regress z_t on its own p lags and q residual lags.
    start = long_ar + q
    rows2 = []
    target2 = []
    for t in range(max(start, p), len(z)):
        row = [z[t - j] for j in range(1, p + 1)]
        row += [residuals[t - j] for j in range(1, q + 1)]
        rows2.append(row)
        target2.append(z[t])
    if not rows2:
        raise FittingError(f"series of length {len(y)} too short for ARIMA{order} estimation")
    lag_matrix = np.asarray(rows2, dtype=np.float64).reshape(len(rows2), -1)
    design2 = np.hstack([np.ones((len(rows2), 1)), lag_matrix])
    beta2, *_ = np.linalg.lstsq(design2, np.asarray(target2), rcond=None)
    intercept = float(beta2[0])
    ar = tuple(float(v) for v in beta2[1 : 1 + p])
    ma = tuple(float(v) for v in beta2[1 + p : 1 + p + q])
    return ArimaFit(
        order=order,
        ar_coefficients=ar,
        ma_coefficients=ma,
        intercept=intercept,
        residuals=tuple(float(v) for v in residuals),
        differenced=tuple(float(v) for v in z),
    )


def arima_forecast(fit: ArimaFit, history: Sequence[float], steps: int = 1) -> List[float]:
    """Forecast ``steps`` values ahead from a fitted model."""
    if steps <= 0:
        raise FittingError(f"steps must be positive, got {steps}")
    p, d, q = fit.order
    z = list(fit.differenced)
    residuals = list(fit.residuals)
    forecasts: List[float] = []
    for _ in range(steps):
        value = fit.intercept
        for j, coeff in enumerate(fit.ar_coefficients, start=1):
            if len(z) - j >= 0:
                value += coeff * z[len(z) - j]
        for j, coeff in enumerate(fit.ma_coefficients, start=1):
            if len(residuals) - j >= 0:
                value += coeff * residuals[len(residuals) - j]
        z.append(value)
        residuals.append(0.0)  # future innovations have zero expectation
        forecasts.append(value)
    return _undifference(forecasts, np.asarray(history, dtype=np.float64), d)


class ArimaModel:
    """Per-item next-window predictor wrapping :func:`fit_arima`.

    Falls back to the series mean when estimation is ill-posed (constant
    or short series), so it always returns a forecast.
    """

    def __init__(self, order: Tuple[int, int, int] = (2, 1, 1)):
        self.order = order

    def predict_next(self, series: Sequence[float]) -> float:
        values = list(series)
        if len(values) < 3 or len(set(values)) == 1:
            return float(np.mean(values)) if values else 0.0
        try:
            fit = fit_arima(values, self.order)
            return float(arima_forecast(fit, values, steps=1)[0])
        except (FittingError, np.linalg.LinAlgError):
            return float(np.mean(values))
