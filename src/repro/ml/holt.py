"""Holt's linear (double exponential) smoothing.

An extension predictor for the Section-VI comparison: between plain
linear regression (one global trend) and ARIMA (full Box-Jenkins) sits
Holt's method -- exponentially-weighted level and trend, the workhorse
of operational forecasting.  Included to show the acceleration story is
not an artifact of the two models the paper chose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError, FittingError


@dataclass(frozen=True)
class HoltFit:
    """Final smoothed state of a Holt pass."""

    level: float
    trend: float
    alpha: float
    beta: float

    def forecast(self, steps: int = 1) -> List[float]:
        """h-step-ahead forecasts: ``level + h * trend``."""
        if steps <= 0:
            raise FittingError(f"steps must be positive, got {steps}")
        return [self.level + h * self.trend for h in range(1, steps + 1)]


def fit_holt(series: Sequence[float], alpha: float = 0.5, beta: float = 0.3) -> HoltFit:
    """Run Holt smoothing over ``series`` (needs >= 2 points).

    Initialization follows the standard convention: level = first
    observation, trend = first difference.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 < beta <= 1.0:
        raise ConfigurationError(f"beta must be in (0, 1], got {beta}")
    if len(series) < 2:
        raise FittingError(f"need at least 2 observations, got {len(series)}")
    level = float(series[0])
    trend = float(series[1]) - float(series[0])
    for value in series[1:]:
        previous_level = level
        level = alpha * float(value) + (1 - alpha) * (level + trend)
        trend = beta * (level - previous_level) + (1 - beta) * trend
    return HoltFit(level=level, trend=trend, alpha=alpha, beta=beta)


class HoltModel:
    """Per-item next-window predictor via Holt smoothing.

    Mirrors the :class:`~repro.ml.linreg.LinearRegressionModel` /
    :class:`~repro.ml.arima.ArimaModel` interface; short series fall
    back to the mean.
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.3):
        self.alpha = alpha
        self.beta = beta

    def predict_next(self, series: Sequence[float]) -> float:
        values = list(series)
        if not values:
            return 0.0
        if len(values) < 2:
            return float(values[0])
        fit = fit_holt(values, self.alpha, self.beta)
        return fit.forecast(1)[0]
