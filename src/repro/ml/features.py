"""Simplex-item feature extraction for downstream ML models.

Section I-A (k=1): "We can consider the slopes of the 1-simplex items
as important features for the input of machine learning models."  This
module turns a stream of :class:`SimplexReport` objects into a feature
matrix keyed by (item, window): fitted coefficients, MSE, lasting time,
and the fit's one-step extrapolation -- ready for any regressor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.reports import SimplexReport
from repro.hashing.family import ItemId

#: Feature column names, in matrix order.
FEATURE_NAMES = (
    "level",          # a_0: the fitted base level
    "slope",          # a_1 (0.0 for k=0 fits)
    "curvature",      # a_2 (0.0 for k<2 fits)
    "mse",            # fit error over the span
    "lasting_time",   # windows the pattern has lasted
    "next_prediction",  # polynomial extrapolated one window ahead
)


@dataclass(frozen=True)
class FeatureRow:
    """Features of one simplex report."""

    item: ItemId
    window: int
    values: Tuple[float, ...]

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(FEATURE_NAMES, self.values))


def report_features(report: SimplexReport, p: int) -> FeatureRow:
    """Feature vector of one report (coefficients padded to degree 2)."""
    coefficients = list(report.coefficients) + [0.0, 0.0, 0.0]
    prediction = 0.0
    for coefficient in reversed(report.coefficients):
        prediction = prediction * p + coefficient
    return FeatureRow(
        item=report.item,
        window=report.report_window,
        values=(
            float(coefficients[0]),
            float(coefficients[1]),
            float(coefficients[2]),
            float(report.mse),
            float(report.lasting_time),
            float(prediction),
        ),
    )


def extract_features(
    reports: Iterable[SimplexReport], p: int
) -> List[FeatureRow]:
    """Feature rows for every report, in report order."""
    return [report_features(report, p) for report in reports]


def feature_matrix(
    rows: Sequence[FeatureRow],
    columns: Sequence[str] = FEATURE_NAMES,
) -> List[List[float]]:
    """Plain nested-list matrix with the selected columns.

    Feed it to :class:`repro.ml.linreg.LinearRegression` or any
    array-consuming model.
    """
    indices = []
    for column in columns:
        try:
            indices.append(FEATURE_NAMES.index(column))
        except ValueError:
            raise KeyError(f"unknown feature {column!r}; known: {FEATURE_NAMES}") from None
    return [[row.values[i] for i in indices] for row in rows]
