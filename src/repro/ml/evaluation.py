"""Prediction-accuracy metric of Section VI.

The paper counts a prediction accurate when it "does not deviate from the
ground truth too much"; we make the tolerance explicit: a prediction is
accurate when its error is within ``rel_tol`` of the truth or within
``abs_tol`` absolutely (the absolute floor keeps tiny frequencies from
dominating).
"""

from __future__ import annotations

from typing import Sequence

#: Default relative tolerance of an accurate prediction.
DEFAULT_REL_TOL = 0.3
#: Default absolute tolerance floor.
DEFAULT_ABS_TOL = 2.0


def prediction_accuracy(
    truths: Sequence[float],
    predictions: Sequence[float],
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> float:
    """Fraction of predictions within tolerance of the truth."""
    if len(truths) != len(predictions):
        raise ValueError("truths and predictions must have equal length")
    if not truths:
        return 1.0
    accurate = 0
    for truth, prediction in zip(truths, predictions):
        if abs(prediction - truth) <= max(abs_tol, rel_tol * abs(truth)):
            accurate += 1
    return accurate / len(truths)
