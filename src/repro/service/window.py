"""Window management between the network layer and a sketch engine.

The :class:`WindowManager` is the single writer in the service: every
engine touch (ingest, window close, checkpoint, stats) happens under
one asyncio lock, off the event loop via ``asyncio.to_thread`` so a
process-backend barrier never stalls the HTTP listener.  Around the
engine it adds:

micro-batching
    Wire batches are coalesced into a pending buffer and handed to the
    engine in ``ingest_batch`` calls of at most ``micro_batch`` items.

count/tick window advance
    The manager closes the engine's window every ``window_size`` items;
    a wall-clock ticker may close a partially-filled window early.
    Batches that straddle a boundary are split so windows are exact.

ordered ingest (the resequencer)
    Batches carrying a global ``seq`` are admitted in exactly ``seq``
    order across all connections, making multi-connection replays
    byte-deterministic (see ``docs/SERVICE.md``).

query snapshots
    After every window close the manager publishes an immutable
    :class:`ServiceSnapshot`; queries read the snapshot and never take
    the engine lock, so they cannot block ingest.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.core.reports import SimplexReport
from repro.errors import ServiceError
from repro.hashing.family import ItemId
from repro.obs.collect import BATCH_BUCKETS
from repro.obs.profile import PhaseProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanContext, new_span_id, new_trace_id


def report_to_dict(report: SimplexReport) -> dict:
    """JSON-safe rendering of one report for the HTTP API."""
    return {
        "item": report.item,
        "start_window": report.start_window,
        "report_window": report.report_window,
        "lasting_time": report.lasting_time,
        "coefficients": list(report.coefficients),
        "mse": report.mse,
    }


class EngineAdapter:
    """Uniform engine protocol over ``XSketch``-likes and the sharded runtime.

    Engines must provide ``insert``/``end_window`` (single-process) or
    ``ingest_batch``/``flush_window`` (sharded); ``reports``,
    ``checkpoint``/``close``/``stats`` are optional and degrade
    gracefully.
    """

    def __init__(self, engine):
        self.engine = engine
        self._batch_ingest = getattr(engine, "ingest_batch", None)

    def ingest_batch(self, items: Sequence[ItemId]) -> None:
        if self._batch_ingest is not None:
            self._batch_ingest(items)
        else:
            insert = self.engine.insert
            for item in items:
                insert(item)

    def flush_window(self, span_ctx=None) -> List[SimplexReport]:
        flush = getattr(self.engine, "flush_window", None)
        if flush is not None:
            # Propagate the span context only to engines that carry a
            # live tracer (the sharded coordinator); plain engines keep
            # their zero-argument signature.
            if span_ctx is not None and getattr(self.engine, "tracer", None) is not None:
                return flush(span_ctx=span_ctx)
            return flush()
        return self.engine.end_window()

    def reports(self) -> List[SimplexReport]:
        return list(self.engine.reports)

    def checkpoint(self, directory) -> Path:
        directory = Path(directory)
        if hasattr(self.engine, "checkpoint"):
            self.engine.checkpoint(directory)
            return directory
        from repro.core.serialize import save_xsketch

        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "xsketch.json"
        save_xsketch(self.engine, path)
        return directory

    def close(self) -> None:
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def stats(self):
        stats = getattr(self.engine, "stats", None)
        if stats is None:
            return None
        return stats() if callable(stats) else stats

    def metrics_registry(self, registry=None):
        """The engine's canonical metrics, folded into ``registry``.

        Engines without a ``metrics_registry`` method (stub engines in
        tests) contribute nothing; the registry comes back unchanged.
        """
        collect = getattr(self.engine, "metrics_registry", None)
        if collect is not None:
            return collect(registry)
        return registry if registry is not None else MetricsRegistry()

    def health(self) -> Optional[dict]:
        """The engine's liveness view, or ``None`` for engines without one.

        The sharded runtime's :meth:`~repro.runtime.ShardedXSketch.health`
        is non-blocking (no worker IPC), so the service can serve it
        from ``/healthz`` without the engine lock.
        """
        health = getattr(self.engine, "health", None)
        if health is None:
            return None
        return health()

    def trace_events(self) -> List[dict]:
        """The engine's trace-ring events ([] when observability is off).

        Gated so an observability-off sharded engine pays no worker
        round-trips: the sharded runtime is asked only when its
        ``observability`` flag is set, a plain sketch only when its
        recorder carries a ring.
        """
        if getattr(self.engine, "observability", False):
            return self.engine.trace_events()
        ring = getattr(getattr(self.engine, "recorder", None), "trace", None)
        return ring.events() if ring is not None else []


@dataclass(frozen=True)
class ServiceSnapshot:
    """Immutable read-side view published at every window boundary."""

    #: windows closed by the service so far
    window: int
    #: items ingested up to (and including) the last closed window
    items_at_boundary: int
    #: all reports emitted so far, in the engine's canonical order
    reports: Tuple[SimplexReport, ...]
    #: ``time.time()`` of the last window close (0.0 before the first)
    updated_at: float


class WindowManager:
    """Single-writer gateway to the engine (see module docstring).

    ``temporal`` optionally attaches a
    :class:`repro.temporal.store.TemporalStore`.  When the engine
    already owns one (``ShardedXSketch(temporal=...)``), the engine
    feeds it at its own window boundaries and the manager only exposes
    it for queries; otherwise the manager feeds the store itself —
    arrivals on ingest, reports (plus a single-sketch snapshot inside
    the store's fidelity horizon) at each window close.  Either way the
    feed happens on the engine-lock thread, so temporal queries read a
    published store snapshot and never contend with ingest.
    """

    def __init__(self, engine, window_size: int, micro_batch: int,
                 temporal=None, tracer=None):
        self.adapter = engine if isinstance(engine, EngineAdapter) else EngineAdapter(engine)
        self.window_size = window_size
        self.micro_batch = micro_batch
        #: live span tracer, or None (the NULL_TRACER gate: off costs
        #: one attribute test per wire batch)
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        engine_store = getattr(self.adapter.engine, "temporal", None)
        self.temporal = temporal if temporal is not None else engine_store
        #: True when the manager (not the engine) drives the store
        self._feed_temporal = (
            temporal is not None and temporal is not engine_store
        )
        self._lock = asyncio.Lock()
        self._pending: List[ItemId] = []
        #: items already in the open window (pending + handed to engine)
        self.items_window = 0
        self.items_total = 0
        self.engine_batches = 0
        self.windows_closed = 0
        #: always-on service-side registry (wire-batch granularity only,
        #: so the cost is one histogram observe per submitted batch)
        self.metrics = MetricsRegistry()
        self._h_batch = self.metrics.histogram(
            "service_batch_items",
            "items per wire batch submitted to the window manager",
            buckets=BATCH_BUCKETS,
        )
        #: always-on phase profiler (window/batch granularity only)
        self.profiler = PhaseProfiler(self.metrics)
        #: open-window trace state: perf start always, span ids when tracing
        self._window_trace: Optional[dict] = None
        self.snapshot = ServiceSnapshot(
            window=0, items_at_boundary=0, reports=(), updated_at=0.0
        )
        #: slim-snapshot publisher notified at every window boundary
        #: (set by the service when ``config.publish_port`` is given;
        #: the hook runs under the engine lock, after the snapshot is
        #: published, so each sequence maps to exactly one boundary)
        self.publisher = None
        # resequencer state (ordered ingest)
        self._seq_cond = asyncio.Condition()
        self._next_seq = 0
        self._skipped: set = set()
        self._draining = False

    # ------------------------------------------------------------------
    # ordered-ingest admission

    async def _admit(self, seq: int) -> None:
        async with self._seq_cond:
            await self._seq_cond.wait_for(
                lambda: self._draining or seq <= self._next_seq
            )

    async def _advance_seq(self, seq: int) -> None:
        async with self._seq_cond:
            if seq >= self._next_seq:
                self._next_seq = seq + 1
                while self._next_seq in self._skipped:
                    self._skipped.discard(self._next_seq)
                    self._next_seq += 1
            self._seq_cond.notify_all()

    async def skip_seq(self, seq: int) -> None:
        """Record a dropped sequenced batch so the sequencer never stalls."""
        async with self._seq_cond:
            if seq == self._next_seq:
                self._next_seq += 1
                while self._next_seq in self._skipped:
                    self._skipped.discard(self._next_seq)
                    self._next_seq += 1
            elif seq > self._next_seq:
                self._skipped.add(seq)
            self._seq_cond.notify_all()

    async def release_sequencer(self) -> None:
        """Drain aid: admit every waiting sequenced batch (gaps included)."""
        async with self._seq_cond:
            self._draining = True
            self._seq_cond.notify_all()

    # ------------------------------------------------------------------
    # write path

    def _ensure_window_trace(self) -> dict:
        """Open-window trace state, created at the first arrival.

        Always carries the perf-counter start (the always-on ``window``
        phase); with a live tracer it also mints the window's trace id
        and root span id, the parent every pipeline span hangs off.
        """
        state = self._window_trace
        if state is None:
            state = {"start": time.perf_counter(), "window": self.windows_closed}
            if self.tracer is not None:
                state["trace_id"] = new_trace_id()
                state["span_id"] = new_span_id()
                state["ts"] = self.tracer.timestamp()
            self._window_trace = state
        return state

    async def submit(self, items: Sequence[ItemId], seq: Optional[int] = None,
                     received: Optional[float] = None) -> None:
        """Route one wire batch into the open window (splits at boundaries).

        ``received`` is the server's perf-counter stamp at frame
        receipt, so the ingest phase (and, when tracing, the
        ``ingest.frame`` span) covers queueing and resequencer wait,
        not just the engine hand-off.
        """
        self._h_batch.observe(len(items))
        start = received if received is not None else time.perf_counter()
        tracer = self.tracer
        frame_span_id = new_span_id() if tracer is not None else None
        wait_dur = 0.0
        if seq is not None:
            wait_start = time.perf_counter()
            await self._admit(seq)
            wait_dur = time.perf_counter() - wait_start
        frame_parent: Optional[dict] = None
        try:
            async with self._lock:
                offset = 0
                while offset < len(items):
                    space = self.window_size - self.items_window
                    chunk = items[offset:offset + space]
                    state = self._ensure_window_trace()
                    if frame_parent is None:
                        frame_parent = state
                    offset += len(chunk)
                    self._pending.extend(chunk)
                    self.items_window += len(chunk)
                    self.items_total += len(chunk)
                    if len(self._pending) >= self.micro_batch:
                        await self._ingest_pending()
                    if self.items_window >= self.window_size:
                        await self._close_window_locked()
        finally:
            if seq is not None:
                await self._advance_seq(seq)
            elapsed = time.perf_counter() - start
            self.profiler.observe("ingest", elapsed)
            if tracer is not None and frame_parent is not None:
                now_ts = tracer.timestamp()
                tracer.emit(
                    "ingest.frame",
                    trace_id=frame_parent["trace_id"],
                    span_id=frame_span_id,
                    parent_id=frame_parent["span_id"],
                    ts=now_ts - elapsed,
                    dur=elapsed,
                    items=len(items),
                    seq=seq,
                )
                if seq is not None:
                    tracer.emit(
                        "resequencer.wait",
                        trace_id=frame_parent["trace_id"],
                        span_id=new_span_id(),
                        parent_id=frame_span_id,
                        ts=now_ts - elapsed,
                        dur=wait_dur,
                        seq=seq,
                    )

    async def _ingest_pending(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.engine_batches += 1
        await asyncio.to_thread(self._engine_ingest, batch)

    def _engine_ingest(self, batch: List[ItemId]) -> None:
        if self._feed_temporal:
            self.temporal.observe_items(batch)
        self.adapter.ingest_batch(batch)

    async def _close_window_locked(self) -> None:
        state = self._ensure_window_trace()
        tracer = self.tracer
        root_ctx = (
            SpanContext(state["trace_id"], state["span_id"], state["ts"])
            if tracer is not None else None
        )
        await self._ingest_pending()
        with self.profiler.phase("flush"):
            await asyncio.to_thread(
                self._engine_flush, self.windows_closed, root_ctx
            )
        self.windows_closed += 1
        self.items_window = 0
        self._window_trace = None
        with self.profiler.phase("snapshot"):
            self._publish_snapshot()
        if self.publisher is not None:
            publish_start = time.perf_counter()
            summary = await asyncio.to_thread(self._slim_summary)
            deltas = ()
            if self.temporal is not None and getattr(
                self.temporal, "capture_deltas", False
            ):
                deltas = self.temporal.take_deltas()
            span_wire = None
            publish_span_id = None
            if tracer is not None:
                # The publish span's context rides the DELTA frame so
                # the replica's apply span joins this window's tree.
                publish_span_id = new_span_id()
                span_wire = {
                    "trace_id": state["trace_id"],
                    "span_id": publish_span_id,
                    "ts": tracer.timestamp(),
                    "window": state["window"],
                }
            self.publisher.publish_boundary(
                self.snapshot, summary, deltas, span=span_wire
            )
            publish_dur = time.perf_counter() - publish_start
            self.profiler.observe("publish", publish_dur)
            if tracer is not None:
                tracer.emit(
                    "publish.frame",
                    trace_id=state["trace_id"],
                    span_id=publish_span_id,
                    parent_id=state["span_id"],
                    ts=tracer.timestamp() - publish_dur,
                    dur=publish_dur,
                    window=state["window"],
                )
        window_dur = time.perf_counter() - state["start"]
        self.profiler.observe("window", window_dur)
        if tracer is not None:
            tracer.emit(
                "window",
                trace_id=state["trace_id"],
                span_id=state["span_id"],
                parent_id=None,
                ts=state["ts"],
                dur=window_dur,
                window=state["window"],
                items=self.snapshot.items_at_boundary,
            )

    def _engine_flush(self, closed_window: int, span_ctx=None) -> List[SimplexReport]:
        tracer = self.tracer
        if tracer is not None and span_ctx is not None:
            with tracer.span("window.flush", parent=span_ctx,
                             window=closed_window) as flush_span:
                reports = self.adapter.flush_window(span_ctx=flush_span.context)
        else:
            reports = self.adapter.flush_window()
        if self._feed_temporal:
            with self.profiler.phase("temporal"):
                self.temporal.on_window(
                    closed_window,
                    reports if reports is not None else [],
                    snapshot_fn=self._temporal_snapshot_fn(),
                )
        return reports

    def _temporal_snapshot_fn(self):
        """A thunk producing the engine's full-sketch snapshot, if it can.

        A sharded engine compacts via ``merged_sketch`` (memoized per
        window); a plain X-Sketch snapshots directly; stub engines
        (tests) contribute no as-of payloads.
        """
        engine = self.adapter.engine
        merged = getattr(engine, "merged_sketch", None)
        if merged is not None:
            from repro.core.serialize import snapshot_xsketch

            return lambda: snapshot_xsketch(merged())
        if hasattr(engine, "stage1") and hasattr(engine, "config"):
            from repro.core.serialize import snapshot_xsketch

            return lambda: snapshot_xsketch(engine)
        return None

    def _slim_summary(self):
        """The engine's slim frequency summary at this boundary.

        Runs on the engine-lock thread.  A sharded engine compacts via
        ``slim_summary()`` (riding the ``merged_sketch`` per-window
        memo); a plain X-Sketch is summarized directly; stub engines
        (tests) contribute no summary.
        """
        engine = self.adapter.engine
        slim = getattr(engine, "slim_summary", None)
        if slim is not None:
            return slim()
        if hasattr(engine, "stage1") and hasattr(engine, "stage2"):
            from repro.runtime.slim import slim_summary

            return slim_summary(engine)
        return None

    def _publish_snapshot(self) -> None:
        self.snapshot = ServiceSnapshot(
            window=self.windows_closed,
            items_at_boundary=self.items_total,
            reports=tuple(self.adapter.reports()),
            updated_at=time.time(),
        )

    async def flush_window(self) -> None:
        """Close the open window now (no-op when it is empty)."""
        async with self._lock:
            if self.items_window > 0 or self._pending:
                await self._close_window_locked()

    async def drain(self) -> None:
        """Final flush on shutdown: push the open window out."""
        await self.flush_window()

    # ------------------------------------------------------------------
    # control path

    async def checkpoint(self, directory) -> Path:
        """Flush the open window, then checkpoint the engine to ``directory``."""
        if directory is None:
            raise ServiceError("no checkpoint directory configured or given")
        async with self._lock:
            if self.items_window > 0 or self._pending:
                await self._close_window_locked()
            return await asyncio.to_thread(self.adapter.checkpoint, directory)

    async def engine_stats(self):
        """Live engine counters (takes the engine lock; may block on IPC)."""
        async with self._lock:
            return await asyncio.to_thread(self.adapter.stats)

    async def engine_metrics(self, registry=None) -> MetricsRegistry:
        """The engine's metrics registry (takes the engine lock; may
        block on worker IPC for the sharded process backend)."""
        async with self._lock:
            return await asyncio.to_thread(self.adapter.metrics_registry, registry)

    async def close_engine(self) -> None:
        async with self._lock:
            await asyncio.to_thread(self.adapter.close)
