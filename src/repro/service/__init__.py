"""Async ingest/query service layer over the sketch engines.

The ROADMAP's serving shape: a backpressured TCP write path feeding a
single-writer window manager in front of any engine (``XSketch`` or the
sharded runtime), and a snapshot-consistent HTTP read path that never
blocks ingest.  See ``docs/SERVICE.md`` for the wire protocol, flow
control and lifecycle, and :mod:`repro.service.loadgen` for the bundled
load generator (``repro loadgen`` on the CLI, ``repro serve`` for the
server).
"""

from repro.service.config import ServiceConfig
from repro.service.loadgen import replay_trace, run_loadgen, send_shutdown
from repro.service.protocol import (
    MAGIC,
    batch_message,
    encode_frame,
    encode_line,
    parse_message,
)
from repro.service.server import StreamService, serve
from repro.service.window import EngineAdapter, ServiceSnapshot, WindowManager

__all__ = [
    "EngineAdapter",
    "MAGIC",
    "ServiceConfig",
    "ServiceSnapshot",
    "StreamService",
    "WindowManager",
    "batch_message",
    "encode_frame",
    "encode_line",
    "parse_message",
    "replay_trace",
    "run_loadgen",
    "send_shutdown",
    "serve",
]
