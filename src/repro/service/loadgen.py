"""Load generator: replay a :class:`repro.streams.Trace` over the wire.

Slices every window into wire batches, distributes them round-robin
over ``connections`` concurrent TCP connections, and measures what a
producer observes: wall clock, per-batch send latency (the time for a
frame to clear the socket — server pushback shows up here) and the
server's received/dropped acknowledgement.  Results come back as a
:class:`repro.metrics.ServiceStats`.

Ordered mode (default) stamps every batch with a global sequence
number, so the service reconstructs the exact trace order no matter how
the connections interleave — a multi-connection replay then produces
byte-identical reports to an in-process run of the same trace.
Unordered mode omits the stamps and models independent producers.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.hashing.family import ItemId
from repro.metrics.service import LatencySummary, ServiceStats
from repro.service.protocol import (
    MAGIC,
    batch_message,
    decode_payload,
    encode_frame,
    encode_line,
    iter_window_batches,
    read_frame,
)
from repro.streams.model import Trace

#: Wire batch size used when the caller does not pick one.
DEFAULT_BATCH_SIZE = 512


def plan_batches(
    trace: Trace, batch_size: int, ordered: bool
) -> List[Tuple[Optional[int], List[ItemId]]]:
    """Flatten a trace into ``(seq, items)`` wire batches in stream order."""
    plan: List[Tuple[Optional[int], List[ItemId]]] = []
    seq = 0
    for window in trace.windows():
        for batch in iter_window_batches(window, batch_size):
            plan.append((seq if ordered else None, batch))
            seq += 1
    return plan


async def _run_connection(
    host: str,
    port: int,
    batches: Sequence[Tuple[Optional[int], List[ItemId]]],
    protocol: str,
    latencies: List[float],
) -> Tuple[int, int]:
    """Send one connection's share; returns the server's (received, dropped)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        framed = protocol == "framed"
        if framed:
            writer.write(MAGIC)
        encode = encode_frame if framed else encode_line
        for seq, items in batches:
            start = time.perf_counter()
            writer.write(encode(batch_message(items, seq)))
            await writer.drain()
            latencies.append(time.perf_counter() - start)
        if framed:
            writer.write_eof()
            ack_payload = await read_frame(reader, 1 << 20)
            if ack_payload is None:
                raise ServiceError("connection closed before acknowledgement")
            ack = decode_payload(ack_payload)
        else:
            writer.write_eof()
            line = await reader.readline()
            if not line:
                raise ServiceError("connection closed before acknowledgement")
            ack = decode_payload(line)
        if "error" in ack:
            raise ServiceError(f"server rejected stream: {ack['error']}")
        return ack.get("received", 0), ack.get("dropped", 0)
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()


async def send_shutdown(host: str, port: int, protocol: str = "framed") -> None:
    """Ask a running service to drain and stop."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if protocol == "framed":
            writer.write(MAGIC + encode_frame({"op": "shutdown"}))
        else:
            writer.write(encode_line({"op": "shutdown"}))
        await writer.drain()
        writer.write_eof()
        await reader.read()  # wait for the ack / close
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()


async def replay_trace(
    trace: Trace,
    host: str,
    port: int,
    connections: int = 1,
    batch_size: int = DEFAULT_BATCH_SIZE,
    protocol: str = "framed",
    ordered: bool = True,
    shutdown: bool = False,
) -> ServiceStats:
    """Replay ``trace`` against a running service; returns client-side stats.

    ``shutdown=True`` sends a drain request after every connection has
    been acknowledged, so all replayed items are already in the engine
    when the service stops.
    """
    if connections <= 0:
        raise ServiceError(f"connections must be positive, got {connections}")
    if protocol not in ("framed", "jsonl"):
        raise ServiceError(f"protocol must be 'framed' or 'jsonl', got {protocol!r}")
    plan = plan_batches(trace, batch_size, ordered)
    shares: List[List[Tuple[Optional[int], List[ItemId]]]] = [
        plan[index::connections] for index in range(connections)
    ]
    latencies: List[float] = []
    start = time.perf_counter()
    acks = await asyncio.gather(
        *(
            _run_connection(host, port, share, protocol, latencies)
            for share in shares
        )
    )
    elapsed = time.perf_counter() - start
    if shutdown:
        await send_shutdown(host, port, protocol)
    return ServiceStats(
        connections=connections,
        batches=len(plan),
        total_items=len(trace),
        received_items=sum(received for received, _ in acks),
        dropped_items=sum(dropped for _, dropped in acks),
        elapsed_seconds=elapsed,
        send_latency=LatencySummary.from_samples(latencies),
    )


def run_loadgen(trace: Trace, host: str, port: int, **kwargs) -> ServiceStats:
    """Synchronous wrapper around :func:`replay_trace` (own event loop)."""
    return asyncio.run(replay_trace(trace, host, port, **kwargs))
